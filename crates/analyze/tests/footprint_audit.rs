//! Footprint-soundness audit over the registry: with the simulator's
//! byte-granular auditor enabled, every executed access of every shipped
//! workload must lie inside its stream's declared footprint (writes
//! inside a `wrote` extent). In debug builds a violation aborts the run;
//! in every build it bumps `sim.footprint_violations`, which this test
//! pins to zero.

use cheetah_sim::observer::NullObserver;
use cheetah_sim::{Machine, MachineConfig, ObsHandle};
use cheetah_workloads::{AppConfig, APPS};

#[test]
fn registry_footprints_cover_every_executed_access() {
    for app in APPS {
        for fixed in [false, true] {
            let mut config = AppConfig::with_threads(8).scaled(0.1);
            if fixed {
                config = config.fixed();
            }
            let obs = ObsHandle::fresh_untraced();
            let machine = Machine::new(
                MachineConfig::default()
                    .with_footprint_audit(true)
                    .with_obs(obs.clone()),
            );
            let (program, _space) = app.build(&config).into_parts();
            machine.run(program, &mut NullObserver);
            let violations = cheetah_sim::metrics::snapshot_of(&obs).footprint_violations;
            assert_eq!(
                violations,
                0,
                "{} (fixed: {fixed}) executed accesses outside its declared footprints",
                app.name()
            );
        }
    }
}

#[test]
fn audit_also_covers_random_seeds() {
    // Randomized streams draw different addresses per seed; the declared
    // window must cover all of them.
    for app in APPS {
        for seed in [7u64, 1234, 0xdead_beef] {
            let mut config = AppConfig::with_threads(4).scaled(0.05);
            config.seed = seed;
            let obs = ObsHandle::fresh_untraced();
            let machine = Machine::new(
                MachineConfig::default()
                    .with_footprint_audit(true)
                    .with_obs(obs.clone()),
            );
            let (program, _space) = app.build(&config).into_parts();
            machine.run(program, &mut NullObserver);
            let violations = cheetah_sim::metrics::snapshot_of(&obs).footprint_violations;
            assert_eq!(
                violations,
                0,
                "{} (seed {seed}) executed accesses outside its declared footprints",
                app.name()
            );
        }
    }
}
