//! The registry must lint clean: every shipped workload's declarations
//! (footprints, object extents, worker names) are exactly what the
//! static analysis and the sharded executor assume. CI additionally runs
//! `cheetah-analyze --lint` at full scale; this covers the same property
//! in-tree at test scale.

use cheetah_analyze::lint_workload;
use cheetah_workloads::{AppConfig, APPS};

#[test]
fn registry_workloads_lint_clean() {
    for app in APPS {
        for &threads in &[2u32, 16] {
            let config = AppConfig::with_threads(threads).scaled(0.1);
            let (program, space) = app.build(&config).into_parts();
            let diagnostics = lint_workload(program, &space);
            assert!(
                diagnostics.is_empty(),
                "{} (threads {threads}): {diagnostics:#?}",
                app.name()
            );
        }
    }
}

#[test]
fn fixed_builds_lint_clean_too() {
    for app in APPS {
        let config = AppConfig::with_threads(8).scaled(0.1).fixed();
        let (program, space) = app.build(&config).into_parts();
        let diagnostics = lint_workload(program, &space);
        assert!(
            diagnostics.is_empty(),
            "{} (fixed): {diagnostics:#?}",
            app.name()
        );
    }
}
