//! The RacerD-style soundness property, checked over the entire workload
//! registry: every sharing instance the dynamic detector reports — and
//! every multi-thread written word inside it — lies on a line the static
//! analysis marked a sharing candidate.
//!
//! Checked three ways: exhaustively over all registry workloads at thread
//! counts {2, 4, 8, 16}; property-tested over (workload, threads, seed)
//! triples so randomized access patterns get fresh draws; and over
//! post-repair layouts of every repair target, where the footprints reach
//! the summary through [`cheetah_sim::LayoutMap::translate_range`].

use cheetah_analyze::{soundness_violations, summarize, StaticSummary};
use cheetah_core::{CheetahConfig, CheetahProfiler, Profile};
use cheetah_repair::{repair_program, synthesize, RepairPlan};
use cheetah_sim::{Machine, MachineConfig, Program};
use cheetah_workloads::{repair_targets, App, AppConfig, APPS};
use proptest::prelude::*;

/// Small but sample-dense: scaled workloads with a proportionally scaled
/// sampling period keep the detector's tables populated.
const SCALE: f64 = 0.05;
const PERIOD: u64 = 256;

fn profile_of(program: Program, space: &cheetah_heap::AddressSpace) -> Profile {
    let mut profiler = CheetahProfiler::new(CheetahConfig::scaled(PERIOD), space);
    Machine::new(MachineConfig::default()).run(program, &mut profiler);
    profiler.finish()
}

/// Static summary from one build, dynamic profile from a second identical
/// build (streams are single-use; builds are deterministic).
fn summarize_and_profile(app: &App, config: &AppConfig) -> (StaticSummary, Profile) {
    let (program, _space) = app.build(config).into_parts();
    let summary = summarize(&program, 64);
    let (program, space) = app.build(config).into_parts();
    (summary, profile_of(program, &space))
}

fn assert_sound(app: &App, config: &AppConfig) {
    let (summary, profile) = summarize_and_profile(app, config);
    let violations = soundness_violations(&summary, &profile);
    assert!(
        violations.is_empty(),
        "{} (threads {}, seed {}): {:#?}",
        app.name(),
        config.threads,
        config.seed,
        violations
    );
}

#[test]
fn static_candidates_cover_dynamic_findings_registry_wide() {
    for app in APPS {
        for &threads in &[2u32, 4, 8, 16] {
            assert_sound(app, &AppConfig::with_threads(threads).scaled(SCALE));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32 })]

    /// Random (workload, threads, seed) triples: randomized streams draw
    /// fresh access patterns per seed, so this explores footprints the
    /// exhaustive sweep's fixed seed never materializes.
    #[test]
    fn soundness_under_random_configs(
        app_index in 0..APPS.len(),
        threads in prop::sample::select(vec![2u32, 4, 8, 16]),
        seed in 0u64..64,
    ) {
        let mut config = AppConfig::with_threads(threads).scaled(SCALE);
        config.seed = 42 + seed;
        assert_sound(&APPS[app_index], &config);
    }
}

/// First applicable repair plan for the app, synthesized from a dynamic
/// profile of the broken build.
fn first_plan(app: &App, config: &AppConfig) -> Option<RepairPlan> {
    let (program, space) = app.build(config).into_parts();
    let profile = profile_of(program, &space);
    profile
        .instances
        .iter()
        .find_map(|assessed| synthesize(&assessed.instance, 64))
}

#[test]
fn soundness_holds_on_post_repair_layouts() {
    let mut repaired_any = false;
    for app in repair_targets() {
        let config = AppConfig::with_threads(8).scaled(SCALE);
        let Some(plan) = first_plan(app, &config) else {
            continue;
        };
        // Re-analyze: the repaired program's footprints come back already
        // translated through the layout map.
        let (program, mut space) = app.build(&config).into_parts();
        let (repaired, _map) =
            repair_program(program, std::slice::from_ref(&plan), &mut space).expect("repair");
        let summary = summarize(&repaired, 64);
        // Re-profile an identically repaired third build.
        let (program, mut space) = app.build(&config).into_parts();
        let (repaired, _map) =
            repair_program(program, std::slice::from_ref(&plan), &mut space).expect("repair");
        let profile = profile_of(repaired, &space);
        let violations = soundness_violations(&summary, &profile);
        assert!(
            violations.is_empty(),
            "{} post-repair ({}): {:#?}",
            app.name(),
            plan.strategy,
            violations
        );
        repaired_any = true;
    }
    assert!(repaired_any, "no repair target produced a plan");
}

/// The static suggestions must be comparable to the dynamic planner's:
/// wherever the dynamic pipeline synthesizes a repair for an object, the
/// static report offers a suggestion for that same object.
#[test]
fn static_suggestions_cover_dynamic_plans() {
    for app in repair_targets() {
        let config = AppConfig::with_threads(8).scaled(SCALE);
        let (program, space) = app.build(&config).into_parts();
        let summary = summarize(&program, 64);
        let report = cheetah_analyze::analyze_layout(&summary, &space);
        let (program, space) = app.build(&config).into_parts();
        let profile = profile_of(program, &space);
        for assessed in &profile.instances {
            let Some(plan) = synthesize(&assessed.instance, 64) else {
                continue;
            };
            let object_start = assessed.instance.object.start.0;
            let finding = report
                .candidates()
                .find(|f| f.start <= object_start && object_start < f.start + f.size);
            let suggestion = finding.and_then(|f| f.suggestion);
            assert!(
                suggestion.is_some(),
                "{}: dynamic planner suggests {} for object 0x{object_start:x} but the \
                 static report offers nothing",
                app.name(),
                plan.strategy
            );
        }
    }
}
