//! Regression: installing the statically-derived line pre-filter must
//! leave the dynamic pipeline's output bit-identical — same `RunReport`,
//! same rendered profile, same sample accounting — while actually
//! shrinking detector state somewhere in the registry.

use cheetah_analyze::{prefilter_for, summarize};
use cheetah_core::detect::detector::{OBS_LINE_TABLE, OBS_OBJECT_TABLE, OBS_SAMPLES_PREFILTERED};
use cheetah_core::{CheetahConfig, CheetahProfiler, LinePrefilter, Profile};
use cheetah_obs::ObsHandle;
use cheetah_sim::{Machine, MachineConfig, RunReport};
use cheetah_workloads::{App, AppConfig, APPS};

const SCALE: f64 = 0.1;
const PERIOD: u64 = 512;

fn run(app: &App, config: &AppConfig, prefilter: LinePrefilter) -> (RunReport, Profile, u64, u64) {
    let obs = ObsHandle::fresh_untraced();
    let (program, space) = app.build(config).into_parts();
    let mut profiler = CheetahProfiler::new(
        CheetahConfig::scaled(PERIOD)
            .with_obs(obs.clone())
            .with_prefilter(prefilter),
        &space,
    );
    let report = Machine::new(MachineConfig::default()).run(program, &mut profiler);
    let profile = profiler.finish();
    let tables: u64 = obs
        .gauges()
        .iter()
        .filter(|(name, _)| *name == OBS_LINE_TABLE || *name == OBS_OBJECT_TABLE)
        .map(|&(_, value)| value)
        .sum();
    let prefiltered = obs
        .counters()
        .iter()
        .find(|(name, _)| *name == OBS_SAMPLES_PREFILTERED)
        .map(|&(_, value)| value)
        .unwrap_or(0);
    (report, profile, tables, prefiltered)
}

#[test]
fn prefiltered_runs_are_bit_identical_registry_wide() {
    let mut total_saved = 0u64;
    let mut total_prefiltered = 0u64;
    for app in APPS {
        let config = AppConfig::with_threads(16).scaled(SCALE);
        let (baseline_report, baseline_profile, baseline_tables, _) =
            run(app, &config, LinePrefilter::none());
        let (program, space) = app.build(&config).into_parts();
        let prefilter = prefilter_for(&summarize(&program, 64), &space);
        let (filtered_report, filtered_profile, filtered_tables, prefiltered) =
            run(app, &config, prefilter);

        assert_eq!(
            baseline_report,
            filtered_report,
            "{}: RunReport changed under the pre-filter",
            app.name()
        );
        assert_eq!(
            baseline_profile.render_report(),
            filtered_profile.render_report(),
            "{}: rendered profile changed under the pre-filter",
            app.name()
        );
        assert_eq!(
            (
                baseline_profile.total_samples,
                baseline_profile.filtered_samples
            ),
            (
                filtered_profile.total_samples,
                filtered_profile.filtered_samples
            ),
            "{}: sample accounting changed under the pre-filter",
            app.name()
        );
        assert_eq!(
            baseline_profile.instances.len(),
            filtered_profile.instances.len(),
            "{}: instance count changed under the pre-filter",
            app.name()
        );
        total_saved += baseline_tables.saturating_sub(filtered_tables);
        total_prefiltered += prefiltered;
    }
    assert!(
        total_saved > 0,
        "the pre-filter never shrank a detector table anywhere in the registry"
    );
    // total_samples is deliberately unchanged; the prefiltered counter is
    // what proves samples were actually skipped.
    assert!(total_prefiltered > 0, "no samples were ever pre-filtered");
}

#[test]
fn prefilter_reports_skipped_samples() {
    // pca: thread-private matrix rows dominate the access stream and
    // nothing shares a line — the canonical pre-filter win.
    let app = cheetah_workloads::find("pca").expect("registered");
    let config = AppConfig::with_threads(16).scaled(SCALE);
    let (program, space) = app.build(&config).into_parts();
    let prefilter = prefilter_for(&summarize(&program, 64), &space);
    assert!(
        !prefilter.is_empty(),
        "pca's private matrices should be statically skippable"
    );
    let (program, space) = app.build(&config).into_parts();
    let mut profiler = CheetahProfiler::new(
        CheetahConfig::scaled(PERIOD).with_prefilter(prefilter),
        &space,
    );
    Machine::new(MachineConfig::default()).run(program, &mut profiler);
    assert!(
        profiler.detector().prefiltered_samples() > 0,
        "no sample ever hit the skip set"
    );
    let profile = profiler.finish();
    // Skipping must not have invented or destroyed findings.
    let (program, space) = app.build(&config).into_parts();
    let mut baseline = CheetahProfiler::new(CheetahConfig::scaled(PERIOD), &space);
    Machine::new(MachineConfig::default()).run(program, &mut baseline);
    assert_eq!(profile.render_report(), baseline.finish().render_report());
}
