//! Soundness quantified over the schedule set: the static sharing
//! candidates are computed once per program, with no notion of
//! interleaving — so they must cover the dynamic detector's findings under
//! *every* schedule policy, not just the observed one. Perturbed
//! interleavings surface instances the observed schedule hides (see
//! `cheetah_sim::SchedulePolicy`); none of them may escape the static
//! over-approximation, before or after repair.

use cheetah_analyze::{soundness_violations, summarize, StaticSummary};
use cheetah_core::{CheetahConfig, CheetahProfiler, Profile};
use cheetah_repair::{repair_program, synthesize, RepairPlan};
use cheetah_sim::{Machine, MachineConfig, Program, SchedulePolicy};
use cheetah_workloads::{find, repair_targets, App, AppConfig, APPS};
use proptest::prelude::*;

/// Small but sample-dense, matching the observed-schedule soundness suite.
const SCALE: f64 = 0.05;
const PERIOD: u64 = 256;

fn profile_under(
    program: Program,
    space: &cheetah_heap::AddressSpace,
    policy: SchedulePolicy,
) -> Profile {
    let mut profiler = CheetahProfiler::new(CheetahConfig::scaled(PERIOD), space);
    Machine::new(MachineConfig::default().with_schedule(policy)).run(program, &mut profiler);
    profiler.finish()
}

/// Static summary from one build, perturbed dynamic profile from a second
/// identical build (streams are single-use; builds are deterministic).
fn summarize_and_profile(
    app: &App,
    config: &AppConfig,
    policy: SchedulePolicy,
) -> (StaticSummary, Profile) {
    let (program, _space) = app.build(config).into_parts();
    let summary = summarize(&program, 64);
    let (program, space) = app.build(config).into_parts();
    (summary, profile_under(program, &space, policy))
}

fn assert_sound_under(app: &App, config: &AppConfig, policy: SchedulePolicy) {
    let (summary, profile) = summarize_and_profile(app, config, policy);
    let violations = soundness_violations(&summary, &profile);
    assert!(
        violations.is_empty(),
        "{} (threads {}, seed {}) under {policy}: {:#?}",
        app.name(),
        config.threads,
        config.seed,
        violations
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// Random (workload, threads, seed) triples judged under a perturbed
    /// schedule derived from the same seed: whatever interleaving the
    /// perturbation produces, every dynamic finding stays inside the
    /// static candidate set — and if the top finding is repairable, the
    /// repaired layout is re-covered under the same perturbed schedule.
    #[test]
    fn soundness_under_perturbed_schedules(
        app_index in 0..APPS.len(),
        threads in prop::sample::select(vec![2u32, 4, 8]),
        seed in 0u64..64,
        contend in proptest::bool::ANY,
    ) {
        let app = &APPS[app_index];
        let mut config = AppConfig::with_threads(threads).scaled(SCALE);
        config.seed = 42 + seed;
        let policy = if contend {
            SchedulePolicy::ContentionMax { seed: seed + 1 }
        } else {
            SchedulePolicy::SeededShuffle { seed: seed + 1 }
        };
        assert_sound_under(app, &config, policy);

        // Post-repair half: synthesize a plan from the *perturbed* profile
        // (the only profile that sees schedule-hidden instances), apply it,
        // and require the repaired layout to stay covered too.
        let (program, space) = app.build(&config).into_parts();
        let profile = profile_under(program, &space, policy);
        let plan: Option<RepairPlan> = profile
            .instances
            .iter()
            .find_map(|assessed| synthesize(&assessed.instance, 64));
        if let Some(plan) = plan {
            let (program, mut space) = app.build(&config).into_parts();
            let (repaired, _map) =
                repair_program(program, std::slice::from_ref(&plan), &mut space)
                    .expect("repair");
            let summary = summarize(&repaired, 64);
            let (program, mut space) = app.build(&config).into_parts();
            let (repaired, _map) =
                repair_program(program, std::slice::from_ref(&plan), &mut space)
                    .expect("repair");
            let profile = profile_under(repaired, &space, policy);
            let violations = soundness_violations(&summary, &profile);
            prop_assert!(
                violations.is_empty(),
                "{} post-repair ({}) under {policy}: {:#?}",
                app.name(),
                plan.strategy,
                violations
            );
        }
    }
}

/// The schedule-hidden instance (`staggered_writers`, invisible to the
/// observed schedule) is still anticipated statically: soundness holds on
/// the one profile that exposes it, and its repaired layout stays covered.
#[test]
fn hidden_instance_is_statically_anticipated() {
    let app = find("staggered_writers").unwrap();
    let config = AppConfig::with_threads(4).scaled(SCALE);
    let policy = SchedulePolicy::ContentionMax { seed: 1 };
    assert_sound_under(app, &config, policy);

    let (program, space) = app.build(&config).into_parts();
    let profile = profile_under(program, &space, policy);
    let plan = profile
        .instances
        .iter()
        .find_map(|assessed| synthesize(&assessed.instance, 64))
        .expect("the perturbed profile must yield a repairable instance");
    let (program, mut space) = app.build(&config).into_parts();
    let (repaired, _map) =
        repair_program(program, std::slice::from_ref(&plan), &mut space).expect("repair");
    let summary = summarize(&repaired, 64);
    let (program, mut space) = app.build(&config).into_parts();
    let (repaired, _map) =
        repair_program(program, std::slice::from_ref(&plan), &mut space).expect("repair");
    let profile = profile_under(repaired, &space, policy);
    let violations = soundness_violations(&summary, &profile);
    assert!(violations.is_empty(), "post-repair: {violations:#?}");
}

/// Every repair target stays sound under one shuffled and one
/// contention-maximizing schedule at the repair suite's thread count —
/// the deterministic complement to the randomized sweep above.
#[test]
fn repair_targets_sound_under_both_perturbations() {
    for app in repair_targets() {
        let config = AppConfig::with_threads(8).scaled(SCALE);
        for policy in [
            SchedulePolicy::SeededShuffle { seed: 7 },
            SchedulePolicy::ContentionMax { seed: 7 },
        ] {
            assert_sound_under(app, &config, policy);
        }
    }
}
