//! Object-level report over a [`StaticSummary`], and the detector
//! pre-filter derived from it.
//!
//! The summary classifies *lines*; programmers fix *objects*. This module
//! intersects the classified line ranges with the heap/global layout,
//! attributes each candidate line back to the objects living on it, and
//! synthesizes the same three repair shapes the dynamic planner emits
//! (`pad-to-line` / `align-to-line` / `split-per-thread`) from declared
//! extents instead of sampled word maps.
//!
//! [`prefilter_for`] is the load-bearing export: the set of lines the
//! dynamic detector may skip without changing a single bit of its output.
//! A line is skippable only when **both** hold:
//!
//! 1. it is statically private (or untouched by any declared footprint) —
//!    the detector could never record an invalidation on it, and
//! 2. every byte of the line belongs to tracked objects none of whose
//!    lines are sharing candidates — so skipping its samples cannot
//!    perturb any *reportable* object's counters, nor the profile's
//!    unattributed-sample count (rule 2 forbids skipping lines with
//!    attribution gaps).
//!
//! Objects that never touch a candidate line accrue zero invalidations,
//! which sits below every report floor; their sampled reads, writes and
//! latencies are therefore dead state, and dropping the samples early is
//! observationally equivalent. Any parallel identity with an unknown
//! footprint disables the pre-filter entirely.

use crate::summary::{LineClass, StaticSummary};
use cheetah_core::LinePrefilter;
use cheetah_heap::AddressSpace;

/// The layout fix the static analysis suggests for one object, mirroring
/// the dynamic planner's `RepairStrategy` vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suggestion {
    /// One identity's extents dominate the object: pad it to exclusive
    /// lines so neighbouring allocations stop sharing them.
    PadToLine,
    /// Identities' extents fall on disjoint lines once the object starts
    /// at a line boundary: realigning suffices.
    AlignToLine,
    /// Identities interleave within lines: give each its own line-aligned
    /// block.
    SplitPerThread,
}

impl std::fmt::Display for Suggestion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Suggestion::PadToLine => "pad-to-line",
            Suggestion::AlignToLine => "align-to-line",
            Suggestion::SplitPerThread => "split-per-thread",
        })
    }
}

/// Where a reported object lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingOrigin {
    /// A tracked heap allocation.
    Heap,
    /// A registered global symbol.
    Global,
}

/// One object intersected with the classified lines.
#[derive(Debug, Clone)]
pub struct ObjectFinding {
    /// Callsite (heap) or symbol name (global).
    pub label: String,
    /// Heap or global.
    pub origin: FindingOrigin,
    /// First byte of the object.
    pub start: u64,
    /// Reserved bytes (resolution extent).
    pub size: u64,
    /// Worst line class over the object's lines.
    pub class: LineClass,
    /// Candidate (true- or false-sharing) lines overlapping the object.
    pub candidate_lines: u64,
    /// Distinct parallel identities touching the object's candidate lines.
    pub identities: u32,
    /// Suggested layout fix; `None` when the object has no
    /// false-sharing-candidate line (nothing a layout change could help).
    pub suggestion: Option<Suggestion>,
}

/// The ranked static report: most-contended objects first.
#[derive(Debug, Clone)]
pub struct StaticReport {
    /// Cache line size the analysis ran at.
    pub line_size: u64,
    /// Findings, ranked by candidate lines then identity count.
    pub findings: Vec<ObjectFinding>,
    /// Line totals `(private, read_shared, true_candidate,
    /// false_candidate)` over every touched line.
    pub totals: (u64, u64, u64, u64),
}

impl StaticReport {
    /// Findings on candidate lines only (the actionable subset).
    pub fn candidates(&self) -> impl Iterator<Item = &ObjectFinding> {
        self.findings.iter().filter(|f| f.class.is_candidate())
    }

    /// Renders the report as the text the CLI prints.
    pub fn render(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let (private, read_shared, true_c, false_c) = self.totals;
        let _ = writeln!(
            out,
            "static analysis: {name} ({}B lines)\n  lines: {private} statically-private, \
             {read_shared} read-shared, {true_c} true-sharing-candidate, \
             {false_c} false-sharing-candidate",
            self.line_size
        );
        if self.candidates().next().is_none() {
            let _ = writeln!(out, "  no sharing candidates");
            return out;
        }
        for finding in self.candidates() {
            let _ = writeln!(
                out,
                "  {} {} start 0x{:x} size {}: {} ({} candidate line{}, {} threads){}",
                match finding.origin {
                    FindingOrigin::Heap => "heap",
                    FindingOrigin::Global => "global",
                },
                finding.label,
                finding.start,
                finding.size,
                finding.class,
                finding.candidate_lines,
                if finding.candidate_lines == 1 {
                    ""
                } else {
                    "s"
                },
                finding.identities,
                match finding.suggestion {
                    Some(s) => format!(" -> suggest {s}"),
                    None => String::new(),
                },
            );
        }
        out
    }
}

/// A tracked object's byte extent plus its label, the unit the report and
/// the pre-filter reason about.
#[derive(Debug, Clone)]
struct TrackedObject {
    label: String,
    origin: FindingOrigin,
    start: u64,
    end: u64,
    size: u64,
}

fn tracked_objects(space: &AddressSpace) -> Vec<TrackedObject> {
    let mut out = Vec::new();
    for object in space.heap().objects() {
        out.push(TrackedObject {
            label: object
                .callsite
                .innermost()
                .map(|frame| frame.to_string())
                .unwrap_or_else(|| object.id.to_string()),
            origin: FindingOrigin::Heap,
            start: object.start.0,
            end: object.reserved_end().0,
            size: object.class_size,
        });
    }
    for symbol in space.globals().symbols() {
        out.push(TrackedObject {
            label: symbol.name.clone(),
            origin: FindingOrigin::Global,
            start: symbol.start.0,
            end: symbol.end().0,
            size: symbol.size,
        });
    }
    out
}

/// Intersects the classified lines with the heap/global layout into a
/// ranked object report.
pub fn analyze_layout(summary: &StaticSummary, space: &AddressSpace) -> StaticReport {
    let line_size = summary.line_size;
    let mut findings = Vec::new();
    for object in tracked_objects(space) {
        let first_line = object.start / line_size;
        let last_line = (object.end - 1) / line_size + 1;
        let mut worst: Option<LineClass> = None;
        let mut candidate_lines = 0u64;
        let mut false_candidate = false;
        for range in &summary.ranges {
            let lo = range.start_line.max(first_line);
            let hi = range.end_line.min(last_line);
            if lo >= hi {
                continue;
            }
            if range.class.is_candidate() {
                candidate_lines += hi - lo;
                if range.class == LineClass::FalseShareCandidate {
                    false_candidate = true;
                }
            }
            worst = Some(match worst {
                Some(prev) => worse(prev, range.class),
                None => range.class,
            });
        }
        let Some(class) = worst else { continue };
        let (identities, suggestion) = if class.is_candidate() {
            let idents = identities_on(summary, object.start, object.end);
            let suggestion = false_candidate
                .then(|| suggest(summary, object.start, object.end, line_size))
                .flatten();
            (idents, suggestion)
        } else {
            (0, None)
        };
        findings.push(ObjectFinding {
            label: object.label,
            origin: object.origin,
            start: object.start,
            size: object.size,
            class,
            candidate_lines,
            identities,
            suggestion,
        });
    }
    findings.sort_by(|a, b| {
        b.candidate_lines
            .cmp(&a.candidate_lines)
            .then(b.identities.cmp(&a.identities))
            .then(a.start.cmp(&b.start))
    });
    StaticReport {
        line_size,
        findings,
        totals: summary.class_totals(),
    }
}

/// Severity order for the per-object "worst class" roll-up.
fn worse(a: LineClass, b: LineClass) -> LineClass {
    fn rank(class: LineClass) -> u8 {
        match class {
            LineClass::StaticallyPrivate => 0,
            LineClass::ReadShared => 1,
            LineClass::TrueShareCandidate => 2,
            LineClass::FalseShareCandidate => 3,
        }
    }
    if rank(b) > rank(a) {
        b
    } else {
        a
    }
}

/// Distinct parallel identities whose declared extents intersect
/// `[start, end)`.
fn identities_on(summary: &StaticSummary, start: u64, end: u64) -> u32 {
    summary
        .parallel_extents()
        .iter()
        .filter(|(_, extents)| extents.iter().any(|e| e.start < end && start < e.end))
        .count() as u32
}

/// Synthesizes a layout suggestion for the object at `[start, end)` from
/// declared extents, mirroring the dynamic planner's decision order:
/// one touching identity → pad; alignment separates → align; otherwise
/// split per thread.
fn suggest(summary: &StaticSummary, start: u64, end: u64, line_size: u64) -> Option<Suggestion> {
    // Clip each parallel identity's extents to the object.
    let mut clipped: Vec<Vec<(u64, u64)>> = Vec::new();
    for (_, extents) in summary.parallel_extents() {
        let mut mine: Vec<(u64, u64)> = extents
            .iter()
            .filter(|e| e.start < end && start < e.end)
            .map(|e| (e.start.max(start) - start, e.end.min(end) - start))
            .collect();
        if mine.is_empty() {
            continue;
        }
        mine.sort_unstable();
        clipped.push(mine);
    }
    if clipped.is_empty() {
        return None;
    }
    // Identities with identical clipped extents form one cluster — the
    // static analogue of the planner's ownership signatures (re-spawned
    // workers touch the same bytes in every phase).
    let mut clusters: Vec<Vec<(u64, u64)>> = Vec::new();
    for mine in clipped {
        if !clusters.contains(&mine) {
            clusters.push(mine);
        }
    }
    if clusters.len() == 1 {
        return Some(Suggestion::PadToLine);
    }
    // Would a line-aligned base put every cluster on its own lines?
    let mut line_owner: Vec<(u64, usize)> = Vec::new();
    for (index, cluster) in clusters.iter().enumerate() {
        for &(lo, hi) in cluster {
            for line in lo / line_size..=(hi - 1) / line_size {
                match line_owner.iter().find(|&&(l, _)| l == line) {
                    Some(&(_, owner)) if owner != index => {
                        return Some(Suggestion::SplitPerThread);
                    }
                    Some(_) => {}
                    None => line_owner.push((line, index)),
                }
            }
        }
    }
    Some(Suggestion::AlignToLine)
}

/// Builds the sound detector pre-filter: statically-private and untouched
/// lines that are fully covered by objects having no sharing-candidate
/// line anywhere. Returns the empty filter when any parallel identity has
/// an unknown footprint (nothing can be proven private).
pub fn prefilter_for(summary: &StaticSummary, space: &AddressSpace) -> LinePrefilter {
    if summary.has_unknown_parallel_footprint() {
        return LinePrefilter::none();
    }
    let line_size = summary.line_size;
    // Candidate byte ranges (whole lines).
    let candidate_bytes: Vec<(u64, u64)> = summary
        .candidate_ranges()
        .map(|r| (r.start_line * line_size, r.end_line * line_size))
        .collect();
    // Byte extents of objects that overlap no candidate line.
    let mut safe_bytes: Vec<(u64, u64)> = tracked_objects(space)
        .into_iter()
        .filter(|o| {
            !candidate_bytes
                .iter()
                .any(|&(lo, hi)| o.start < hi && lo < o.end)
        })
        .map(|o| (o.start, o.end))
        .collect();
    safe_bytes.sort_unstable();
    // Merge, then keep only *fully covered* lines: a partially covered
    // line may carry unattributed samples whose count the profile
    // reports.
    let mut full_lines: Vec<(u64, u64)> = Vec::new();
    let mut merged: Option<(u64, u64)> = None;
    for (start, end) in safe_bytes
        .into_iter()
        .chain(std::iter::once((u64::MAX, u64::MAX)))
    {
        match merged {
            Some((lo, hi)) if start <= hi => merged = Some((lo, hi.max(end))),
            Some((lo, hi)) => {
                let first = lo.div_ceil(line_size);
                let last = hi / line_size;
                if first < last {
                    full_lines.push((first, last));
                }
                merged = Some((start, end));
            }
            None => merged = Some((start, end)),
        }
    }
    // Remove lines that any non-private classified range touches
    // (read-shared lines stay live: their samples feed word maps of lines
    // serial writes made hot).
    let blocked: Vec<(u64, u64)> = summary
        .ranges
        .iter()
        .filter(|r| r.class != LineClass::StaticallyPrivate)
        .map(|r| (r.start_line, r.end_line))
        .collect();
    LinePrefilter::from_ranges(subtract_ranges(full_lines, &blocked))
}

/// `keep − remove` over sorted, disjoint half-open ranges.
fn subtract_ranges(keep: Vec<(u64, u64)>, remove: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for (mut lo, hi) in keep {
        for &(rlo, rhi) in remove {
            if rhi <= lo || rlo >= hi {
                continue;
            }
            if rlo > lo {
                out.push((lo, rlo));
            }
            lo = lo.max(rhi);
            if lo >= hi {
                break;
            }
        }
        if lo < hi {
            out.push((lo, hi));
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use cheetah_heap::CallStack;
    use cheetah_sim::{Addr, LoopStream, Op, ProgramBuilder, ThreadId, ThreadSpec};

    fn space_with(sizes: &[u64]) -> (AddressSpace, Vec<u64>) {
        let mut space = AddressSpace::new();
        let mut starts = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let addr = space
                .heap_mut()
                .alloc(
                    ThreadId::MAIN,
                    size,
                    CallStack::single(format!("alloc{i}.c"), 10 + i as u32),
                )
                .expect("alloc");
            starts.push(addr.0);
        }
        (space, starts)
    }

    #[test]
    fn contended_object_reported_with_split_suggestion() {
        let (space, starts) = space_with(&[64]);
        let base = starts[0];
        let program = ProgramBuilder::new("t")
            .parallel(vec![
                ThreadSpec::new("a", LoopStream::new(vec![Op::Write(Addr(base))], 8)),
                ThreadSpec::new("b", LoopStream::new(vec![Op::Write(Addr(base + 8))], 8)),
            ])
            .build();
        let summary = summarize(&program, 64);
        let report = analyze_layout(&summary, &space);
        let finding = report.candidates().next().expect("one candidate");
        assert_eq!(finding.class, LineClass::FalseShareCandidate);
        assert_eq!(finding.suggestion, Some(Suggestion::SplitPerThread));
        assert!(report.render("t").contains("split-per-thread"));
    }

    #[test]
    fn prefilter_skips_only_uncontended_whole_objects() {
        // Object 0 is falsely shared, object 1 is thread-private.
        let (space, starts) = space_with(&[64, 64]);
        let (hot, cold) = (starts[0], starts[1]);
        let program = ProgramBuilder::new("t")
            .parallel(vec![
                ThreadSpec::new("a", LoopStream::new(vec![Op::Write(Addr(hot))], 8)),
                ThreadSpec::new(
                    "b",
                    LoopStream::new(vec![Op::Write(Addr(hot + 8)), Op::Write(Addr(cold))], 8),
                ),
            ])
            .build();
        let summary = summarize(&program, 64);
        let prefilter = prefilter_for(&summary, &space);
        assert!(prefilter.contains(Addr(cold).line(64)));
        assert!(!prefilter.contains(Addr(hot).line(64)));
    }

    #[test]
    fn prefilter_rejects_partially_covered_lines() {
        // 32-byte object: its line is half unattributed, so skipping it
        // would change the profile's unattributed-sample count.
        let (space, starts) = space_with(&[32]);
        let base = starts[0];
        let program = ProgramBuilder::new("t")
            .parallel(vec![ThreadSpec::new(
                "a",
                LoopStream::new(vec![Op::Write(Addr(base))], 8),
            )])
            .build();
        let summary = summarize(&program, 64);
        let prefilter = prefilter_for(&summary, &space);
        assert!(!prefilter.contains(Addr(base).line(64)));
    }

    #[test]
    fn aligned_disjoint_halves_suggest_alignment() {
        // Two identities on the two line-aligned halves of a 128-byte
        // object that itself starts line-aligned in this heap model.
        let (space, starts) = space_with(&[128]);
        let base = starts[0];
        assert_eq!(base % 64, 0, "heap model hands out aligned classes");
        let program = ProgramBuilder::new("t")
            .parallel(vec![
                ThreadSpec::new("a", LoopStream::new(vec![Op::Write(Addr(base + 60))], 8)),
                ThreadSpec::new("b", LoopStream::new(vec![Op::Write(Addr(base + 64))], 8)),
            ])
            .build();
        let summary = summarize(&program, 64);
        let report = analyze_layout(&summary, &space);
        // The two writers sit on adjacent but distinct lines — statically
        // private, nothing to suggest.
        assert!(report.candidates().next().is_none());
    }
}
