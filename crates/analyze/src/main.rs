//! `cheetah-analyze` — static false-sharing analysis CLI.
//!
//! Modes:
//!
//! * default — print the ranked static report for every registry workload
//!   (or the ones named on the command line);
//! * `--lint` — run the declaration lints (static + execution) over the
//!   workloads and exit non-zero if any diagnostic fires; this is the CI
//!   gate;
//! * `--prefilter-report` — profile each workload twice, with and without
//!   the statically-derived line pre-filter, and report the detector
//!   table-size reduction (also published as `analyze.*` gauges).
//!
//! `--threads N` and `--scale S` adjust the workload build.

use cheetah_analyze::{analyze_layout, lint_workload, prefilter_for, summarize};
use cheetah_core::detect::detector::{OBS_LINE_TABLE, OBS_OBJECT_TABLE, OBS_SAMPLES_PREFILTERED};
use cheetah_core::{CheetahConfig, CheetahProfiler, Profile};
use cheetah_obs::ObsHandle;
use cheetah_sim::{Machine, MachineConfig, RunReport};
use cheetah_workloads::{App, AppConfig, APPS};
use std::process::ExitCode;

/// Sampling period for the pre-filter report runs; matches the scaled
/// period the bench harnesses use so table sizes are representative.
const PREFILTER_PERIOD: u64 = 8192;

struct Options {
    lint: bool,
    prefilter_report: bool,
    threads: u32,
    scale: f64,
    apps: Vec<&'static App>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        lint: false,
        prefilter_report: false,
        threads: 16,
        scale: 1.0,
        apps: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--lint" => options.lint = true,
            "--prefilter-report" => options.prefilter_report = true,
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                options.threads = value
                    .parse()
                    .map_err(|_| format!("bad thread count {value}"))?;
            }
            "--scale" => {
                let value = args.next().ok_or("--scale needs a value")?;
                options.scale = value.parse().map_err(|_| format!("bad scale {value}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: cheetah-analyze [--lint | --prefilter-report] \
                            [--threads N] [--scale S] [workload ...]"
                    .to_string())
            }
            name => match cheetah_workloads::find(name) {
                Some(app) => options.apps.push(app),
                None => return Err(format!("unknown workload '{name}'")),
            },
        }
    }
    if options.apps.is_empty() {
        options.apps = APPS.iter().collect();
    }
    Ok(options)
}

fn app_config(options: &Options) -> AppConfig {
    AppConfig::with_threads(options.threads).scaled(options.scale)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if options.lint {
        run_lint(&options)
    } else if options.prefilter_report {
        run_prefilter_report(&options)
    } else {
        run_report(&options)
    }
}

/// Default mode: the static report per workload.
fn run_report(options: &Options) -> ExitCode {
    let config = app_config(options);
    for app in &options.apps {
        let (program, space) = app.build(&config).into_parts();
        let summary = summarize(&program, 64);
        let report = analyze_layout(&summary, &space);
        print!("{}", report.render(app.name()));
    }
    ExitCode::SUCCESS
}

/// `--lint`: declaration diagnostics over the workloads; non-zero exit if
/// any fire.
fn run_lint(options: &Options) -> ExitCode {
    let config = app_config(options);
    let mut total = 0usize;
    for app in &options.apps {
        let (program, space) = app.build(&config).into_parts();
        let diagnostics = lint_workload(program, &space);
        for diagnostic in &diagnostics {
            println!("{}: {diagnostic}", app.name());
        }
        total += diagnostics.len();
    }
    if total == 0 {
        println!(
            "lint clean: {} workloads, 0 diagnostics",
            options.apps.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("lint failed: {total} diagnostics");
        ExitCode::FAILURE
    }
}

/// One profiled run of a freshly built workload; returns the run report,
/// the profile and the detector gauges `(object_table, line_table,
/// prefiltered_samples)`.
fn profile_once(
    app: &App,
    config: &AppConfig,
    cheetah: CheetahConfig,
) -> (RunReport, Profile, (u64, u64, u64)) {
    let obs = ObsHandle::fresh_untraced();
    let cheetah = cheetah.with_obs(obs.clone());
    let (program, space) = app.build(config).into_parts();
    let mut profiler = CheetahProfiler::new(cheetah, &space);
    let machine = Machine::new(MachineConfig::default());
    let report = machine.run(program, &mut profiler);
    let profile = profiler.finish();
    let gauge = |name: &str| {
        obs.gauges()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let prefiltered = obs
        .counters()
        .iter()
        .find(|(n, _)| *n == OBS_SAMPLES_PREFILTERED)
        .map(|&(_, v)| v)
        .unwrap_or(0);
    let tables = (gauge(OBS_OBJECT_TABLE), gauge(OBS_LINE_TABLE), prefiltered);
    (report, profile, tables)
}

/// `--prefilter-report`: detector table sizes with and without the static
/// pre-filter, per workload, plus `analyze.*` gauges for scrapers.
fn run_prefilter_report(options: &Options) -> ExitCode {
    let config = app_config(options);
    let report_obs = ObsHandle::fresh_untraced();
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9}",
        "workload", "objects", "objects'", "lines", "lines'", "prefiltered", "identical"
    );
    let mut mismatched = false;
    for app in &options.apps {
        let (baseline_run, baseline_profile, (objects, lines, _)) =
            profile_once(app, &config, CheetahConfig::scaled(PREFILTER_PERIOD));
        let (program, space) = app.build(&config).into_parts();
        let summary = summarize(&program, 64);
        let prefilter = prefilter_for(&summary, &space);
        let (filtered_run, filtered_profile, (objects_f, lines_f, prefiltered)) = profile_once(
            app,
            &config,
            CheetahConfig::scaled(PREFILTER_PERIOD).with_prefilter(prefilter),
        );
        // `Profile` carries floats and derives no `Eq`; the rendered
        // report plus the sample counters cover everything it exposes.
        let identical = baseline_run == filtered_run
            && baseline_profile.render_report() == filtered_profile.render_report()
            && baseline_profile.total_samples == filtered_profile.total_samples
            && baseline_profile.filtered_samples == filtered_profile.filtered_samples;
        mismatched |= !identical;
        println!(
            "{:<22} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9}",
            app.name(),
            objects,
            objects_f,
            lines,
            lines_f,
            prefiltered,
            if identical { "yes" } else { "NO" },
        );
        // Published per-workload so a scraper sees the same numbers the
        // table prints. Names must be 'static; the CLI leaks one small
        // string per workload.
        let gauge = |suffix: &str, value: u64| {
            let name: &'static str =
                Box::leak(format!("analyze.prefilter.{}.{suffix}", app.name()).into_boxed_str());
            report_obs.gauge(name).set(value);
        };
        gauge("object_table_saved", objects.saturating_sub(objects_f));
        gauge("line_table_saved", lines.saturating_sub(lines_f));
        gauge("samples_prefiltered", prefiltered);
    }
    if mismatched {
        eprintln!("prefilter changed a profile: the skip set is unsound");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
