//! # cheetah-analyze — static false-sharing analysis over the workload IR
//!
//! Everything in `cheetah-core` works *after* the fact: run the program,
//! sample it, classify what the samples show. This crate works *ahead of
//! execution*: the workload IR already declares, per thread, a byte-range
//! superset of everything its stream will touch ([`cheetah_sim::Footprint`],
//! the contract the sharded executor's extent classification relies on).
//! Intersecting those declared extents at cache-line granularity is enough
//! to classify every line a program can touch — without simulating a
//! single access:
//!
//! * **statically-private** — at most one parallel identity on the line;
//! * **read-shared** — several identities, none writing;
//! * **true-sharing-candidate** — a writer shares *bytes* with another
//!   identity;
//! * **false-sharing-candidate** — a writer shares only the *line*.
//!
//! The classification is sound in the RacerD sense: the dynamic detector
//! can only ever report sharing on candidate lines, because an
//! invalidation needs two thread ids on one line with a writer, and the
//! summary's identities are exactly the executor's thread ids with their
//! declared extents as access supersets ([`crosscheck`] states and checks
//! the property; the `soundness` integration test proves it over the full
//! workload registry, pre- and post-repair).
//!
//! Three consumers:
//!
//! * [`summary`] + [`report`] — the analyzer itself: classified line
//!   ranges, object-level findings with `pad`/`align`/`split` suggestions
//!   mirroring the dynamic repair planner's vocabulary.
//! * [`report::prefilter_for`] — a [`cheetah_core::LinePrefilter`] of
//!   lines the detector may skip with bit-identical output, shrinking its
//!   tables on workloads dominated by private data.
//! * [`lint`] — structured diagnostics for workload-declaration bugs
//!   (under-declared footprints, `Unknown` streams, overlapping extents,
//!   duplicate worker names) that would otherwise silently degrade both
//!   this analysis and the sharded executor.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod crosscheck;
pub mod lint;
pub mod report;
pub mod summary;

pub use crosscheck::soundness_violations;
pub use lint::{lint_execution, lint_static, lint_workload, LintDiagnostic};
pub use report::{
    analyze_layout, prefilter_for, FindingOrigin, ObjectFinding, StaticReport, Suggestion,
};
pub use summary::{summarize, ClassifiedRange, Identity, LineClass, StaticSummary};
