//! Per-(thread, phase) access summaries and their cache-line intersection.
//!
//! The summary domain is deliberately simple: one **identity** per worker
//! slot of each parallel phase (plus one for the main thread across every
//! serial phase), and per identity the byte-range extents its stream
//! declares through [`Footprint`], each flagged read or write. Identities
//! mirror the dynamic executor's thread numbering exactly — the engine
//! hands out a fresh [`cheetah_sim::ThreadId`] per spawned worker, so a
//! logical worker re-spawned across phases (streamcluster's three
//! `localSearch` phases) is *two identities here and two thread ids
//! there*. That one-to-one correspondence is what makes the line
//! classification sound against the dynamic detector: the detector's
//! two-entry tables accrue invalidations across phases keyed on thread
//! ids, so any line the detector can blame must carry at least two
//! identities, one writing, in this summary.
//!
//! Only **parallel** phases contribute identities to classification. The
//! detector records detailed (word / invalidation) state exclusively for
//! parallel-phase samples — serial writes can trip a line's hot threshold
//! but never appear in its table — so the main thread's serial extents are
//! irrelevant to candidacy. They are still collected (the lint needs
//! them), just not counted.

use cheetah_sim::{ByteExtent, CacheLineId, Footprint, Program};

/// Verdict for one cache line, from declared footprints alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineClass {
    /// At most one parallel identity touches the line: the dynamic
    /// detector can never record an invalidation on it.
    StaticallyPrivate,
    /// Two or more identities, none writing: invalidations are impossible
    /// (the two-entry table only charges writes).
    ReadShared,
    /// Two or more identities with a writer, and some byte of the line is
    /// touched by two identities with a writer among them — the static
    /// analogue of the detector's "same word" true-sharing verdict.
    TrueShareCandidate,
    /// Two or more identities with a writer on byte-disjoint parts of the
    /// line: the classic false-sharing shape, fixable by layout.
    FalseShareCandidate,
}

impl LineClass {
    /// Whether the dynamic detector could report sharing on such a line.
    pub fn is_candidate(self) -> bool {
        matches!(
            self,
            LineClass::TrueShareCandidate | LineClass::FalseShareCandidate
        )
    }
}

impl std::fmt::Display for LineClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LineClass::StaticallyPrivate => "statically-private",
            LineClass::ReadShared => "read-shared",
            LineClass::TrueShareCandidate => "true-sharing-candidate",
            LineClass::FalseShareCandidate => "false-sharing-candidate",
        })
    }
}

/// One static thread identity: a worker slot of one parallel phase, or
/// the main thread (all serial phases fold into the single main identity,
/// matching [`cheetah_sim::ThreadId::MAIN`] dynamically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Identity {
    /// Phase index the identity runs in; `None` for the main thread.
    pub phase: Option<u32>,
    /// Worker slot within the phase; `None` for the main thread.
    pub slot: Option<u32>,
    /// Declared thread name.
    pub name: String,
    /// Whether the identity's stream declared [`Footprint::Unknown`].
    pub unknown_footprint: bool,
}

impl Identity {
    /// Whether this is the main (serial-phase) identity.
    pub fn is_main(&self) -> bool {
        self.phase.is_none()
    }
}

/// A classified, maximal run of cache lines sharing one verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifiedRange {
    /// First line id of the range.
    pub start_line: u64,
    /// One past the last line id.
    pub end_line: u64,
    /// The verdict.
    pub class: LineClass,
    /// Distinct parallel identities touching the range's lines.
    pub identities: u32,
    /// Distinct parallel identities writing to the range's lines.
    pub writers: u32,
}

impl ClassifiedRange {
    /// Number of lines in the range.
    pub fn lines(&self) -> u64 {
        self.end_line - self.start_line
    }
}

/// The complete static summary of one program: every touched line
/// classified, plus the identity table the classification came from.
#[derive(Debug, Clone)]
pub struct StaticSummary {
    /// Cache line size the summary was computed for.
    pub line_size: u64,
    /// Sorted, disjoint classified ranges; lines outside every range are
    /// untouched by any declared parallel footprint.
    pub ranges: Vec<ClassifiedRange>,
    /// Every identity of the program, main first, then phase-major order.
    pub identities: Vec<Identity>,
    /// Per-identity declared extents, parallel identities only, index
    /// aligned with the parallel members of [`identities`]. Used by the
    /// report stage to attribute candidate lines back to threads.
    ///
    /// [`identities`]: StaticSummary::identities
    per_identity_extents: Vec<(usize, Vec<ByteExtent>)>,
}

impl StaticSummary {
    /// Whether any parallel identity declared an unknown footprint — in
    /// which case nothing can be proven private and the candidate set is
    /// conservatively "every line".
    pub fn has_unknown_parallel_footprint(&self) -> bool {
        self.identities
            .iter()
            .any(|i| !i.is_main() && i.unknown_footprint)
    }

    /// The class of one line; `None` if no declared footprint touches it.
    pub fn class_of(&self, line: CacheLineId) -> Option<LineClass> {
        if self.has_unknown_parallel_footprint() {
            // An unknown stream may touch any line with writes.
            return Some(LineClass::FalseShareCandidate);
        }
        let idx = self.ranges.partition_point(|r| r.end_line <= line.0);
        self.ranges
            .get(idx)
            .filter(|r| r.start_line <= line.0)
            .map(|r| r.class)
    }

    /// Whether the dynamic detector could possibly report sharing on
    /// `line` — the membership test of the RacerD-style soundness
    /// property: dynamic findings must all land on candidate lines.
    pub fn is_candidate(&self, line: CacheLineId) -> bool {
        self.class_of(line).is_some_and(LineClass::is_candidate)
    }

    /// The candidate line ranges (true- or false-sharing), sorted.
    pub fn candidate_ranges(&self) -> impl Iterator<Item = &ClassifiedRange> {
        self.ranges.iter().filter(|r| r.class.is_candidate())
    }

    /// The statically-private line ranges, sorted.
    pub fn private_ranges(&self) -> impl Iterator<Item = &ClassifiedRange> {
        self.ranges
            .iter()
            .filter(|r| r.class == LineClass::StaticallyPrivate)
    }

    /// Total touched lines per class, in
    /// `(private, read_shared, true_candidate, false_candidate)` order.
    pub fn class_totals(&self) -> (u64, u64, u64, u64) {
        let mut totals = (0, 0, 0, 0);
        for range in &self.ranges {
            let bucket = match range.class {
                LineClass::StaticallyPrivate => &mut totals.0,
                LineClass::ReadShared => &mut totals.1,
                LineClass::TrueShareCandidate => &mut totals.2,
                LineClass::FalseShareCandidate => &mut totals.3,
            };
            *bucket += range.lines();
        }
        totals
    }

    /// Per-identity declared extents of parallel identities:
    /// `(identity index, normalized extents)`.
    pub fn parallel_extents(&self) -> &[(usize, Vec<ByteExtent>)] {
        &self.per_identity_extents
    }
}

/// Boundary-sweep event at byte granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    pos: u64,
    /// Closes sort before opens at the same position (half-open extents).
    open: bool,
    ident: u32,
    wrote: bool,
}

/// A maximal byte segment with a fixed set of active identities.
#[derive(Debug, Clone)]
struct Segment {
    start: u64,
    end: u64,
    idents: Vec<u32>,
    writer_idents: Vec<u32>,
}

/// Computes the static summary of `program` at `line_size`-byte lines.
///
/// Runs two boundary sweeps: one at byte granularity to find segments of
/// constant identity sets (and byte-overlap evidence for the true/false
/// split), then one at line granularity to union the segments touching
/// each line into its verdict.
pub fn summarize(program: &Program, line_size: u64) -> StaticSummary {
    assert!(line_size.is_power_of_two(), "line size power of two");
    let mut identities: Vec<Identity> = Vec::new();
    let mut main_unknown = false;
    let mut main_seen = false;
    let mut per_identity_extents: Vec<(usize, Vec<ByteExtent>)> = Vec::new();
    let mut events: Vec<Event> = Vec::new();

    for (phase_index, phase) in program.phases().iter().enumerate() {
        match phase {
            cheetah_sim::Phase::Serial(spec) => {
                main_seen = true;
                if matches!(spec.footprint(), Footprint::Unknown) {
                    main_unknown = true;
                }
            }
            cheetah_sim::Phase::Parallel(specs) => {
                for (slot, spec) in specs.iter().enumerate() {
                    let footprint = spec.footprint();
                    let unknown = matches!(footprint, Footprint::Unknown);
                    let ident_index = identities.len();
                    identities.push(Identity {
                        phase: Some(phase_index as u32),
                        slot: Some(slot as u32),
                        name: spec.name().to_string(),
                        unknown_footprint: unknown,
                    });
                    if let Footprint::Bounded(extents) = footprint {
                        for extent in &extents {
                            events.push(Event {
                                pos: extent.start,
                                open: true,
                                ident: ident_index as u32,
                                wrote: extent.wrote,
                            });
                            events.push(Event {
                                pos: extent.end,
                                open: false,
                                ident: ident_index as u32,
                                wrote: extent.wrote,
                            });
                        }
                        per_identity_extents.push((ident_index, extents));
                    }
                }
            }
        }
    }
    if main_seen {
        identities.insert(
            0,
            Identity {
                phase: None,
                slot: None,
                name: "main".to_string(),
                unknown_footprint: main_unknown,
            },
        );
        // Identity indices in events/extents were assigned before the main
        // identity was prepended; shift them to stay aligned.
        for event in &mut events {
            event.ident += 1;
        }
        for (index, _) in &mut per_identity_extents {
            *index += 1;
        }
    }

    let segments = sweep_segments(events);
    let ranges = classify_lines(&segments, line_size);

    StaticSummary {
        line_size,
        ranges,
        identities,
        per_identity_extents,
    }
}

/// Byte-granularity boundary sweep: maximal segments of constant active
/// identity sets. Empty segments are dropped.
fn sweep_segments(mut events: Vec<Event>) -> Vec<Segment> {
    events.sort_unstable();
    let mut segments = Vec::new();
    // identity -> (open count, open write count)
    let mut active: Vec<(u32, (u32, u32))> = Vec::new();
    let mut cursor = 0u64;
    let mut i = 0;
    while i < events.len() {
        let pos = events[i].pos;
        if pos > cursor && !active.is_empty() {
            let idents: Vec<u32> = active.iter().map(|&(id, _)| id).collect();
            let writer_idents: Vec<u32> = active
                .iter()
                .filter(|&&(_, (_, writes))| writes > 0)
                .map(|&(id, _)| id)
                .collect();
            segments.push(Segment {
                start: cursor,
                end: pos,
                idents,
                writer_idents,
            });
        }
        while i < events.len() && events[i].pos == pos {
            let event = events[i];
            let entry = match active.iter_mut().find(|(id, _)| *id == event.ident) {
                Some(entry) => &mut entry.1,
                None => {
                    active.push((event.ident, (0, 0)));
                    &mut active.last_mut().expect("just pushed").1
                }
            };
            if event.open {
                entry.0 += 1;
                entry.1 += u32::from(event.wrote);
            } else {
                entry.0 -= 1;
                entry.1 -= u32::from(event.wrote);
            }
            i += 1;
        }
        active.retain(|&(_, (count, _))| count > 0);
        active.sort_unstable_by_key(|&(id, _)| id);
        cursor = pos;
    }
    segments
}

/// Line-granularity classification from byte segments: each line's
/// identity set is the union over segments overlapping it, and byte-level
/// co-location of a writer with a second identity marks the true-sharing
/// flavour. Adjacent lines with identical verdicts merge into ranges.
fn classify_lines(segments: &[Segment], line_size: u64) -> Vec<ClassifiedRange> {
    // Line-extent events carrying the segment index.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct LineEvent {
        line: u64,
        open: bool,
        segment: u32,
    }
    let mut events: Vec<LineEvent> = Vec::with_capacity(segments.len() * 2);
    for (index, segment) in segments.iter().enumerate() {
        let first = segment.start / line_size;
        let last = (segment.end - 1) / line_size + 1;
        events.push(LineEvent {
            line: first,
            open: true,
            segment: index as u32,
        });
        events.push(LineEvent {
            line: last,
            open: false,
            segment: index as u32,
        });
    }
    events.sort_unstable();

    let mut out: Vec<ClassifiedRange> = Vec::new();
    let mut active: Vec<u32> = Vec::new();
    let mut cursor = 0u64;
    let mut i = 0;
    while i < events.len() {
        let line = events[i].line;
        if line > cursor && !active.is_empty() {
            let mut idents: Vec<u32> = Vec::new();
            let mut writers: Vec<u32> = Vec::new();
            let mut true_overlap = false;
            for &seg in &active {
                let segment = &segments[seg as usize];
                for &id in &segment.idents {
                    if !idents.contains(&id) {
                        idents.push(id);
                    }
                }
                for &id in &segment.writer_idents {
                    if !writers.contains(&id) {
                        writers.push(id);
                    }
                }
                if segment.idents.len() >= 2 && !segment.writer_idents.is_empty() {
                    true_overlap = true;
                }
            }
            let class = if idents.len() <= 1 {
                LineClass::StaticallyPrivate
            } else if writers.is_empty() {
                LineClass::ReadShared
            } else if true_overlap {
                LineClass::TrueShareCandidate
            } else {
                LineClass::FalseShareCandidate
            };
            push_range(
                &mut out,
                ClassifiedRange {
                    start_line: cursor,
                    end_line: line,
                    class,
                    identities: idents.len() as u32,
                    writers: writers.len() as u32,
                },
            );
        }
        while i < events.len() && events[i].line == line {
            let event = &events[i];
            if event.open {
                active.push(event.segment);
            } else {
                active.retain(|&seg| seg != event.segment);
            }
            i += 1;
        }
        cursor = line;
    }
    out
}

/// Appends a range, merging with the previous one when contiguous and
/// identically classified.
fn push_range(out: &mut Vec<ClassifiedRange>, range: ClassifiedRange) {
    if let Some(last) = out.last_mut() {
        if last.end_line == range.start_line
            && last.class == range.class
            && last.identities == range.identities
            && last.writers == range.writers
        {
            last.end_line = range.end_line;
            return;
        }
    }
    out.push(range);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_sim::{Addr, LoopStream, Op, ProgramBuilder, ThreadSpec};

    fn two_writer_program(offsets: (u64, u64)) -> Program {
        ProgramBuilder::new("two")
            .parallel(vec![
                ThreadSpec::new(
                    "a",
                    LoopStream::new(vec![Op::Write(Addr(0x4000_0000 + offsets.0))], 10),
                ),
                ThreadSpec::new(
                    "b",
                    LoopStream::new(vec![Op::Write(Addr(0x4000_0000 + offsets.1))], 10),
                ),
            ])
            .build()
    }

    #[test]
    fn disjoint_words_same_line_is_false_candidate() {
        let summary = summarize(&two_writer_program((0, 8)), 64);
        assert_eq!(
            summary.class_of(Addr(0x4000_0000).line(64)),
            Some(LineClass::FalseShareCandidate)
        );
        assert!(summary.is_candidate(Addr(0x4000_0000).line(64)));
    }

    #[test]
    fn same_word_is_true_candidate() {
        let summary = summarize(&two_writer_program((0, 0)), 64);
        assert_eq!(
            summary.class_of(Addr(0x4000_0000).line(64)),
            Some(LineClass::TrueShareCandidate)
        );
    }

    #[test]
    fn separate_lines_are_private() {
        let summary = summarize(&two_writer_program((0, 64)), 64);
        assert_eq!(
            summary.class_of(Addr(0x4000_0000).line(64)),
            Some(LineClass::StaticallyPrivate)
        );
        assert_eq!(
            summary.class_of(Addr(0x4000_0040).line(64)),
            Some(LineClass::StaticallyPrivate)
        );
        assert!(summary.candidate_ranges().next().is_none());
    }

    #[test]
    fn read_only_sharing_is_read_shared() {
        let program = ProgramBuilder::new("readers")
            .parallel(
                (0..3u64)
                    .map(|t| {
                        let _ = t;
                        ThreadSpec::new("r", LoopStream::new(vec![Op::Read(Addr(0x4000_0000))], 10))
                    })
                    .collect(),
            )
            .build();
        let summary = summarize(&program, 64);
        assert_eq!(
            summary.class_of(Addr(0x4000_0000).line(64)),
            Some(LineClass::ReadShared)
        );
    }

    #[test]
    fn untouched_lines_unclassified() {
        let summary = summarize(&two_writer_program((0, 8)), 64);
        assert_eq!(summary.class_of(Addr(0x5000_0000).line(64)), None);
    }

    #[test]
    fn cross_phase_identities_accumulate() {
        // The same slot re-spawned in a second phase is a distinct
        // identity; the detector would see distinct thread ids, so one
        // writer per phase on one line is still a candidate.
        let program = ProgramBuilder::new("respawn")
            .parallel(vec![ThreadSpec::new(
                "w0",
                LoopStream::new(vec![Op::Write(Addr(0x4000_0000))], 10),
            )])
            .parallel(vec![ThreadSpec::new(
                "w0",
                LoopStream::new(vec![Op::Write(Addr(0x4000_0008))], 10),
            )])
            .build();
        let summary = summarize(&program, 64);
        assert_eq!(
            summary.class_of(Addr(0x4000_0000).line(64)),
            Some(LineClass::FalseShareCandidate)
        );
    }

    #[test]
    fn serial_main_does_not_create_candidates() {
        let program = ProgramBuilder::new("init")
            .serial(ThreadSpec::new(
                "init",
                LoopStream::new(vec![Op::Write(Addr(0x4000_0000))], 10),
            ))
            .parallel(vec![ThreadSpec::new(
                "w0",
                LoopStream::new(vec![Op::Write(Addr(0x4000_0000))], 10),
            )])
            .build();
        let summary = summarize(&program, 64);
        // Only one *parallel* identity: private, exactly like the
        // detector (serial samples never enter two-entry tables).
        assert_eq!(
            summary.class_of(Addr(0x4000_0000).line(64)),
            Some(LineClass::StaticallyPrivate)
        );
        assert!(summary.identities[0].is_main());
    }

    #[test]
    fn unknown_parallel_footprint_poisons_candidacy() {
        struct Opaque;
        impl cheetah_sim::AccessStream for Opaque {
            fn next_op(&mut self) -> Option<Op> {
                None
            }
        }
        let program = ProgramBuilder::new("opaque")
            .parallel(vec![
                ThreadSpec::new("u", Opaque),
                ThreadSpec::new("w", LoopStream::new(vec![Op::Write(Addr(0x4000_0000))], 10)),
            ])
            .build();
        let summary = summarize(&program, 64);
        assert!(summary.has_unknown_parallel_footprint());
        // Everything is conservatively a candidate.
        assert!(summary.is_candidate(CacheLineId(0)));
        assert!(summary.is_candidate(Addr(0x4000_0000).line(64)));
    }
}
