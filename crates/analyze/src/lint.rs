//! Workload-declaration lints: the bugs that silently degrade the
//! analyses built on declared footprints.
//!
//! Every result in this crate — and the sharded executor's extent
//! classification — is only as sound as the workload's declarations. A
//! stream whose [`Footprint`] misses executed accesses used to surface as
//! a silent per-line fallback deep inside the sharded simulator; an
//! `Unknown` footprint quietly disables the static analysis; overlapping
//! object extents make address attribution ambiguous. `--lint` turns each
//! of these into a structured [`LintDiagnostic`] that CI can gate on.
//!
//! Two passes:
//!
//! * [`lint_static`] inspects declarations only (unknown footprints,
//!   overlapping extents, duplicate worker names) — cheap, no execution.
//! * [`lint_execution`] actually runs the program sharded (2 shards) on a
//!   fresh telemetry registry and reads back
//!   [`cheetah_sim::metrics::FOOTPRINT_VIOLATIONS`]: the count of
//!   accesses the executor had to classify via its contract-violation
//!   fallback because the declared footprint did not cover them.

use cheetah_heap::AddressSpace;
use cheetah_sim::observer::NullObserver;
use cheetah_sim::{Footprint, Machine, MachineConfig, ObsHandle, Phase, Program};

/// One declaration bug found in a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintDiagnostic {
    /// A parallel worker's stream declares [`Footprint::Unknown`]: the
    /// static analysis degrades to "everything is a candidate" and the
    /// sharded executor falls back to per-touched-line classification.
    UnknownFootprint {
        /// Phase index the worker runs in.
        phase: usize,
        /// Declared worker name.
        thread: String,
    },
    /// Executed accesses fell outside their stream's declared footprint:
    /// the sharded executor classified them through its violation
    /// fallback (demotion to the fully-ordered write-shared path).
    FootprintViolations {
        /// Number of fallback classifications during the lint run.
        count: u64,
    },
    /// Two live tracked objects claim overlapping byte extents, making
    /// sampled-address attribution ambiguous.
    OverlappingExtents {
        /// Label of the lower-addressed object.
        a: String,
        /// Label of the overlapping object.
        b: String,
    },
    /// Two workers of the same parallel phase declare the same name —
    /// reports and traces cannot tell them apart.
    DuplicateWorkerName {
        /// Phase index.
        phase: usize,
        /// The shared name.
        name: String,
    },
}

impl std::fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintDiagnostic::UnknownFootprint { phase, thread } => write!(
                f,
                "unknown footprint: worker '{thread}' of phase {phase} declares \
                 Footprint::Unknown (static analysis degrades to all-candidate)"
            ),
            LintDiagnostic::FootprintViolations { count } => write!(
                f,
                "footprint under-declared: {count} executed accesses fell outside their \
                 stream's declared extents (sharded executor used the violation fallback)"
            ),
            LintDiagnostic::OverlappingExtents { a, b } => {
                write!(f, "overlapping object extents: '{a}' overlaps '{b}'")
            }
            LintDiagnostic::DuplicateWorkerName { phase, name } => {
                write!(
                    f,
                    "duplicate worker name '{name}' in parallel phase {phase}"
                )
            }
        }
    }
}

/// Declaration-only lints: unknown parallel footprints, overlapping live
/// object extents, duplicate worker names per phase.
pub fn lint_static(program: &Program, space: &AddressSpace) -> Vec<LintDiagnostic> {
    let mut out = Vec::new();
    for (phase_index, phase) in program.phases().iter().enumerate() {
        if let Phase::Parallel(specs) = phase {
            let mut seen: Vec<&str> = Vec::new();
            for spec in specs {
                if matches!(spec.footprint(), Footprint::Unknown) {
                    out.push(LintDiagnostic::UnknownFootprint {
                        phase: phase_index,
                        thread: spec.name().to_string(),
                    });
                }
                if seen.contains(&spec.name()) {
                    let diagnostic = LintDiagnostic::DuplicateWorkerName {
                        phase: phase_index,
                        name: spec.name().to_string(),
                    };
                    if !out.contains(&diagnostic) {
                        out.push(diagnostic);
                    }
                } else {
                    seen.push(spec.name());
                }
            }
        }
    }

    // Live extents: (start, end, label), sorted; adjacent overlap check.
    let mut extents: Vec<(u64, u64, String)> = space
        .heap()
        .objects()
        .iter()
        .filter(|o| o.live)
        .map(|o| (o.start.0, o.reserved_end().0, o.id.to_string()))
        .chain(
            space
                .globals()
                .symbols()
                .iter()
                .map(|s| (s.start.0, s.end().0, s.name.clone())),
        )
        .collect();
    extents.sort();
    for pair in extents.windows(2) {
        if pair[1].0 < pair[0].1 {
            out.push(LintDiagnostic::OverlappingExtents {
                a: pair[0].2.clone(),
                b: pair[1].2.clone(),
            });
        }
    }
    out
}

/// Execution lint: runs `program` under the sharded executor (2 shards)
/// on a fresh telemetry registry and reports any contract-violation
/// fallbacks — executed accesses the declared footprints did not cover.
///
/// Consumes the program (streams are single-use); build a fresh instance
/// for profiling afterwards.
pub fn lint_execution(program: Program) -> Vec<LintDiagnostic> {
    let obs = ObsHandle::fresh();
    let machine = Machine::new(
        MachineConfig::default()
            .with_shards(2)
            .with_obs(obs.clone()),
    );
    machine.run(program, &mut NullObserver);
    let count = cheetah_sim::metrics::snapshot_of(&obs).footprint_violations;
    if count > 0 {
        vec![LintDiagnostic::FootprintViolations { count }]
    } else {
        Vec::new()
    }
}

/// Both passes over one workload instance: static lints first, then the
/// execution lint (which consumes the program).
pub fn lint_workload(program: Program, space: &AddressSpace) -> Vec<LintDiagnostic> {
    let mut out = lint_static(&program, space);
    out.extend(lint_execution(program));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_sim::{Addr, ByteExtent, LoopStream, Op, ProgramBuilder, ThreadSpec};

    #[test]
    fn clean_program_has_no_diagnostics() {
        let program = ProgramBuilder::new("clean")
            .parallel(vec![
                ThreadSpec::new("a", LoopStream::new(vec![Op::Write(Addr(0x4000_0000))], 16)),
                ThreadSpec::new("b", LoopStream::new(vec![Op::Write(Addr(0x4000_0040))], 16)),
            ])
            .build();
        let space = AddressSpace::new();
        assert!(lint_workload(program, &space).is_empty());
    }

    #[test]
    fn unknown_footprint_and_duplicate_name_flagged() {
        struct Opaque;
        impl cheetah_sim::AccessStream for Opaque {
            fn next_op(&mut self) -> Option<Op> {
                None
            }
        }
        let program = ProgramBuilder::new("bad")
            .parallel(vec![
                ThreadSpec::new("w", Opaque),
                ThreadSpec::new("w", LoopStream::new(vec![Op::Work(1)], 1)),
            ])
            .build();
        let diagnostics = lint_static(&program, &AddressSpace::new());
        assert!(diagnostics.iter().any(
            |d| matches!(d, LintDiagnostic::UnknownFootprint { thread, .. } if thread == "w")
        ));
        assert!(diagnostics
            .iter()
            .any(|d| matches!(d, LintDiagnostic::DuplicateWorkerName { name, .. } if name == "w")));
    }

    #[test]
    fn under_declared_footprint_caught_by_execution_lint() {
        // A stream that claims one word but writes a second line too.
        struct Liar {
            ops: Vec<Op>,
        }
        impl cheetah_sim::AccessStream for Liar {
            fn next_op(&mut self) -> Option<Op> {
                self.ops.pop()
            }
            fn footprint(&self) -> Footprint {
                Footprint::bounded(vec![ByteExtent::word(Addr(0x4000_0000), true)])
            }
        }
        let program = ProgramBuilder::new("liar")
            .parallel(vec![
                ThreadSpec::new(
                    "liar",
                    Liar {
                        ops: vec![Op::Write(Addr(0x4000_0000)), Op::Write(Addr(0x4000_1000))],
                    },
                ),
                ThreadSpec::new(
                    "honest",
                    LoopStream::new(vec![Op::Write(Addr(0x4000_0100))], 4),
                ),
            ])
            .build();
        let diagnostics = lint_execution(program);
        assert!(
            matches!(
                diagnostics.as_slice(),
                [LintDiagnostic::FootprintViolations { count }] if *count > 0
            ),
            "expected a violation diagnostic, got {diagnostics:?}"
        );
    }
}
