//! The soundness cross-check: static candidate set ⊇ dynamic findings.
//!
//! The static analysis promises (RacerD-style) that anything the dynamic
//! detector can *report* lives on a line the summary marked a sharing
//! candidate. This module checks that promise against an actual
//! [`Profile`], at two granularities:
//!
//! * **object level** — every reported sharing instance must overlap at
//!   least one candidate line (otherwise the report came from lines the
//!   static analysis proved quiet);
//! * **word level** — every 4-byte word the detector saw two distinct
//!   threads touch, at least one writing, must sit on a candidate line.
//!   The write condition matters: a word two threads only *read* can
//!   legitimately live on a statically read-shared line that serial-phase
//!   writes made hot.
//!
//! Violations come back as human-readable strings (empty vector = the
//! property holds); the property test in `tests/` runs this over every
//! registry workload at several thread counts, including post-repair
//! layouts.

use crate::summary::StaticSummary;
use cheetah_core::Profile;
use cheetah_sim::Addr;

/// Checks the soundness property of `summary` against a dynamic
/// `profile` of the same program. Returns one message per violation;
/// empty means the static candidate set covers everything the detector
/// reported.
pub fn soundness_violations(summary: &StaticSummary, profile: &Profile) -> Vec<String> {
    let line_size = summary.line_size;
    let mut out = Vec::new();
    for assessed in &profile.instances {
        let instance = &assessed.instance;
        let object = &instance.object;
        let first_line = object.start.0 / line_size;
        let last_line = (object.start.0 + object.size.max(1) - 1) / line_size;
        let covered = (first_line..=last_line)
            .any(|line| summary.is_candidate(cheetah_sim::CacheLineId(line)));
        if !covered {
            out.push(format!(
                "instance at 0x{:x}+{} ({:?}, {} invalidations) overlaps no static \
                 candidate line",
                object.start.0, object.size, instance.kind, instance.invalidations
            ));
        }
        for word in &instance.words {
            let threads = word.stats.threads();
            let distinct = threads.len();
            let wrote = threads.iter().any(|t| t.writes > 0);
            if distinct >= 2 && wrote && !summary.is_candidate(Addr(word.addr.0).line(line_size)) {
                out.push(format!(
                    "word 0x{:x} ({} threads, written) of instance 0x{:x} lies on a \
                     non-candidate line",
                    word.addr.0, distinct, object.start.0
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use cheetah_core::{CheetahConfig, CheetahProfiler};
    use cheetah_heap::{AddressSpace, CallStack};
    use cheetah_sim::{Addr, LoopStream, Machine, MachineConfig, Op, ProgramBuilder, ThreadSpec};

    #[test]
    fn contended_profile_is_covered_by_static_candidates() {
        let mut space = AddressSpace::new();
        let base = space
            .heap_mut()
            .alloc(cheetah_sim::ThreadId::MAIN, 64, CallStack::single("x.c", 1))
            .expect("alloc");
        let build = || {
            ProgramBuilder::new("t")
                .parallel(vec![
                    ThreadSpec::new("a", LoopStream::new(vec![Op::Write(base)], 50_000)),
                    ThreadSpec::new(
                        "b",
                        LoopStream::new(vec![Op::Write(Addr(base.0 + 8))], 50_000),
                    ),
                ])
                .build()
        };
        let summary = summarize(&build(), 64);
        let mut profiler = CheetahProfiler::new(CheetahConfig::scaled(256), &space);
        Machine::new(MachineConfig::default()).run(build(), &mut profiler);
        let profile = profiler.finish();
        assert!(
            !profile.instances.is_empty(),
            "expected the dynamic detector to find the contention"
        );
        assert_eq!(
            soundness_violations(&summary, &profile),
            Vec::<String>::new()
        );
    }
}
