//! Fork-join phase tracking (Fig. 3 of the paper).
//!
//! Cheetah infers the phase structure of an application from thread
//! lifecycle events alone: *"an application leaves a serial phase after the
//! creation of a thread; it leaves a parallel phase after all child threads
//! (created in the current phase) have been successfully joined."*
//! [`PhaseTracker`] implements that automaton. It deliberately does **not**
//! look at the [`cheetah_sim::Program`]'s declared phases — reconstructing
//! them from events is part of what the paper's runtime does, and tests
//! check that the reconstruction matches the ground truth.

use cheetah_sim::{Cycles, PhaseKind, ThreadId};
use std::collections::BTreeSet;

/// One reconstructed phase interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseInterval {
    /// Phase index in program order.
    pub index: u32,
    /// Serial or parallel.
    pub kind: PhaseKind,
    /// Start time.
    pub start: Cycles,
    /// End time.
    pub end: Cycles,
    /// Child threads of the phase (empty for serial phases).
    pub threads: Vec<ThreadId>,
}

impl PhaseInterval {
    /// Duration of the interval.
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }
}

#[derive(Debug)]
enum State {
    Serial {
        start: Cycles,
    },
    Parallel {
        start: Cycles,
        members: Vec<ThreadId>,
        live: BTreeSet<ThreadId>,
    },
}

/// Reconstructs the fork-join phase structure from thread events.
///
/// ```
/// use cheetah_runtime::PhaseTracker;
/// use cheetah_sim::{PhaseKind, ThreadId};
///
/// let mut tracker = PhaseTracker::new();
/// tracker.on_thread_created(ThreadId(1), 100);
/// tracker.on_thread_created(ThreadId(2), 110);
/// tracker.on_thread_exited(ThreadId(1), 500);
/// tracker.on_thread_exited(ThreadId(2), 600);
/// let phases = tracker.finish(700);
/// assert_eq!(phases.len(), 3); // serial, parallel, serial
/// assert_eq!(phases[1].kind, PhaseKind::Parallel);
/// assert_eq!(phases[1].duration(), 500);
/// ```
#[derive(Debug)]
pub struct PhaseTracker {
    state: State,
    intervals: Vec<PhaseInterval>,
    /// Set when events violate the strict fork-join shape (e.g. a creation
    /// after some, but not all, children of the phase have exited).
    irregular: bool,
    finished: bool,
}

impl Default for PhaseTracker {
    fn default() -> Self {
        PhaseTracker::new()
    }
}

impl PhaseTracker {
    /// A tracker starting in a serial phase at time 0.
    pub fn new() -> Self {
        PhaseTracker {
            state: State::Serial { start: 0 },
            intervals: Vec::new(),
            irregular: false,
            finished: false,
        }
    }

    /// Kind of the phase currently open.
    pub fn current_kind(&self) -> PhaseKind {
        match self.state {
            State::Serial { .. } => PhaseKind::Serial,
            State::Parallel { .. } => PhaseKind::Parallel,
        }
    }

    /// Index of the phase currently open.
    pub fn current_index(&self) -> u32 {
        self.intervals.len() as u32
    }

    /// Whether the event stream so far matches the strict fork-join model
    /// Cheetah's application-level assessment requires (§3.3).
    pub fn is_fork_join(&self) -> bool {
        !self.irregular
    }

    /// Records the creation of a child thread.
    pub fn on_thread_created(&mut self, thread: ThreadId, now: Cycles) {
        debug_assert!(!self.finished, "events after finish()");
        match &mut self.state {
            State::Serial { start } => {
                let start = *start;
                self.intervals.push(PhaseInterval {
                    index: self.intervals.len() as u32,
                    kind: PhaseKind::Serial,
                    start,
                    end: now,
                    threads: Vec::new(),
                });
                let mut live = BTreeSet::new();
                live.insert(thread);
                self.state = State::Parallel {
                    start: now,
                    members: vec![thread],
                    live,
                };
            }
            State::Parallel { members, live, .. } => {
                // Creating another thread is normal while the whole cohort
                // is still being spawned; it breaks the fork-join shape only
                // if some member already exited (partial join + respawn).
                if live.len() != members.len() {
                    self.irregular = true;
                }
                members.push(thread);
                live.insert(thread);
            }
        }
    }

    /// Records a child thread's exit (its join, from the main thread's
    /// point of view).
    pub fn on_thread_exited(&mut self, thread: ThreadId, now: Cycles) {
        debug_assert!(!self.finished, "events after finish()");
        match &mut self.state {
            State::Serial { .. } => {
                // Exit without a tracked creation: irregular stream.
                self.irregular = true;
            }
            State::Parallel {
                start,
                members,
                live,
            } => {
                if !live.remove(&thread) {
                    self.irregular = true;
                    return;
                }
                if live.is_empty() {
                    let interval = PhaseInterval {
                        index: self.intervals.len() as u32,
                        kind: PhaseKind::Parallel,
                        start: *start,
                        end: now,
                        threads: std::mem::take(members),
                    };
                    self.intervals.push(interval);
                    self.state = State::Serial { start: now };
                }
            }
        }
    }

    /// Closes the current phase at `now` and returns all intervals.
    ///
    /// A zero-length trailing serial phase (program ended exactly at a
    /// join) is dropped.
    pub fn finish(&mut self, now: Cycles) -> &[PhaseInterval] {
        if !self.finished {
            self.finished = true;
            match &mut self.state {
                State::Serial { start } => {
                    if *start < now {
                        let start = *start;
                        self.intervals.push(PhaseInterval {
                            index: self.intervals.len() as u32,
                            kind: PhaseKind::Serial,
                            start,
                            end: now,
                            threads: Vec::new(),
                        });
                    }
                }
                State::Parallel {
                    start,
                    members,
                    live,
                } => {
                    // Program ended with unjoined threads: irregular, but
                    // still record the interval.
                    if !live.is_empty() {
                        self.irregular = true;
                    }
                    let interval = PhaseInterval {
                        index: self.intervals.len() as u32,
                        kind: PhaseKind::Parallel,
                        start: *start,
                        end: now,
                        threads: std::mem::take(members),
                    };
                    self.intervals.push(interval);
                }
            }
        }
        &self.intervals
    }

    /// Intervals closed so far (all of them after [`PhaseTracker::finish`]).
    pub fn intervals(&self) -> &[PhaseInterval] {
        &self.intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_parallel_phase() {
        let mut tracker = PhaseTracker::new();
        tracker.on_thread_created(ThreadId(1), 50);
        tracker.on_thread_created(ThreadId(2), 60);
        tracker.on_thread_exited(ThreadId(2), 400);
        tracker.on_thread_exited(ThreadId(1), 450);
        let phases = tracker.finish(500);
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].kind, PhaseKind::Serial);
        assert_eq!((phases[0].start, phases[0].end), (0, 50));
        assert_eq!(phases[1].kind, PhaseKind::Parallel);
        assert_eq!((phases[1].start, phases[1].end), (50, 450));
        assert_eq!(phases[1].threads, vec![ThreadId(1), ThreadId(2)]);
        assert_eq!(phases[2].kind, PhaseKind::Serial);
        assert_eq!((phases[2].start, phases[2].end), (450, 500));
    }

    #[test]
    fn two_parallel_phases_alternate_with_serial() {
        let mut tracker = PhaseTracker::new();
        tracker.on_thread_created(ThreadId(1), 10);
        tracker.on_thread_exited(ThreadId(1), 100);
        tracker.on_thread_created(ThreadId(2), 150);
        tracker.on_thread_exited(ThreadId(2), 300);
        let phases = tracker.finish(300);
        // serial, parallel, serial, parallel — trailing empty serial dropped.
        let kinds: Vec<_> = phases.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PhaseKind::Serial,
                PhaseKind::Parallel,
                PhaseKind::Serial,
                PhaseKind::Parallel
            ]
        );
        assert!(tracker.is_fork_join());
    }

    #[test]
    fn indices_are_sequential() {
        let mut tracker = PhaseTracker::new();
        tracker.on_thread_created(ThreadId(1), 10);
        tracker.on_thread_exited(ThreadId(1), 20);
        let phases = tracker.finish(30);
        let indices: Vec<_> = phases.iter().map(|p| p.index).collect();
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn current_kind_follows_state() {
        let mut tracker = PhaseTracker::new();
        assert_eq!(tracker.current_kind(), PhaseKind::Serial);
        assert_eq!(tracker.current_index(), 0);
        tracker.on_thread_created(ThreadId(1), 10);
        assert_eq!(tracker.current_kind(), PhaseKind::Parallel);
        assert_eq!(tracker.current_index(), 1);
        tracker.on_thread_exited(ThreadId(1), 20);
        assert_eq!(tracker.current_kind(), PhaseKind::Serial);
        assert_eq!(tracker.current_index(), 2);
    }

    #[test]
    fn respawn_after_partial_join_is_irregular() {
        let mut tracker = PhaseTracker::new();
        tracker.on_thread_created(ThreadId(1), 10);
        tracker.on_thread_created(ThreadId(2), 11);
        tracker.on_thread_exited(ThreadId(1), 100);
        // T2 still live, and a new thread appears: pipeline shape, not
        // fork-join.
        tracker.on_thread_created(ThreadId(3), 110);
        assert!(!tracker.is_fork_join());
    }

    #[test]
    fn unjoined_threads_at_end_are_irregular() {
        let mut tracker = PhaseTracker::new();
        tracker.on_thread_created(ThreadId(1), 10);
        tracker.finish(100);
        assert!(!tracker.is_fork_join());
        assert_eq!(
            tracker.intervals().last().unwrap().kind,
            PhaseKind::Parallel
        );
    }

    #[test]
    fn unknown_exit_is_irregular() {
        let mut tracker = PhaseTracker::new();
        tracker.on_thread_exited(ThreadId(9), 10);
        assert!(!tracker.is_fork_join());
    }

    #[test]
    fn trailing_zero_length_serial_dropped() {
        let mut tracker = PhaseTracker::new();
        tracker.on_thread_created(ThreadId(1), 10);
        tracker.on_thread_exited(ThreadId(1), 100);
        let phases = tracker.finish(100);
        assert_eq!(phases.len(), 2);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut tracker = PhaseTracker::new();
        tracker.on_thread_created(ThreadId(1), 10);
        tracker.on_thread_exited(ThreadId(1), 100);
        let n = tracker.finish(120).len();
        assert_eq!(tracker.finish(120).len(), n);
    }
}
