//! # cheetah-runtime — thread lifecycle and fork-join phase tracking
//!
//! Cheetah's assessment (§3 of the paper) needs runtime structure that the
//! PMU cannot provide: per-thread wall-clock runtimes (`RT_t`, measured by
//! RDTSC around each start routine) and the serial/parallel phase timeline
//! of the fork-join model (Fig. 3). This crate supplies both:
//!
//! * [`PhaseTracker`] — reconstructs the phase structure purely from thread
//!   creation/exit events, flagging programs that are not fork-join shaped;
//! * [`ThreadRegistry`] — per-thread start/end timestamps plus the sampled
//!   access and latency totals the per-thread prediction consumes.
//!
//! Both are event-driven and source-agnostic: Cheetah's profiler feeds them
//! from simulator callbacks, and a native deployment would feed them from
//! intercepted `pthread_create`/`pthread_join`.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod phase;
pub mod threads;

pub use phase::{PhaseInterval, PhaseTracker};
pub use threads::{PhaseSamples, ThreadRegistry, ThreadStats};
