//! Per-thread runtime statistics.
//!
//! For the assessment equations (§3.2 of the paper) Cheetah needs, for each
//! thread `t`: its wall-clock runtime `RT_t` (RDTSC around the start
//! routine), the number of sampled accesses `Accesses_t` and their total
//! latency `Cycles_t`. [`ThreadRegistry`] accumulates exactly those, keyed
//! by thread id, with the creation phase recorded so the application-level
//! prediction can re-time each parallel phase independently.

use cheetah_sim::util::FastMap;
use cheetah_sim::{Cycles, ThreadId};

/// Sampled-access totals of one thread within one phase interval.
///
/// The assessment equations (§3.2) work phase by phase: `Cycles_t` must be
/// the cycles the thread's samples accumulated *within that phase*, not
/// over its whole life — a thread spanning two parallel phases would
/// otherwise have its whole-run cycles double-counted against each phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSamples {
    /// Phase index (the tracker's reconstructed numbering).
    pub phase: u32,
    /// Sampled accesses within the phase.
    pub accesses: u64,
    /// Total latency of those samples.
    pub cycles: Cycles,
    /// Highest retired-instruction count observed during the phase (the
    /// thread's PMU instruction counter, read whenever a sample for the
    /// thread is delivered).
    pub instructions: u64,
}

/// Statistics for one tracked thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadStats {
    /// Thread id.
    pub id: ThreadId,
    /// Thread name (from the spec; `"main"` for the main thread).
    pub name: String,
    /// Timestamp of the start routine's entry.
    pub start: Cycles,
    /// Timestamp of the start routine's exit; `None` while running.
    pub end: Option<Cycles>,
    /// Index of the phase in which the thread was created.
    pub creation_phase: u32,
    /// Number of sampled memory accesses attributed to this thread.
    pub sampled_accesses: u64,
    /// Total latency (cycles) of those sampled accesses.
    pub sampled_cycles: Cycles,
    /// Retired instructions over the thread's whole life (the per-thread
    /// hardware instruction counter, read for free at thread exit).
    pub instructions: u64,
    /// Per-phase breakdown of the sampled totals, in first-sample order.
    pub phase_samples: Vec<PhaseSamples>,
}

impl ThreadStats {
    /// The thread's runtime `RT_t`; for running threads, the time elapsed
    /// until `now_hint` would be needed, so this returns `None`.
    pub fn runtime(&self) -> Option<Cycles> {
        self.end.map(|end| end - self.start)
    }

    /// Mean sampled access latency, or `None` without samples.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.sampled_accesses == 0 {
            None
        } else {
            Some(self.sampled_cycles as f64 / self.sampled_accesses as f64)
        }
    }

    /// Sampled totals within one phase (zeros if the thread had no samples
    /// there).
    pub fn in_phase(&self, phase: u32) -> PhaseSamples {
        self.phase_samples
            .iter()
            .find(|p| p.phase == phase)
            .copied()
            .unwrap_or(PhaseSamples {
                phase,
                accesses: 0,
                cycles: 0,
                instructions: 0,
            })
    }

    /// Retired instructions within one phase: the counter's highest
    /// reading up to that phase minus its highest value in any earlier
    /// *recorded* phase. A phase with no recorded reading at all folds its
    /// instructions into the thread's next recorded phase; with
    /// sample-delivery recording that can only happen for a thread active
    /// in several parallel phases yet sampled in none of the earlier ones
    /// (the fork-join tracker places each worker in exactly one parallel
    /// interval, so the profiler pipeline never produces that shape).
    pub fn instructions_in_phase(&self, phase: u32) -> u64 {
        let at_end = self
            .phase_samples
            .iter()
            .filter(|p| p.phase <= phase)
            .map(|p| p.instructions)
            .max()
            .unwrap_or(0);
        let before = self
            .phase_samples
            .iter()
            .filter(|p| p.phase < phase)
            .map(|p| p.instructions)
            .max()
            .unwrap_or(0);
        at_end - before
    }
}

/// Registry of every thread seen during a profile.
///
/// ```
/// use cheetah_runtime::ThreadRegistry;
/// use cheetah_sim::ThreadId;
///
/// let mut registry = ThreadRegistry::new();
/// registry.on_start(ThreadId(1), "worker", 100, 1);
/// registry.record_sample(ThreadId(1), 1, 150);
/// registry.on_exit(ThreadId(1), 5_100);
/// let stats = registry.get(ThreadId(1)).unwrap();
/// assert_eq!(stats.runtime(), Some(5_000));
/// assert_eq!(stats.sampled_cycles, 150);
/// assert_eq!(stats.in_phase(1).cycles, 150);
/// assert_eq!(stats.in_phase(2).cycles, 0);
/// ```
#[derive(Debug, Default)]
pub struct ThreadRegistry {
    order: Vec<ThreadId>,
    by_id: FastMap<ThreadId, ThreadStats>,
}

impl ThreadRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ThreadRegistry::default()
    }

    /// Registers a thread start. Re-registering an id replaces the previous
    /// record (thread ids are never reused by the simulator).
    pub fn on_start(&mut self, id: ThreadId, name: &str, now: Cycles, creation_phase: u32) {
        if !self.by_id.contains_key(&id) {
            self.order.push(id);
        }
        self.by_id.insert(
            id,
            ThreadStats {
                id,
                name: name.to_string(),
                start: now,
                end: None,
                creation_phase,
                sampled_accesses: 0,
                sampled_cycles: 0,
                instructions: 0,
                phase_samples: Vec::new(),
            },
        );
    }

    /// Records a thread exit; unknown ids are ignored (exits can race with
    /// profiler attach in real deployments).
    pub fn on_exit(&mut self, id: ThreadId, now: Cycles) {
        if let Some(stats) = self.by_id.get_mut(&id) {
            stats.end = Some(now);
        }
    }

    /// Attributes one sampled access of `latency` cycles to `id`, taken
    /// while `phase` was the open phase interval.
    pub fn record_sample(&mut self, id: ThreadId, phase: u32, latency: Cycles) {
        if let Some(stats) = self.by_id.get_mut(&id) {
            stats.sampled_accesses += 1;
            stats.sampled_cycles += latency;
            match stats.phase_samples.iter_mut().find(|p| p.phase == phase) {
                Some(entry) => {
                    entry.accesses += 1;
                    entry.cycles += latency;
                }
                None => stats.phase_samples.push(PhaseSamples {
                    phase,
                    accesses: 1,
                    cycles: latency,
                    instructions: 0,
                }),
            }
        }
    }

    /// Records the thread's retired-instruction counter reading `retired`,
    /// observed while `phase` was open. Monotonic (keeps the maximum); the
    /// assessment uses the per-phase readings to split each thread's
    /// runtime into compute and memory-stall time.
    pub fn record_progress(&mut self, id: ThreadId, phase: u32, retired: u64) {
        if let Some(stats) = self.by_id.get_mut(&id) {
            stats.instructions = stats.instructions.max(retired);
            match stats.phase_samples.iter_mut().find(|p| p.phase == phase) {
                Some(entry) => entry.instructions = entry.instructions.max(retired),
                None => stats.phase_samples.push(PhaseSamples {
                    phase,
                    accesses: 0,
                    cycles: 0,
                    instructions: retired,
                }),
            }
        }
    }

    /// Stats for one thread.
    pub fn get(&self, id: ThreadId) -> Option<&ThreadStats> {
        self.by_id.get(&id)
    }

    /// Iterates threads in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &ThreadStats> {
        self.order.iter().filter_map(|id| self.by_id.get(id))
    }

    /// Number of threads ever registered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no thread was registered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Threads created in the given phase.
    pub fn in_phase(&self, phase: u32) -> impl Iterator<Item = &ThreadStats> {
        self.iter().filter(move |t| t.creation_phase == phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_samples() {
        let mut registry = ThreadRegistry::new();
        registry.on_start(ThreadId(0), "main", 0, 0);
        registry.on_start(ThreadId(1), "w0", 100, 1);
        registry.record_sample(ThreadId(1), 1, 150);
        registry.record_sample(ThreadId(1), 1, 4);
        registry.on_exit(ThreadId(1), 1_100);
        let w0 = registry.get(ThreadId(1)).unwrap();
        assert_eq!(w0.runtime(), Some(1_000));
        assert_eq!(w0.sampled_accesses, 2);
        assert_eq!(w0.sampled_cycles, 154);
        assert_eq!(w0.mean_latency(), Some(77.0));
        assert_eq!(registry.get(ThreadId(0)).unwrap().runtime(), None);
    }

    #[test]
    fn unknown_ids_ignored() {
        let mut registry = ThreadRegistry::new();
        registry.record_sample(ThreadId(7), 1, 10);
        registry.on_exit(ThreadId(7), 10);
        assert!(registry.get(ThreadId(7)).is_none());
        assert!(registry.is_empty());
    }

    #[test]
    fn progress_tracks_per_phase_instruction_deltas() {
        let mut registry = ThreadRegistry::new();
        registry.on_start(ThreadId(1), "w", 0, 1);
        registry.record_progress(ThreadId(1), 1, 500);
        registry.record_progress(ThreadId(1), 1, 400); // stale, ignored
        registry.record_progress(ThreadId(1), 3, 900);
        let stats = registry.get(ThreadId(1)).unwrap();
        assert_eq!(stats.instructions, 900);
        assert_eq!(stats.instructions_in_phase(1), 500);
        assert_eq!(stats.instructions_in_phase(3), 400);
        assert_eq!(stats.instructions_in_phase(2), 0);
        // Samples and progress share the per-phase slots.
        registry.record_sample(ThreadId(1), 3, 150);
        let stats = registry.get(ThreadId(1)).unwrap();
        assert_eq!(stats.in_phase(3).accesses, 1);
        assert_eq!(stats.in_phase(3).instructions, 900);
    }

    #[test]
    fn iteration_preserves_registration_order() {
        let mut registry = ThreadRegistry::new();
        for i in [3u32, 1, 2] {
            registry.on_start(ThreadId(i), "t", 0, 0);
        }
        let order: Vec<u32> = registry.iter().map(|t| t.id.0).collect();
        assert_eq!(order, vec![3, 1, 2]);
        assert_eq!(registry.len(), 3);
    }

    #[test]
    fn phase_filter() {
        let mut registry = ThreadRegistry::new();
        registry.on_start(ThreadId(1), "a", 0, 1);
        registry.on_start(ThreadId(2), "b", 0, 1);
        registry.on_start(ThreadId(3), "c", 0, 3);
        assert_eq!(registry.in_phase(1).count(), 2);
        assert_eq!(registry.in_phase(3).count(), 1);
        assert_eq!(registry.in_phase(2).count(), 0);
    }

    #[test]
    fn mean_latency_requires_samples() {
        let mut registry = ThreadRegistry::new();
        registry.on_start(ThreadId(1), "a", 0, 0);
        assert_eq!(registry.get(ThreadId(1)).unwrap().mean_latency(), None);
    }
}
