//! Per-thread runtime statistics.
//!
//! For the assessment equations (§3.2 of the paper) Cheetah needs, for each
//! thread `t`: its wall-clock runtime `RT_t` (RDTSC around the start
//! routine), the number of sampled accesses `Accesses_t` and their total
//! latency `Cycles_t`. [`ThreadRegistry`] accumulates exactly those, keyed
//! by thread id, with the creation phase recorded so the application-level
//! prediction can re-time each parallel phase independently.

use cheetah_sim::util::FastMap;
use cheetah_sim::{Cycles, ThreadId};

/// Statistics for one tracked thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadStats {
    /// Thread id.
    pub id: ThreadId,
    /// Thread name (from the spec; `"main"` for the main thread).
    pub name: String,
    /// Timestamp of the start routine's entry.
    pub start: Cycles,
    /// Timestamp of the start routine's exit; `None` while running.
    pub end: Option<Cycles>,
    /// Index of the phase in which the thread was created.
    pub creation_phase: u32,
    /// Number of sampled memory accesses attributed to this thread.
    pub sampled_accesses: u64,
    /// Total latency (cycles) of those sampled accesses.
    pub sampled_cycles: Cycles,
}

impl ThreadStats {
    /// The thread's runtime `RT_t`; for running threads, the time elapsed
    /// until `now_hint` would be needed, so this returns `None`.
    pub fn runtime(&self) -> Option<Cycles> {
        self.end.map(|end| end - self.start)
    }

    /// Mean sampled access latency, or `None` without samples.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.sampled_accesses == 0 {
            None
        } else {
            Some(self.sampled_cycles as f64 / self.sampled_accesses as f64)
        }
    }
}

/// Registry of every thread seen during a profile.
///
/// ```
/// use cheetah_runtime::ThreadRegistry;
/// use cheetah_sim::ThreadId;
///
/// let mut registry = ThreadRegistry::new();
/// registry.on_start(ThreadId(1), "worker", 100, 1);
/// registry.record_sample(ThreadId(1), 150);
/// registry.on_exit(ThreadId(1), 5_100);
/// let stats = registry.get(ThreadId(1)).unwrap();
/// assert_eq!(stats.runtime(), Some(5_000));
/// assert_eq!(stats.sampled_cycles, 150);
/// ```
#[derive(Debug, Default)]
pub struct ThreadRegistry {
    order: Vec<ThreadId>,
    by_id: FastMap<ThreadId, ThreadStats>,
}

impl ThreadRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ThreadRegistry::default()
    }

    /// Registers a thread start. Re-registering an id replaces the previous
    /// record (thread ids are never reused by the simulator).
    pub fn on_start(&mut self, id: ThreadId, name: &str, now: Cycles, creation_phase: u32) {
        if !self.by_id.contains_key(&id) {
            self.order.push(id);
        }
        self.by_id.insert(
            id,
            ThreadStats {
                id,
                name: name.to_string(),
                start: now,
                end: None,
                creation_phase,
                sampled_accesses: 0,
                sampled_cycles: 0,
            },
        );
    }

    /// Records a thread exit; unknown ids are ignored (exits can race with
    /// profiler attach in real deployments).
    pub fn on_exit(&mut self, id: ThreadId, now: Cycles) {
        if let Some(stats) = self.by_id.get_mut(&id) {
            stats.end = Some(now);
        }
    }

    /// Attributes one sampled access of `latency` cycles to `id`.
    pub fn record_sample(&mut self, id: ThreadId, latency: Cycles) {
        if let Some(stats) = self.by_id.get_mut(&id) {
            stats.sampled_accesses += 1;
            stats.sampled_cycles += latency;
        }
    }

    /// Stats for one thread.
    pub fn get(&self, id: ThreadId) -> Option<&ThreadStats> {
        self.by_id.get(&id)
    }

    /// Iterates threads in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &ThreadStats> {
        self.order.iter().filter_map(|id| self.by_id.get(id))
    }

    /// Number of threads ever registered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no thread was registered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Threads created in the given phase.
    pub fn in_phase(&self, phase: u32) -> impl Iterator<Item = &ThreadStats> {
        self.iter().filter(move |t| t.creation_phase == phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_samples() {
        let mut registry = ThreadRegistry::new();
        registry.on_start(ThreadId(0), "main", 0, 0);
        registry.on_start(ThreadId(1), "w0", 100, 1);
        registry.record_sample(ThreadId(1), 150);
        registry.record_sample(ThreadId(1), 4);
        registry.on_exit(ThreadId(1), 1_100);
        let w0 = registry.get(ThreadId(1)).unwrap();
        assert_eq!(w0.runtime(), Some(1_000));
        assert_eq!(w0.sampled_accesses, 2);
        assert_eq!(w0.sampled_cycles, 154);
        assert_eq!(w0.mean_latency(), Some(77.0));
        assert_eq!(registry.get(ThreadId(0)).unwrap().runtime(), None);
    }

    #[test]
    fn unknown_ids_ignored() {
        let mut registry = ThreadRegistry::new();
        registry.record_sample(ThreadId(7), 10);
        registry.on_exit(ThreadId(7), 10);
        assert!(registry.get(ThreadId(7)).is_none());
        assert!(registry.is_empty());
    }

    #[test]
    fn iteration_preserves_registration_order() {
        let mut registry = ThreadRegistry::new();
        for i in [3u32, 1, 2] {
            registry.on_start(ThreadId(i), "t", 0, 0);
        }
        let order: Vec<u32> = registry.iter().map(|t| t.id.0).collect();
        assert_eq!(order, vec![3, 1, 2]);
        assert_eq!(registry.len(), 3);
    }

    #[test]
    fn phase_filter() {
        let mut registry = ThreadRegistry::new();
        registry.on_start(ThreadId(1), "a", 0, 1);
        registry.on_start(ThreadId(2), "b", 0, 1);
        registry.on_start(ThreadId(3), "c", 0, 3);
        assert_eq!(registry.in_phase(1).count(), 2);
        assert_eq!(registry.in_phase(3).count(), 1);
        assert_eq!(registry.in_phase(2).count(), 0);
    }

    #[test]
    fn mean_latency_requires_samples() {
        let mut registry = ThreadRegistry::new();
        registry.on_start(ThreadId(1), "a", 0, 0);
        assert_eq!(registry.get(ThreadId(1)).unwrap().mean_latency(), None);
    }
}
