//! Property tests of the fork-join phase automaton.

use cheetah_runtime::{PhaseTracker, ThreadRegistry};
use cheetah_sim::{PhaseKind, ThreadId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn kinds_alternate_and_members_partition(cohorts in proptest::collection::vec(1u32..8, 1..8)) {
        let mut tracker = PhaseTracker::new();
        let mut now = 1u64;
        let mut next = 1u32;
        let mut all_members = Vec::new();
        for cohort in &cohorts {
            let ids: Vec<ThreadId> = (0..*cohort).map(|_| { let id = ThreadId(next); next += 1; id }).collect();
            for &id in &ids { tracker.on_thread_created(id, now); now += 2; }
            now += 10;
            for &id in &ids { tracker.on_thread_exited(id, now); now += 2; }
            all_members.extend(ids);
        }
        let phases = tracker.finish(now + 1).to_vec();
        // Kinds strictly alternate.
        for pair in phases.windows(2) {
            prop_assert_ne!(pair[0].kind, pair[1].kind);
        }
        // Every created thread appears in exactly one parallel phase.
        let mut seen = Vec::new();
        for phase in &phases {
            match phase.kind {
                PhaseKind::Serial => prop_assert!(phase.threads.is_empty()),
                PhaseKind::Parallel => seen.extend(phase.threads.iter().copied()),
            }
        }
        seen.sort();
        let mut expected = all_members.clone();
        expected.sort();
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn registry_aggregates_are_sums(samples in proptest::collection::vec((0u32..5, 1u32..4, 1u64..500), 0..200)) {
        let mut registry = ThreadRegistry::new();
        for t in 0..5u32 {
            registry.on_start(ThreadId(t), "w", 0, 1);
        }
        let mut expected = [(0u64, 0u64); 5];
        let mut expected_by_phase = std::collections::BTreeMap::<(u32, u32), (u64, u64)>::new();
        for (t, phase, latency) in samples {
            registry.record_sample(ThreadId(t), phase, latency);
            expected[t as usize].0 += 1;
            expected[t as usize].1 += latency;
            let slot = expected_by_phase.entry((t, phase)).or_default();
            slot.0 += 1;
            slot.1 += latency;
        }
        for t in 0..5u32 {
            let stats = registry.get(ThreadId(t)).unwrap();
            prop_assert_eq!(stats.sampled_accesses, expected[t as usize].0);
            prop_assert_eq!(stats.sampled_cycles, expected[t as usize].1);
            // Per-phase slices partition the totals.
            let phase_total: u64 = stats.phase_samples.iter().map(|p| p.cycles).sum();
            prop_assert_eq!(phase_total, stats.sampled_cycles);
            for (phase, (accesses, cycles)) in expected_by_phase
                .iter()
                .filter(|((tt, _), _)| *tt == t)
                .map(|((_, p), v)| (*p, *v))
            {
                prop_assert_eq!(stats.in_phase(phase).accesses, accesses);
                prop_assert_eq!(stats.in_phase(phase).cycles, cycles);
            }
        }
    }
}
