//! # cheetah-pmu — PMU address sampling
//!
//! The measurement substrate of the Cheetah reproduction. Cheetah collects
//! memory accesses with the hardware performance monitoring units' address
//! sampling (AMD IBS, Intel PEBS): one access out of every ~64K retired
//! instructions is captured with its data address, read/write direction,
//! latency and triggering thread (§2.1 of the paper).
//!
//! This crate provides that capability twice over:
//!
//! * [`SamplingEngine`] / [`SimPmu`] — a deterministic simulated PMU over
//!   [`cheetah_sim`]'s access stream. It reproduces IBS behaviour in the
//!   ways that matter: per-thread retired-instruction periods, randomized
//!   sampling intervals, per-sample trap cost and per-thread counter-setup
//!   cost (both charged back into simulated time so that Fig. 4's overhead
//!   experiment is reproducible).
//! * `perf::PerfSampler` *(feature `linux-pmu`)* — real
//!   `perf_event_open(2)` glue that delivers the same [`Sample`] records
//!   from native hardware, for running the detector outside the simulator.
//!
//! Everything downstream (detection, assessment, reporting) consumes only
//! [`Sample`] values and is agnostic to the source. A third piece,
//! [`FaultPlan`] / [`FaultInjector`], wraps either source with
//! deterministic, seeded stream faults (drops, bursts, reordering,
//! duplication, field corruption, truncation) so the detector's
//! graceful-degradation guarantees are testable properties.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(feature = "linux-pmu"), forbid(unsafe_code))]

pub mod config;
pub mod engine;
pub mod faults;
pub mod sample;
pub mod sim_pmu;

#[cfg(feature = "linux-pmu")]
pub mod perf;

pub use config::{ConfigError, SamplerConfig, DEFAULT_PERIOD};
pub use engine::{SamplerReplica, SamplingEngine};
pub use faults::{CorruptFields, FaultCounts, FaultInjector, FaultPlan};
pub use sample::Sample;
pub use sim_pmu::SimPmu;
