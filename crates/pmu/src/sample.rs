//! The sample record delivered by the PMU.

use cheetah_sim::{AccessKind, Addr, Cycles, PhaseKind, ThreadId};
use std::fmt;

/// One sampled memory access, as delivered by AMD IBS / Intel PEBS (or the
/// simulated PMU): the exact tuple Cheetah's detection and assessment
/// modules consume (§2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Thread that triggered the sample.
    pub thread: ThreadId,
    /// Sampled data address.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// Access latency in cycles (IBS "data cache miss latency" / PEBS
    /// weight). For simulated runs this is the exact modelled latency.
    pub latency: Cycles,
    /// Global timestamp at which the access started.
    pub time: Cycles,
    /// Index of the fork-join phase the access occurred in.
    pub phase_index: u32,
    /// Whether the access occurred in a serial or parallel phase.
    pub phase_kind: PhaseKind,
}

impl Sample {
    /// Whether the sample was taken inside a parallel phase; Cheetah only
    /// records detailed sharing state for these (§2.4).
    pub fn in_parallel_phase(&self) -> bool {
        self.phase_kind == PhaseKind::Parallel
    }
}

impl fmt::Display for Sample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} latency {} @ {}",
            self.thread, self.kind, self.addr, self.latency, self.time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: PhaseKind) -> Sample {
        Sample {
            thread: ThreadId(3),
            addr: Addr(0x4000_0040),
            kind: AccessKind::Write,
            latency: 150,
            time: 12_345,
            phase_index: 1,
            phase_kind: kind,
        }
    }

    #[test]
    fn parallel_phase_flag() {
        assert!(sample(PhaseKind::Parallel).in_parallel_phase());
        assert!(!sample(PhaseKind::Serial).in_parallel_phase());
    }

    #[test]
    fn display_contains_fields() {
        let text = sample(PhaseKind::Parallel).to_string();
        assert!(text.contains("T3"));
        assert!(text.contains("write"));
        assert!(text.contains("latency 150"));
    }
}
