//! Sampler configuration and overhead model.

use cheetah_sim::Cycles;
use std::error::Error;
use std::fmt;

/// Errors from validating a [`SamplerConfig`].
///
/// Returned (rather than panicking) so that sweep harnesses iterating over
/// many sampling configurations can skip a bad cell gracefully instead of
/// aborting the whole experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The sampling period is zero — that would sample every instruction,
    /// which is instrumentation, not sampling.
    ZeroPeriod,
    /// A [`crate::FaultPlan`] per-mille rate exceeds 1000.
    FaultRateOutOfRange,
    /// A [`crate::FaultPlan`] enables corruption without any eligible
    /// field.
    CorruptionWithoutFields,
    /// A [`crate::FaultPlan`] burst is at least as long as its period, so
    /// every sample would be dropped.
    BurstSwallowsStream,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroPeriod => f.write_str("sampling period must be nonzero"),
            ConfigError::FaultRateOutOfRange => {
                f.write_str("fault rates are per-mille and must not exceed 1000")
            }
            ConfigError::CorruptionWithoutFields => {
                f.write_str("corruption enabled but no sample field is eligible")
            }
            ConfigError::BurstSwallowsStream => {
                f.write_str("drop burst at least as long as its period would drop every sample")
            }
        }
    }
}

impl Error for ConfigError {}

/// The paper's default sampling period: one sample per 64K instructions.
pub const DEFAULT_PERIOD: u64 = 64 * 1024;

/// Configuration of the (simulated) PMU sampler, including the costs it
/// charges back into simulated time so profiler overhead is measurable
/// (Fig. 4 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Instructions between samples. The paper evaluates with 64K.
    pub period: u64,
    /// Maximum random shortening of each sampling interval, expressed as a
    /// divisor of `period` (interval is uniform in
    /// `[period - period/jitter_div, period]`). IBS randomizes the interval
    /// to avoid lock-step aliasing with loop bodies; `0` disables jitter.
    pub jitter_div: u64,
    /// Draw each interval uniformly from `[period/2, period/2 + period)`
    /// instead of the narrow `jitter_div` window. The mean interval stays
    /// `≈ period` (the sampling rate is unchanged) but the span now covers
    /// a full period, so no loop body — whatever its length — can stay
    /// phase-locked with the sampler. `jitter_div` is ignored when set.
    /// Defaults to `false`, keeping every existing baseline bit-identical.
    pub full_jitter: bool,
    /// Cycles charged to a thread for each delivered sample: the signal
    /// delivery plus Cheetah's handler work.
    pub trap_cost: Cycles,
    /// Cycles charged at each thread start for programming the PMU — the
    /// "six pfmon APIs and six additional system calls" the paper blames
    /// for the kmeans/x264 overhead.
    pub setup_cost: Cycles,
}

impl SamplerConfig {
    /// The paper's deployment configuration: 64K period, modest trap and
    /// per-thread setup costs.
    pub fn paper_default() -> Self {
        SamplerConfig {
            period: DEFAULT_PERIOD,
            jitter_div: 8,
            full_jitter: false,
            trap_cost: 2_600,
            setup_cost: 150_000,
        }
    }

    /// A configuration with a custom period and default costs.
    pub fn with_period(period: u64) -> Self {
        SamplerConfig {
            period,
            ..SamplerConfig::paper_default()
        }
    }

    /// A configuration for scaled-down experiments: the period *and* the
    /// perturbation costs shrink by the same factor relative to the paper's
    /// deployment configuration.
    ///
    /// Rationale: the synthetic workloads are the paper's applications
    /// shrunk by some factor F in runtime. Sampling them with period
    /// `64K / F` restores the paper's samples-per-run; scaling the trap and
    /// setup costs by the same factor restores the paper's *overhead
    /// fraction*, so profiled runs stay faithful rather than being crushed
    /// by measurement perturbation.
    pub fn scaled_to_period(period: u64) -> Self {
        let paper = SamplerConfig::paper_default();
        let scale = |cost: u64| ((cost as u128 * period as u128) / paper.period as u128) as u64;
        SamplerConfig {
            period,
            jitter_div: paper.jitter_div,
            full_jitter: paper.full_jitter,
            trap_cost: scale(paper.trap_cost).max(1),
            setup_cost: scale(paper.setup_cost).max(1),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroPeriod`] if `period` is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.period == 0 {
            return Err(ConfigError::ZeroPeriod);
        }
        Ok(())
    }
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_uses_64k_period() {
        let config = SamplerConfig::paper_default();
        assert_eq!(config.period, 65_536);
        config.validate().unwrap();
    }

    #[test]
    fn with_period_overrides_period_only() {
        let config = SamplerConfig::with_period(4096);
        assert_eq!(config.period, 4096);
        assert_eq!(config.trap_cost, SamplerConfig::paper_default().trap_cost);
    }

    #[test]
    fn scaled_config_preserves_overhead_fraction() {
        let paper = SamplerConfig::paper_default();
        let scaled = SamplerConfig::scaled_to_period(paper.period / 32);
        // trap_cost / period ratio is invariant.
        let paper_ratio = paper.trap_cost as f64 / paper.period as f64;
        let scaled_ratio = scaled.trap_cost as f64 / scaled.period as f64;
        assert!((paper_ratio - scaled_ratio).abs() / paper_ratio < 0.05);
        assert!(scaled.setup_cost < paper.setup_cost);
        assert!(scaled.trap_cost >= 1);
    }

    #[test]
    fn full_jitter_defaults_off_and_survives_scaling() {
        // Off by default so every existing baseline stays bit-identical.
        assert!(!SamplerConfig::paper_default().full_jitter);
        assert!(!SamplerConfig::scaled_to_period(256).full_jitter);
        let mut paper = SamplerConfig::paper_default();
        paper.full_jitter = true;
        paper.validate().unwrap();
    }

    #[test]
    fn zero_period_rejected_gracefully() {
        let err = SamplerConfig::with_period(0).validate().unwrap_err();
        assert_eq!(err, ConfigError::ZeroPeriod);
        assert!(err.to_string().contains("nonzero"));
    }
}
