//! Deterministic sample-stream fault injection.
//!
//! Real profiling fleets lose samples: ring buffers overflow (uniform and
//! bursty drops), NMI skid and per-CPU buffers deliver out of order,
//! `perf` occasionally duplicates records at wakeup boundaries, bit flips
//! and version skew corrupt fields, and profiled processes die mid-stream.
//! [`FaultPlan`] models all of these as a *seeded, reproducible* transform
//! over any [`Sample`] stream — the simulated PMU and the `linux-pmu`
//! backend alike — so the detector's graceful-degradation guarantees can be
//! tested as executable properties rather than hoped for.
//!
//! Faults are injected by a [`FaultInjector`] sitting between the sample
//! source and its sink. Every decision is drawn from one xorshift stream
//! seeded by [`FaultPlan::seed`], so a faulted run is a pure function of
//! `(plan, input stream)`: run it twice and the delivered stream is
//! bit-identical. Injected faults are counted per kind ([`FaultCounts`])
//! and surfaced through `obs` counters (`pmu.faults_*`).

use crate::config::ConfigError;
use crate::sample::Sample;
use cheetah_obs::{Counter, ObsHandle};
use cheetah_sim::{Addr, ThreadId};

/// Counter name for the total faults injected (all kinds).
pub const OBS_FAULTS_INJECTED: &str = "pmu.faults_injected";
/// Counter name for samples dropped by the uniform drop rate.
pub const OBS_FAULTS_DROPPED: &str = "pmu.faults_dropped";
/// Counter name for samples dropped inside periodic bursts.
pub const OBS_FAULTS_BURST_DROPPED: &str = "pmu.faults_burst_dropped";
/// Counter name for samples delivered out of arrival order.
pub const OBS_FAULTS_REORDERED: &str = "pmu.faults_reordered";
/// Counter name for samples delivered twice.
pub const OBS_FAULTS_DUPLICATED: &str = "pmu.faults_duplicated";
/// Counter name for samples delivered with a corrupted field.
pub const OBS_FAULTS_CORRUPTED: &str = "pmu.faults_corrupted";
/// Counter name for samples discarded after stream truncation.
pub const OBS_FAULTS_TRUNCATED: &str = "pmu.faults_truncated";

/// Which [`Sample`] fields a corruption fault may clobber.
///
/// Corrupted values are chosen to be *plausibly hostile*: a wild address
/// outside every monitored segment, a thread id / phase index far above any
/// real one, a latency beyond physical possibility. The detector must
/// quarantine (or segment-filter) all of them without panicking or
/// misattributing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptFields {
    /// Clobber the sampled data address.
    pub addr: bool,
    /// Clobber the triggering thread id.
    pub thread: bool,
    /// Clobber the access latency.
    pub latency: bool,
    /// Clobber the phase index.
    pub phase: bool,
}

impl CorruptFields {
    /// Every field eligible for corruption.
    pub fn all() -> Self {
        CorruptFields {
            addr: true,
            thread: true,
            latency: true,
            phase: true,
        }
    }

    /// No field eligible (corruption disabled).
    pub fn none() -> Self {
        CorruptFields {
            addr: false,
            thread: false,
            latency: false,
            phase: false,
        }
    }

    fn count(&self) -> u32 {
        u32::from(self.addr)
            + u32::from(self.thread)
            + u32::from(self.latency)
            + u32::from(self.phase)
    }
}

impl Default for CorruptFields {
    fn default() -> Self {
        CorruptFields::none()
    }
}

/// A deterministic, seeded plan of sample-stream faults.
///
/// All rates are in per-mille (‰) of *surviving* samples at that stage;
/// stages apply in a fixed order per input sample: truncation → burst drop
/// → uniform drop → corruption → duplication → bounded reorder buffer.
/// [`FaultPlan::none`] is the identity transform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the injector's random stream; a faulted run is reproducible
    /// per `(plan, seed)`.
    pub seed: u64,
    /// Uniform drop rate in per-mille (0–1000).
    pub drop_per_mille: u32,
    /// Start a drop burst every this many input samples (`0` disables
    /// bursts). Models periodic ring-buffer overflow.
    pub burst_every: u64,
    /// Consecutive samples dropped at the start of each burst period.
    pub burst_len: u64,
    /// Size of the reorder buffer (`0` delivers in arrival order). Each
    /// sample is delayed by at most this many deliveries.
    pub reorder_window: usize,
    /// Duplication rate in per-mille (0–1000); a duplicated sample is
    /// delivered twice, back to back into the reorder stage.
    pub duplicate_per_mille: u32,
    /// Field-corruption rate in per-mille (0–1000).
    pub corrupt_per_mille: u32,
    /// Which fields corruption may clobber (one per corrupted sample).
    pub corrupt_fields: CorruptFields,
    /// Discard every input sample after this many have been seen (`None`
    /// leaves the stream whole). Models a profiled process dying mid-run.
    pub truncate_after: Option<u64>,
}

impl FaultPlan {
    /// The identity plan: no faults, any source passes through untouched.
    pub fn none() -> Self {
        FaultPlan {
            seed: 1,
            drop_per_mille: 0,
            burst_every: 0,
            burst_len: 0,
            reorder_window: 0,
            duplicate_per_mille: 0,
            corrupt_per_mille: 0,
            corrupt_fields: CorruptFields::none(),
            truncate_after: None,
        }
    }

    /// A plan that only drops samples uniformly at `per_mille` ‰.
    pub fn drops(per_mille: u32) -> Self {
        FaultPlan {
            drop_per_mille: per_mille,
            ..FaultPlan::none()
        }
    }

    /// Same plan with a different seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether this plan can ever alter the stream.
    pub fn is_none(&self) -> bool {
        self.drop_per_mille == 0
            && self.burst_every == 0
            && self.reorder_window == 0
            && self.duplicate_per_mille == 0
            && self.corrupt_per_mille == 0
            && self.truncate_after.is_none()
    }

    /// Validates the plan.
    ///
    /// # Errors
    ///
    /// [`ConfigError::FaultRateOutOfRange`] if any per-mille rate exceeds
    /// 1000; [`ConfigError::CorruptionWithoutFields`] if corruption is
    /// enabled with no eligible field; [`ConfigError::BurstSwallowsStream`]
    /// if a burst is as long as its period (every sample would be dropped).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.drop_per_mille > 1000
            || self.duplicate_per_mille > 1000
            || self.corrupt_per_mille > 1000
        {
            return Err(ConfigError::FaultRateOutOfRange);
        }
        if self.corrupt_per_mille > 0 && self.corrupt_fields.count() == 0 {
            return Err(ConfigError::CorruptionWithoutFields);
        }
        if self.burst_every > 0 && self.burst_len >= self.burst_every {
            return Err(ConfigError::BurstSwallowsStream);
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Per-kind tallies of the faults an injector has applied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Samples removed by the uniform drop rate.
    pub dropped: u64,
    /// Samples removed inside drop bursts.
    pub burst_dropped: u64,
    /// Samples delivered out of arrival order.
    pub reordered: u64,
    /// Extra copies delivered by duplication.
    pub duplicated: u64,
    /// Samples discarded after truncation.
    pub truncated: u64,
    /// Samples delivered with a clobbered address.
    pub corrupted_addr: u64,
    /// Samples delivered with a clobbered thread id.
    pub corrupted_thread: u64,
    /// Samples delivered with a clobbered latency.
    pub corrupted_latency: u64,
    /// Samples delivered with a clobbered phase index.
    pub corrupted_phase: u64,
}

impl FaultCounts {
    /// Samples delivered with any corrupted field.
    pub fn corrupted(&self) -> u64 {
        self.corrupted_addr + self.corrupted_thread + self.corrupted_latency + self.corrupted_phase
    }

    /// Total faults of every kind.
    pub fn injected(&self) -> u64 {
        self.dropped
            + self.burst_dropped
            + self.reordered
            + self.duplicated
            + self.truncated
            + self.corrupted()
    }
}

/// Applies a [`FaultPlan`] to a sample stream, deterministically.
///
/// Sits between any sample source and its sink: feed arrivals through
/// [`FaultInjector::push`] and drain the reorder buffer with
/// [`FaultInjector::flush`] when the source ends. With
/// [`FaultPlan::none`] the injector is the identity (and allocates no
/// buffer).
///
/// ```
/// use cheetah_pmu::{FaultInjector, FaultPlan, Sample};
/// use cheetah_sim::{AccessKind, Addr, PhaseKind, ThreadId};
///
/// let mut injector = FaultInjector::new(FaultPlan::drops(500).with_seed(7)).unwrap();
/// let mut delivered = 0u64;
/// for i in 0..1000u64 {
///     let sample = Sample {
///         thread: ThreadId(1), addr: Addr(0x4000_0000 + i * 8),
///         kind: AccessKind::Write, latency: 150, time: i,
///         phase_index: 1, phase_kind: PhaseKind::Parallel,
///     };
///     injector.push(sample, &mut |_| delivered += 1);
/// }
/// injector.flush(&mut |_| delivered += 1);
/// // Roughly half survive; the exact count is a pure function of the seed.
/// assert!((400..600).contains(&delivered));
/// assert_eq!(injector.counts().dropped, 1000 - delivered);
/// ```
pub struct FaultInjector {
    plan: FaultPlan,
    rng: u64,
    seen: u64,
    /// Buffered samples with the number of younger samples delivered past
    /// each (the lateness bound's bookkeeping).
    window: Vec<(Sample, usize)>,
    counts: FaultCounts,
    obs_injected: Counter,
    obs_dropped: Counter,
    obs_burst_dropped: Counter,
    obs_reordered: Counter,
    obs_duplicated: Counter,
    obs_corrupted: Counter,
    obs_truncated: Counter,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("seen", &self.seen)
            .field("buffered", &self.window.len())
            .field("counts", &self.counts)
            .finish_non_exhaustive()
    }
}

impl FaultInjector {
    /// Creates an injector for `plan`, reporting into the global `obs`
    /// registry.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the plan is invalid (see [`FaultPlan::validate`]).
    pub fn new(plan: FaultPlan) -> Result<Self, ConfigError> {
        FaultInjector::with_obs(plan, &ObsHandle::global())
    }

    /// Creates an injector reporting per-kind fault counters into `obs`.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the plan is invalid (see [`FaultPlan::validate`]).
    pub fn with_obs(plan: FaultPlan, obs: &ObsHandle) -> Result<Self, ConfigError> {
        plan.validate()?;
        Ok(FaultInjector {
            rng: Self::scramble(plan.seed),
            seen: 0,
            window: Vec::with_capacity(plan.reorder_window.saturating_add(1)),
            counts: FaultCounts::default(),
            obs_injected: obs.counter(OBS_FAULTS_INJECTED),
            obs_dropped: obs.counter(OBS_FAULTS_DROPPED),
            obs_burst_dropped: obs.counter(OBS_FAULTS_BURST_DROPPED),
            obs_reordered: obs.counter(OBS_FAULTS_REORDERED),
            obs_duplicated: obs.counter(OBS_FAULTS_DUPLICATED),
            obs_corrupted: obs.counter(OBS_FAULTS_CORRUPTED),
            obs_truncated: obs.counter(OBS_FAULTS_TRUNCATED),
            plan,
        })
    }

    /// The splitmix-style seed scramble shared with
    /// [`crate::SamplingEngine`]'s per-thread seeding, so nearby plan seeds
    /// still produce uncorrelated fault streams.
    fn scramble(seed: u64) -> u64 {
        let mut x = seed.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x | 1
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// One per-mille draw in `0..1000`.
    fn draw_per_mille(&mut self) -> u32 {
        (self.next_u64() % 1000) as u32
    }

    /// The plan this injector applies.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Per-kind fault tallies so far.
    pub fn counts(&self) -> &FaultCounts {
        &self.counts
    }

    /// Input samples seen so far (pre-fault).
    pub fn samples_seen(&self) -> u64 {
        self.seen
    }

    /// Feeds one arriving sample through the plan, delivering zero or more
    /// samples to `deliver` (zero when dropped or parked in the reorder
    /// buffer, two when duplicated).
    pub fn push(&mut self, sample: Sample, deliver: &mut impl FnMut(Sample)) {
        self.seen += 1;
        if let Some(limit) = self.plan.truncate_after {
            if self.seen > limit {
                self.counts.truncated += 1;
                self.obs_truncated.add(1);
                self.obs_injected.add(1);
                return;
            }
        }
        if self.plan.burst_every > 0
            && (self.seen - 1) % self.plan.burst_every < self.plan.burst_len
        {
            self.counts.burst_dropped += 1;
            self.obs_burst_dropped.add(1);
            self.obs_injected.add(1);
            return;
        }
        if self.plan.drop_per_mille > 0 && self.draw_per_mille() < self.plan.drop_per_mille {
            self.counts.dropped += 1;
            self.obs_dropped.add(1);
            self.obs_injected.add(1);
            return;
        }
        let mut sample = sample;
        let corrupted =
            self.plan.corrupt_per_mille > 0 && self.draw_per_mille() < self.plan.corrupt_per_mille;
        if corrupted {
            self.corrupt(&mut sample);
        }
        // Corruption and duplication are mutually exclusive per sample so
        // the per-kind tallies stay exact (a duplicated corrupt sample
        // would be quarantined twice but counted once).
        let duplicated = !corrupted
            && self.plan.duplicate_per_mille > 0
            && self.draw_per_mille() < self.plan.duplicate_per_mille;
        self.emit(sample, deliver);
        if duplicated {
            self.counts.duplicated += 1;
            self.obs_duplicated.add(1);
            self.obs_injected.add(1);
            self.emit(sample, deliver);
        }
    }

    /// Drains the reorder buffer (in plan-seeded random order). Call when
    /// the source ends; a truncated or reorder-free run may have nothing to
    /// drain.
    pub fn flush(&mut self, deliver: &mut impl FnMut(Sample)) {
        while !self.window.is_empty() {
            let sample = self.release();
            deliver(sample);
        }
    }

    /// Clobbers one eligible field of `sample`, chosen by the seeded
    /// stream. Values are extreme on purpose — far outside any real
    /// segment, thread count, latency or phase count — so downstream
    /// validation is exercised rather than silently absorbed.
    fn corrupt(&mut self, sample: &mut Sample) {
        let eligible = self.plan.corrupt_fields;
        let mut pick = self.next_u64() % u64::from(eligible.count());
        self.obs_corrupted.add(1);
        self.obs_injected.add(1);
        if eligible.addr {
            if pick == 0 {
                sample.addr = Addr((1 << 63) | (self.next_u64() & 0xFFFF_FFFF_F000));
                self.counts.corrupted_addr += 1;
                return;
            }
            pick -= 1;
        }
        if eligible.thread {
            if pick == 0 {
                sample.thread = ThreadId(0x4000_0000 | (self.next_u64() as u32 & 0xFFFF));
                self.counts.corrupted_thread += 1;
                return;
            }
            pick -= 1;
        }
        if eligible.latency {
            if pick == 0 {
                sample.latency = (1 << 50) | (self.next_u64() & 0xFFFF);
                self.counts.corrupted_latency += 1;
                return;
            }
            pick -= 1;
        }
        debug_assert!(eligible.phase && pick == 0);
        sample.phase_index = 0x4000_0000 | (self.next_u64() as u32 & 0xFFFF);
        self.counts.corrupted_phase += 1;
    }

    /// Routes one surviving sample through the bounded reorder buffer.
    fn emit(&mut self, sample: Sample, deliver: &mut impl FnMut(Sample)) {
        if self.plan.reorder_window == 0 {
            deliver(sample);
            return;
        }
        self.window.push((sample, 0));
        if self.window.len() > self.plan.reorder_window {
            let sample = self.release();
            deliver(sample);
        }
    }

    /// Removes one buffered sample, chosen by the seeded stream, except
    /// that a sample already passed by `reorder_window` younger ones is
    /// released first. Remaining samples keep their relative arrival
    /// order, so with that forcing rule every sample's displacement —
    /// early *or* late — is hard-bounded by the window size.
    fn release(&mut self) -> Sample {
        let index = match self
            .window
            .iter()
            .position(|(_, passed)| *passed >= self.plan.reorder_window)
        {
            Some(overdue) => overdue,
            None => (self.next_u64() as usize) % self.window.len(),
        };
        if index != 0 {
            self.counts.reordered += 1;
            self.obs_reordered.add(1);
            self.obs_injected.add(1);
            for (_, passed) in &mut self.window[..index] {
                *passed += 1;
            }
        }
        self.window.remove(index).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_sim::{AccessKind, PhaseKind};

    fn sample(i: u64) -> Sample {
        Sample {
            thread: ThreadId(1 + (i % 4) as u32),
            addr: Addr(0x4000_0000 + (i % 64) * 8),
            kind: if i.is_multiple_of(3) {
                AccessKind::Read
            } else {
                AccessKind::Write
            },
            latency: 150,
            time: i * 100,
            phase_index: 1,
            phase_kind: PhaseKind::Parallel,
        }
    }

    fn run(plan: FaultPlan, n: u64) -> (Vec<Sample>, FaultCounts) {
        let mut injector = FaultInjector::new(plan).unwrap();
        let mut out = Vec::new();
        for i in 0..n {
            injector.push(sample(i), &mut |s| out.push(s));
        }
        injector.flush(&mut |s| out.push(s));
        (out, *injector.counts())
    }

    #[test]
    fn identity_plan_passes_everything_through() {
        let (out, counts) = run(FaultPlan::none(), 500);
        assert_eq!(out.len(), 500);
        assert_eq!(counts.injected(), 0);
        for (i, s) in out.iter().enumerate() {
            assert_eq!(*s, sample(i as u64));
        }
    }

    #[test]
    fn faulted_stream_is_reproducible_per_seed() {
        let plan = FaultPlan {
            drop_per_mille: 100,
            burst_every: 97,
            burst_len: 5,
            reorder_window: 8,
            duplicate_per_mille: 50,
            corrupt_per_mille: 50,
            corrupt_fields: CorruptFields::all(),
            truncate_after: None,
            seed: 42,
        };
        let (a, counts_a) = run(plan.clone(), 5_000);
        let (b, counts_b) = run(plan.clone(), 5_000);
        assert_eq!(a, b, "same (plan, seed) must fault identically");
        assert_eq!(counts_a, counts_b);
        assert!(counts_a.injected() > 0);
        let (c, _) = run(plan.with_seed(43), 5_000);
        assert_ne!(a, c, "a different seed must fault differently");
    }

    #[test]
    fn drop_rate_is_approximately_honored() {
        let (out, counts) = run(FaultPlan::drops(200).with_seed(9), 10_000);
        assert_eq!(out.len() as u64 + counts.dropped, 10_000);
        let rate = counts.dropped as f64 / 10_000.0;
        assert!((0.17..0.23).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn bursts_drop_exact_runs() {
        let plan = FaultPlan {
            burst_every: 100,
            burst_len: 10,
            ..FaultPlan::none()
        };
        let (out, counts) = run(plan, 1_000);
        assert_eq!(counts.burst_dropped, 100);
        assert_eq!(out.len(), 900);
    }

    #[test]
    fn truncation_is_exact() {
        let plan = FaultPlan {
            truncate_after: Some(300),
            ..FaultPlan::none()
        };
        let (out, counts) = run(plan, 1_000);
        assert_eq!(out.len(), 300);
        assert_eq!(counts.truncated, 700);
    }

    #[test]
    fn duplicates_are_counted_and_delivered_back_to_back() {
        let plan = FaultPlan {
            duplicate_per_mille: 100,
            seed: 5,
            ..FaultPlan::none()
        };
        let (out, counts) = run(plan, 5_000);
        assert_eq!(out.len() as u64, 5_000 + counts.duplicated);
        assert!(counts.duplicated > 300, "got {}", counts.duplicated);
        let mut seen_adjacent = 0u64;
        for pair in out.windows(2) {
            if pair[0] == pair[1] {
                seen_adjacent += 1;
            }
        }
        assert_eq!(seen_adjacent, counts.duplicated);
    }

    #[test]
    fn reorder_displacement_is_bounded_by_window() {
        let window = 6usize;
        let plan = FaultPlan {
            reorder_window: window,
            seed: 3,
            ..FaultPlan::none()
        };
        let (out, counts) = run(plan, 2_000);
        assert_eq!(out.len(), 2_000, "reordering must not lose samples");
        assert!(counts.reordered > 0);
        // Samples carry strictly increasing times; a sample may be passed
        // by at most `window` later arrivals.
        for (position, s) in out.iter().enumerate() {
            let arrival = (s.time / 100) as usize;
            assert!(
                position.abs_diff(arrival) <= window,
                "sample {arrival} delivered at {position}"
            );
        }
    }

    #[test]
    fn corruption_targets_enabled_fields_with_hostile_values() {
        let plan = FaultPlan {
            corrupt_per_mille: 1000,
            corrupt_fields: CorruptFields::all(),
            seed: 11,
            ..FaultPlan::none()
        };
        let (out, counts) = run(plan, 2_000);
        assert_eq!(out.len(), 2_000);
        assert_eq!(counts.corrupted(), 2_000);
        assert!(counts.corrupted_addr > 0);
        assert!(counts.corrupted_thread > 0);
        assert!(counts.corrupted_latency > 0);
        assert!(counts.corrupted_phase > 0);
        for s in &out {
            let hostile = s.addr.0 >= (1 << 63)
                || s.thread.0 >= 0x4000_0000
                || s.latency >= (1 << 50)
                || s.phase_index >= 0x4000_0000;
            assert!(hostile, "corrupted sample looks clean: {s:?}");
        }
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert_eq!(
            FaultPlan::drops(1001).validate().unwrap_err(),
            ConfigError::FaultRateOutOfRange
        );
        let no_fields = FaultPlan {
            corrupt_per_mille: 10,
            corrupt_fields: CorruptFields::none(),
            ..FaultPlan::none()
        };
        assert_eq!(
            no_fields.validate().unwrap_err(),
            ConfigError::CorruptionWithoutFields
        );
        let swallowed = FaultPlan {
            burst_every: 10,
            burst_len: 10,
            ..FaultPlan::none()
        };
        assert_eq!(
            swallowed.validate().unwrap_err(),
            ConfigError::BurstSwallowsStream
        );
        assert!(FaultInjector::new(FaultPlan::drops(1001)).is_err());
    }

    #[test]
    fn obs_counters_mirror_the_tallies() {
        let obs = ObsHandle::fresh();
        let plan = FaultPlan {
            drop_per_mille: 300,
            duplicate_per_mille: 100,
            seed: 17,
            ..FaultPlan::none()
        };
        let mut injector = FaultInjector::with_obs(plan, &obs).unwrap();
        for i in 0..3_000 {
            injector.push(sample(i), &mut |_| {});
        }
        let counts = *injector.counts();
        assert_eq!(obs.counter(OBS_FAULTS_DROPPED).get(), counts.dropped);
        assert_eq!(obs.counter(OBS_FAULTS_DUPLICATED).get(), counts.duplicated);
        assert_eq!(obs.counter(OBS_FAULTS_INJECTED).get(), counts.injected());
    }
}
