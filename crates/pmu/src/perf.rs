//! Native Linux `perf_event_open` address sampling (feature `linux-pmu`).
//!
//! This module is the "real hardware" counterpart of [`crate::SimPmu`]: it
//! programs a per-thread PEBS/IBS-style sampling event whose records carry
//! the sampled data address, access latency (weight) and timestamp — the
//! same [`Sample`] tuple the simulated PMU produces, so the detector runs
//! unchanged on either source.
//!
//! The glue is intentionally minimal and self-contained: one syscall
//! wrapper, one `repr(C)` attribute struct (ABI version 5, supported since
//! Linux 4.1) and a lock-free ring-buffer reader. Sampling memory accesses
//! requires hardware and kernel support (`perf_event_paranoid` permitting);
//! [`PerfSampler::open`] reports a descriptive error when unavailable, and
//! callers are expected to fall back to the simulator.

#![allow(unsafe_code)]

use crate::sample::Sample;
use cheetah_sim::{AccessKind, Addr, PhaseKind, ThreadId};
use std::io;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Sampling flavour to program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfEventKind {
    /// Intel PEBS load-latency (`MEM_TRANS_RETIRED.LOAD_LATENCY`, raw event
    /// `0x1cd`) with the given minimum latency threshold.
    IntelLoadLatency {
        /// Minimum latency (cycles) for a load to be recorded.
        ldlat: u64,
    },
    /// A raw event code supplied by the caller (e.g. an AMD IBS op event).
    Raw {
        /// The raw `perf_event_attr.config` value.
        config: u64,
        /// The raw `perf_event_attr.config1` value.
        config1: u64,
    },
}

/// Configuration for [`PerfSampler::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfConfig {
    /// Which hardware event to sample.
    pub event: PerfEventKind,
    /// Sampling period in event occurrences.
    pub period: u64,
    /// Ring buffer size in pages (power of two).
    pub ring_pages: usize,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            event: PerfEventKind::IntelLoadLatency { ldlat: 3 },
            period: 4_000,
            ring_pages: 64,
        }
    }
}

// ---- perf ABI ----------------------------------------------------------

const PERF_TYPE_RAW: u32 = 4;
const PERF_ATTR_SIZE_VER5: u32 = 112;

const PERF_SAMPLE_IP: u64 = 1 << 0;
const PERF_SAMPLE_TID: u64 = 1 << 1;
const PERF_SAMPLE_TIME: u64 = 1 << 2;
const PERF_SAMPLE_ADDR: u64 = 1 << 3;
const PERF_SAMPLE_WEIGHT: u64 = 1 << 14;
const PERF_SAMPLE_DATA_SRC: u64 = 1 << 15;

const PERF_RECORD_SAMPLE: u32 = 9;

const PERF_MEM_OP_STORE_SHIFTED: u64 = 0x4;

#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
struct PerfEventAttr {
    type_: u32,
    size: u32,
    config: u64,
    sample_period: u64,
    sample_type: u64,
    read_format: u64,
    flags: u64,
    wakeup_events: u32,
    bp_type: u32,
    config1: u64,
    config2: u64,
    branch_sample_type: u64,
    sample_regs_user: u64,
    sample_stack_user: u32,
    clockid: i32,
    sample_regs_intr: u64,
    aux_watermark: u32,
    sample_max_stack: u16,
    reserved_2: u16,
}

// Flag bit positions within `flags` (see linux/perf_event.h bitfield).
const FLAG_DISABLED: u64 = 1 << 0;
const FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
const FLAG_EXCLUDE_HV: u64 = 1 << 6;
const FLAG_PRECISE_IP_SHIFT: u32 = 15; // two-bit field

#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct PerfEventHeader {
    type_: u32,
    misc: u16,
    size: u16,
}

/// A native per-thread address sampler.
///
/// Not `Send`: each thread opens its own sampler, exactly as Cheetah binds
/// sample delivery to the triggering thread with `F_SETOWN_EX`.
#[derive(Debug)]
pub struct PerfSampler {
    fd: i32,
    ring: *mut u8,
    ring_bytes: usize,
    data_offset: usize,
    data_size: usize,
    tail: u64,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl PerfSampler {
    /// Opens a sampling event for the calling thread.
    ///
    /// # Errors
    ///
    /// Returns the kernel error (commonly `EACCES` under restrictive
    /// `perf_event_paranoid`, or `ENOENT`/`EOPNOTSUPP` when the hardware
    /// event is unavailable, e.g. in VMs and containers).
    pub fn open(config: &PerfConfig) -> io::Result<PerfSampler> {
        assert!(
            config.ring_pages.is_power_of_two(),
            "ring_pages must be a power of two"
        );
        let (raw_config, config1, precise) = match config.event {
            PerfEventKind::IntelLoadLatency { ldlat } => (0x1cd, ldlat, 2u64),
            PerfEventKind::Raw { config, config1 } => (config, config1, 0u64),
        };
        let attr = PerfEventAttr {
            type_: PERF_TYPE_RAW,
            size: PERF_ATTR_SIZE_VER5,
            config: raw_config,
            sample_period: config.period,
            sample_type: PERF_SAMPLE_IP
                | PERF_SAMPLE_TID
                | PERF_SAMPLE_TIME
                | PERF_SAMPLE_ADDR
                | PERF_SAMPLE_WEIGHT
                | PERF_SAMPLE_DATA_SRC,
            flags: FLAG_DISABLED
                | FLAG_EXCLUDE_KERNEL
                | FLAG_EXCLUDE_HV
                | (precise << FLAG_PRECISE_IP_SHIFT),
            config1,
            ..PerfEventAttr::default()
        };
        // SAFETY: perf_event_open takes a pointer to a properly sized
        // attribute struct; `attr` is a live repr(C) value with its `size`
        // field set to the ABI version we lay out.
        let fd = unsafe {
            libc::syscall(
                libc::SYS_perf_event_open,
                &attr as *const PerfEventAttr,
                0,    // this thread
                -1,   // any cpu
                -1,   // no group
                0u64, // no flags
            )
        } as i32;
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let page = page_size();
        let ring_bytes = (config.ring_pages + 1) * page;
        // SAFETY: mapping a perf fd with PROT_READ|PROT_WRITE and a
        // (1 + 2^n)-page length is the documented ring-buffer protocol.
        let ring = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                ring_bytes,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED,
                fd,
                0,
            )
        };
        if ring == libc::MAP_FAILED {
            let err = io::Error::last_os_error();
            // SAFETY: fd was returned by perf_event_open above.
            unsafe { libc::close(fd) };
            return Err(err);
        }
        Ok(PerfSampler {
            fd,
            ring: ring as *mut u8,
            ring_bytes,
            data_offset: page,
            data_size: config.ring_pages * page,
            tail: 0,
            _not_send: std::marker::PhantomData,
        })
    }

    /// Starts counting.
    pub fn enable(&self) -> io::Result<()> {
        // SAFETY: PERF_EVENT_IOC_ENABLE on an owned perf fd.
        let rc = unsafe { libc::ioctl(self.fd, perf_ioc_enable(), 0) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Stops counting.
    pub fn disable(&self) -> io::Result<()> {
        // SAFETY: PERF_EVENT_IOC_DISABLE on an owned perf fd.
        let rc = unsafe { libc::ioctl(self.fd, perf_ioc_disable(), 0) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Drains all complete records currently in the ring buffer into
    /// `sink`. Non-blocking; returns the number of samples delivered.
    pub fn drain(&mut self, mut sink: impl FnMut(Sample)) -> usize {
        // SAFETY: the first page of the mapping is the metadata page whose
        // data_head field is written by the kernel.
        let head = unsafe {
            let meta = self.ring as *const u8;
            // data_head lives at offset 1024 in perf_event_mmap_page on all
            // supported ABIs; read it atomically.
            let head_ptr = meta.add(1024) as *const AtomicU64;
            (*head_ptr).load(Ordering::Acquire)
        };
        fence(Ordering::Acquire);
        let mut delivered = 0;
        while self.tail < head {
            let offset = (self.tail % self.data_size as u64) as usize;
            let header: PerfEventHeader =
                // SAFETY: offset stays inside the data area; records never
                // straddle the boundary for header reads because we copy
                // byte-wise through read_bytes.
                unsafe { std::ptr::read_unaligned(self.record_ptr(offset) as *const _) };
            if header.size == 0 {
                break;
            }
            if header.type_ == PERF_RECORD_SAMPLE {
                let body = self.read_bytes(offset + 8, header.size as usize - 8);
                if let Some(sample) = parse_sample(&body) {
                    sink(sample);
                    delivered += 1;
                }
            }
            self.tail += u64::from(header.size);
        }
        // SAFETY: writing data_tail back (offset 1032) tells the kernel the
        // space can be reused.
        unsafe {
            let meta = self.ring as *const u8;
            let tail_ptr = meta.add(1032) as *const AtomicU64;
            (*tail_ptr).store(self.tail, Ordering::Release);
        }
        delivered
    }

    /// Drains pending records through a [`crate::FaultInjector`] before
    /// they reach `sink` — the native half of the robustness harness, so
    /// the `linux-pmu` path exercises exactly the fault plans the simulated
    /// PMU does. Returns the count of records parsed from the ring (the
    /// injector's own counters say how many survived). Call
    /// [`crate::FaultInjector::flush`] once sampling is disabled to drain
    /// any reorder buffer.
    pub fn drain_faulted(
        &mut self,
        faults: &mut crate::FaultInjector,
        mut sink: impl FnMut(Sample),
    ) -> usize {
        self.drain(|sample| faults.push(sample, &mut sink))
    }

    fn record_ptr(&self, offset: usize) -> *const u8 {
        // SAFETY: callers pass offsets within the data area.
        unsafe { self.ring.add(self.data_offset + (offset % self.data_size)) }
    }

    /// Copies `len` bytes starting at ring offset `offset`, handling
    /// wrap-around.
    fn read_bytes(&self, offset: usize, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let pos = (offset + i) % self.data_size;
            // SAFETY: pos < data_size, so the pointer stays in the mapping.
            out.push(unsafe { *self.ring.add(self.data_offset + pos) });
        }
        out
    }
}

impl Drop for PerfSampler {
    fn drop(&mut self) {
        // SAFETY: unmapping our own mapping and closing our own fd.
        unsafe {
            libc::munmap(self.ring as *mut libc::c_void, self.ring_bytes);
            libc::close(self.fd);
        }
    }
}

/// Parses a PERF_RECORD_SAMPLE body laid out for our sample_type mask:
/// IP(8) TID(4+4) TIME(8) ADDR(8) WEIGHT(8) DATA_SRC(8).
fn parse_sample(body: &[u8]) -> Option<Sample> {
    if body.len() < 48 {
        return None;
    }
    let u64_at = |i: usize| u64::from_le_bytes(body[i..i + 8].try_into().ok()?).into();
    let _ip: Option<u64> = u64_at(0);
    let tid = u32::from_le_bytes(body[12..16].try_into().ok()?);
    let time: u64 = u64::from_le_bytes(body[16..24].try_into().ok()?);
    let addr: u64 = u64::from_le_bytes(body[24..32].try_into().ok()?);
    let weight: u64 = u64::from_le_bytes(body[32..40].try_into().ok()?);
    let data_src: u64 = u64::from_le_bytes(body[40..48].try_into().ok()?);
    let kind = if data_src & PERF_MEM_OP_STORE_SHIFTED != 0 {
        AccessKind::Write
    } else {
        AccessKind::Read
    };
    Some(Sample {
        thread: ThreadId(tid),
        addr: Addr(addr),
        kind,
        latency: weight,
        time,
        phase_index: 0,
        phase_kind: PhaseKind::Parallel,
    })
}

fn page_size() -> usize {
    // SAFETY: sysconf(_SC_PAGESIZE) is always safe.
    unsafe { libc::sysconf(libc::_SC_PAGESIZE) as usize }
}

fn perf_ioc_enable() -> libc::c_ulong {
    0x2400
}

fn perf_ioc_disable() -> libc::c_ulong {
    0x2401
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_layout_is_ver5() {
        assert_eq!(std::mem::size_of::<PerfEventAttr>(), 112);
    }

    #[test]
    fn parse_sample_decodes_fields() {
        let mut body = vec![0u8; 48];
        body[0..8].copy_from_slice(&0xdead_beefu64.to_le_bytes()); // ip
        body[8..12].copy_from_slice(&100u32.to_le_bytes()); // pid
        body[12..16].copy_from_slice(&101u32.to_le_bytes()); // tid
        body[16..24].copy_from_slice(&5_000u64.to_le_bytes()); // time
        body[24..32].copy_from_slice(&0x7000_0000u64.to_le_bytes()); // addr
        body[32..40].copy_from_slice(&300u64.to_le_bytes()); // weight
        body[40..48].copy_from_slice(&PERF_MEM_OP_STORE_SHIFTED.to_le_bytes());
        let sample = parse_sample(&body).unwrap();
        assert_eq!(sample.thread, ThreadId(101));
        assert_eq!(sample.addr, Addr(0x7000_0000));
        assert_eq!(sample.latency, 300);
        assert_eq!(sample.time, 5_000);
        assert_eq!(sample.kind, AccessKind::Write);
    }

    #[test]
    fn parse_sample_rejects_short_bodies() {
        assert!(parse_sample(&[0u8; 40]).is_none());
    }

    #[test]
    fn open_reports_clean_error_or_succeeds() {
        // In most CI containers perf is unavailable; either outcome is
        // acceptable, but a failure must be a proper io::Error.
        match PerfSampler::open(&PerfConfig::default()) {
            Ok(sampler) => {
                sampler.enable().ok();
                sampler.disable().ok();
            }
            Err(err) => {
                assert!(err.raw_os_error().is_some(), "unexpected error: {err}");
            }
        }
    }
}
