//! The sampling decision engine.
//!
//! [`SamplingEngine`] is the reusable core of the simulated PMU: it keeps a
//! per-thread retired-instruction countdown, decides which accesses become
//! [`Sample`]s, applies IBS-style interval randomization, and reports the
//! perturbation cycles (trap / setup costs) the execution engine must charge
//! back to the profiled thread. Composite observers (Cheetah's profiler, the
//! standalone [`crate::SimPmu`]) embed it and forward their callbacks.

use crate::config::{ConfigError, SamplerConfig};
use crate::sample::Sample;
use cheetah_obs::{Counter, Histogram, ObsHandle};
use cheetah_sim::util::FastMap;
use cheetah_sim::{AccessRecord, Cycles, SampleJudgement, ThreadId, ThreadSampler};

/// Counter name for samples the engine delivered with an address.
pub const OBS_SAMPLES_DELIVERED: &str = "pmu.samples_delivered";
/// Counter name for tags that landed on non-memory instructions and were
/// dropped by the handler.
pub const OBS_SAMPLES_DROPPED: &str = "pmu.samples_dropped";
/// Histogram name for delivered samples' access latencies (cycles).
pub const OBS_SAMPLE_LATENCY: &str = "pmu.sample_latency";

#[derive(Debug)]
struct ThreadSampling {
    /// Fires when the retired-instruction count reaches this value.
    next_at: u64,
    /// xorshift state for interval jitter.
    rng: u64,
    samples: u64,
}

/// Decides which accesses are sampled and what they cost.
///
/// ```
/// use cheetah_pmu::{SamplerConfig, SamplingEngine};
/// use cheetah_sim::ThreadId;
/// let mut engine = SamplingEngine::new(SamplerConfig::with_period(1000));
/// let setup = engine.begin_thread(ThreadId(1));
/// assert!(setup > 0); // PMU register programming cost
/// ```
#[derive(Debug)]
pub struct SamplingEngine {
    config: SamplerConfig,
    threads: FastMap<ThreadId, ThreadSampling>,
    total_samples: u64,
    total_dropped: u64,
    total_trap_cycles: Cycles,
    total_setup_cycles: Cycles,
    obs_delivered: Counter,
    obs_dropped: Counter,
    obs_latency: Histogram,
}

impl SamplingEngine {
    /// Creates an engine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero period); use
    /// [`SamplingEngine::try_new`] to handle that gracefully.
    pub fn new(config: SamplerConfig) -> Self {
        SamplingEngine::try_new(config).expect("invalid sampler config")
    }

    /// Creates an engine, rejecting invalid configurations.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the configuration is invalid (zero period).
    pub fn try_new(config: SamplerConfig) -> Result<Self, ConfigError> {
        SamplingEngine::try_new_with_obs(config, &ObsHandle::global())
    }

    /// Creates an engine reporting delivery counts and sample-latency
    /// summaries into `obs` instead of the global registry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero period).
    pub fn with_obs(config: SamplerConfig, obs: &ObsHandle) -> Self {
        SamplingEngine::try_new_with_obs(config, obs).expect("invalid sampler config")
    }

    /// Fallible variant of [`SamplingEngine::with_obs`].
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the configuration is invalid (zero period).
    pub fn try_new_with_obs(config: SamplerConfig, obs: &ObsHandle) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(SamplingEngine {
            config,
            threads: FastMap::default(),
            total_samples: 0,
            total_dropped: 0,
            total_trap_cycles: 0,
            total_setup_cycles: 0,
            obs_delivered: obs.counter(OBS_SAMPLES_DELIVERED),
            obs_dropped: obs.counter(OBS_SAMPLES_DROPPED),
            obs_latency: obs.histogram(OBS_SAMPLE_LATENCY),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// Registers a thread and returns the PMU setup cost to charge to it.
    pub fn begin_thread(&mut self, thread: ThreadId) -> Cycles {
        let mut state = ThreadSampling {
            next_at: 0,
            rng: Self::thread_seed(thread),
            samples: 0,
        };
        state.next_at = Self::interval(&self.config, &mut state.rng);
        self.threads.insert(thread, state);
        self.total_setup_cycles += self.config.setup_cost;
        self.config.setup_cost
    }

    /// The deterministic per-thread jitter seed (splitmix-style scramble),
    /// shared by [`SamplingEngine::begin_thread`] and
    /// [`SamplingEngine::fork_thread`] so a replica reproduces the engine's
    /// tag sequence exactly.
    fn thread_seed(thread: ThreadId) -> u64 {
        let mut seed = (u64::from(thread.0) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        seed ^= seed >> 30;
        seed = seed.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        seed | 1
    }

    /// Forks a deterministic per-thread replica of this engine's sampling
    /// decision, for [`cheetah_sim::ExecObserver::fork_sampler`].
    ///
    /// The replica continues from the thread's *current* sampling state —
    /// fresh for a thread forked right after [`begin_thread`], mid-stream
    /// for the main thread re-forked at a later phase — and then
    /// reproduces, access by access, exactly the tags, samples and
    /// perturbation the engine computes: the contract sharded execution
    /// relies on. A thread never registered is replicated as never
    /// sampled, mirroring [`SamplingEngine::observe`].
    ///
    /// [`begin_thread`]: SamplingEngine::begin_thread
    pub fn fork_thread(&self, thread: ThreadId) -> SamplerReplica {
        match self.threads.get(&thread) {
            Some(state) => SamplerReplica {
                config: self.config.clone(),
                next_at: state.next_at,
                rng: state.rng,
            },
            None => SamplerReplica {
                config: self.config.clone(),
                next_at: u64::MAX,
                rng: 0,
            },
        }
    }

    fn interval(config: &SamplerConfig, rng: &mut u64) -> u64 {
        let mut x = *rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *rng = x;
        if config.full_jitter {
            // Uniform over a full period, centred on it: mean ≈ period, but
            // no loop body of any length can phase-lock with the sampler.
            return (config.period / 2 + (x % config.period)).max(1);
        }
        match config.period.checked_div(config.jitter_div) {
            None => config.period,
            Some(raw_span) => {
                let span = raw_span.max(1);
                config.period - (x % span)
            }
        }
    }

    /// Inspects one executed access; returns the sample (if this access
    /// was tagged) and the perturbation cycles to charge.
    ///
    /// IBS semantics: the PMU tags one *instruction* per interval,
    /// uniformly. A tag landing on a non-memory instruction raises the
    /// interrupt but yields no address, so Cheetah's handler discards it —
    /// the trap cost is still charged (accumulated onto the next access,
    /// where the engine learns about the elapsed instructions). A tag
    /// landing on this access yields a [`Sample`]. This per-instruction
    /// uniformity matters: it makes sampled accesses an unbiased estimator
    /// of per-access latency, which the assessment equations rely on.
    ///
    /// Threads never registered via [`SamplingEngine::begin_thread`] are
    /// not sampled (their PMU was never programmed).
    pub fn observe(&mut self, record: &AccessRecord) -> (Option<Sample>, Cycles) {
        let Some(state) = self.threads.get_mut(&record.thread) else {
            return (None, 0);
        };
        // This access occupies instruction index `instrs_before`.
        let index = record.instrs_before;
        let mut perturbation: Cycles = 0;
        // Tags that landed on preceding compute instructions: interrupt
        // fired, no address, sample dropped.
        while state.next_at < index {
            perturbation += self.config.trap_cost;
            self.total_dropped += 1;
            self.obs_dropped.add(1);
            let step = Self::interval(&self.config, &mut state.rng);
            state.next_at += step;
        }
        let sampled = state.next_at == index;
        if sampled {
            state.samples += 1;
            let step = Self::interval(&self.config, &mut state.rng);
            state.next_at += step;
            self.total_samples += 1;
            self.obs_delivered.add(1);
            self.obs_latency.record(record.latency);
            perturbation += self.config.trap_cost;
        }
        self.total_trap_cycles += perturbation;
        let sample = sampled.then_some(Sample {
            thread: record.thread,
            addr: record.addr,
            kind: record.kind,
            latency: record.latency,
            time: record.start,
            phase_index: record.phase_index,
            phase_kind: record.phase_kind,
        });
        (sample, perturbation)
    }

    /// Total samples delivered so far.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Tags that landed on non-memory instructions and were dropped.
    pub fn total_dropped(&self) -> u64 {
        self.total_dropped
    }

    /// Samples delivered to a specific thread.
    pub fn thread_samples(&self, thread: ThreadId) -> u64 {
        self.threads.get(&thread).map_or(0, |s| s.samples)
    }

    /// Total cycles of perturbation charged through traps.
    pub fn total_trap_cycles(&self) -> Cycles {
        self.total_trap_cycles
    }

    /// Total cycles of perturbation charged through per-thread setup.
    pub fn total_setup_cycles(&self) -> Cycles {
        self.total_setup_cycles
    }
}

/// A standalone replica of one thread's sampling countdown, handed to the
/// simulator's sharded executor (see [`SamplingEngine::fork_thread`]).
///
/// Implements [`cheetah_sim::ThreadSampler`]: judged access by access in
/// program order, it marks exactly the accesses the engine samples and
/// charges exactly the perturbation the engine's `observe` would return at
/// each access — tags landing on compute instructions are charged at the
/// first following access, as IBS delivers them.
#[derive(Debug, Clone)]
pub struct SamplerReplica {
    config: SamplerConfig,
    next_at: u64,
    rng: u64,
}

impl ThreadSampler for SamplerReplica {
    fn next_tag(&self) -> u64 {
        // Accesses strictly below the pending tag are untouched: `judge`
        // would neither charge nor sample them.
        self.next_at
    }

    fn judge(&mut self, instrs_before: u64) -> SampleJudgement {
        let index = instrs_before;
        let mut perturbation: Cycles = 0;
        while self.next_at < index {
            perturbation += self.config.trap_cost;
            let step = SamplingEngine::interval(&self.config, &mut self.rng);
            self.next_at += step;
        }
        let sampled = self.next_at == index;
        if sampled {
            let step = SamplingEngine::interval(&self.config, &mut self.rng);
            self.next_at += step;
            perturbation += self.config.trap_cost;
        }
        SampleJudgement {
            perturbation,
            sampled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_sim::{AccessKind, AccessOutcome, Addr, CoreId, PhaseKind};

    fn record(thread: ThreadId, instrs_before: u64) -> AccessRecord {
        AccessRecord {
            thread,
            core: CoreId(0),
            addr: Addr(0x4000_0000),
            kind: AccessKind::Read,
            outcome: AccessOutcome::L1Hit,
            latency: 4,
            start: instrs_before,
            instrs_before,
            phase_index: 0,
            phase_kind: PhaseKind::Parallel,
        }
    }

    #[test]
    fn zero_period_config_rejected() {
        assert_eq!(
            SamplingEngine::try_new(SamplerConfig::with_period(0)).unwrap_err(),
            crate::config::ConfigError::ZeroPeriod
        );
    }

    #[test]
    fn unregistered_thread_never_sampled() {
        let mut engine = SamplingEngine::new(SamplerConfig::with_period(10));
        let (sample, cost) = engine.observe(&record(ThreadId(5), 1_000_000));
        assert!(sample.is_none());
        assert_eq!(cost, 0);
    }

    #[test]
    fn access_only_stream_sampled_at_period_rate() {
        let mut config = SamplerConfig::with_period(1000);
        config.jitter_div = 8;
        let mut engine = SamplingEngine::new(config);
        engine.begin_thread(ThreadId(1));
        let mut samples = 0u64;
        // One access per instruction for 1M instructions: every tag lands
        // on an access, so no drops.
        for i in 0..1_000_000u64 {
            if engine.observe(&record(ThreadId(1), i)).0.is_some() {
                samples += 1;
            }
        }
        assert!(
            (950..=1200).contains(&samples),
            "got {samples} samples for 1M instructions at period 1000"
        );
        assert_eq!(engine.total_samples(), samples);
        assert_eq!(engine.total_dropped(), 0);
        assert_eq!(engine.thread_samples(ThreadId(1)), samples);
    }

    #[test]
    fn jitter_disabled_gives_exact_period() {
        let mut config = SamplerConfig::with_period(100);
        config.jitter_div = 0;
        let mut engine = SamplingEngine::new(config);
        engine.begin_thread(ThreadId(1));
        let mut sampled_at = Vec::new();
        for i in 0..1_000u64 {
            if engine.observe(&record(ThreadId(1), i)).0.is_some() {
                sampled_at.push(i);
            }
        }
        assert_eq!(sampled_at.len(), 9);
        for pair in sampled_at.windows(2) {
            assert_eq!(pair[1] - pair[0], 100);
        }
    }

    #[test]
    fn tags_landing_on_compute_are_dropped_but_charged() {
        // Accesses separated by 10K compute instructions at period 1000:
        // ~9 of 10 tags land on compute and are dropped; their trap cost
        // is charged on the next access.
        // Use a period co-prime with the access spacing so tag indices
        // almost never coincide with access indices.
        let mut config = SamplerConfig::with_period(997);
        config.jitter_div = 0;
        let trap = config.trap_cost;
        let mut engine = SamplingEngine::new(config);
        engine.begin_thread(ThreadId(1));
        let mut samples = 0u64;
        let mut charged: Cycles = 0;
        for i in 1..=100u64 {
            let (sample, cost) = engine.observe(&record(ThreadId(1), i * 10_000));
            charged += cost;
            if sample.is_some() {
                samples += 1;
            }
        }
        // Expected tags over 1M instructions: ~1000; nearly all dropped.
        assert!(samples <= 5, "few tags land exactly on accesses: {samples}");
        assert!(
            engine.total_dropped() >= 990,
            "dropped {}",
            engine.total_dropped()
        );
        assert_eq!(
            charged,
            trap * (samples + engine.total_dropped()),
            "every tag costs one trap"
        );
    }

    #[test]
    fn sampling_is_unbiased_across_access_positions() {
        // Loop body: access A, 9 compute instructions, access B. Both
        // accesses must receive a similar number of samples even though B
        // follows the compute gap.
        let mut config = SamplerConfig::with_period(97);
        config.jitter_div = 4;
        let mut engine = SamplingEngine::new(config);
        engine.begin_thread(ThreadId(1));
        let mut a_samples = 0u64;
        let mut b_samples = 0u64;
        let mut instr = 0u64;
        for _ in 0..200_000 {
            if engine.observe(&record(ThreadId(1), instr)).0.is_some() {
                a_samples += 1;
            }
            instr += 1; // access A retired
            instr += 9; // compute
            if engine.observe(&record(ThreadId(1), instr)).0.is_some() {
                b_samples += 1;
            }
            instr += 1; // access B retired
        }
        let ratio = a_samples as f64 / b_samples as f64;
        assert!(
            (0.7..1.4).contains(&ratio),
            "positional bias: A={a_samples} B={b_samples}"
        );
    }

    /// A 12-instruction loop body with accesses at offsets 0 and 6; returns
    /// how often each access was sampled plus the engine's totals.
    fn sample_aligned_loop(config: SamplerConfig) -> (u64, u64, u64) {
        let mut engine = SamplingEngine::new(config);
        engine.begin_thread(ThreadId(1));
        let (mut a_samples, mut b_samples) = (0u64, 0u64);
        let mut instr = 0u64;
        for _ in 0..10_000 {
            if engine.observe(&record(ThreadId(1), instr)).0.is_some() {
                a_samples += 1;
            }
            instr += 6; // access A retired + 5 compute
            if engine.observe(&record(ThreadId(1), instr)).0.is_some() {
                b_samples += 1;
            }
            instr += 6; // access B retired + 5 compute
        }
        let tags = engine.total_samples() + engine.total_dropped();
        (a_samples, b_samples, tags)
    }

    #[test]
    fn small_scaled_period_resonates_with_aligned_loop() {
        // The failure mode the full-jitter option exists for: at period 12
        // the default jitter span rounds down to one instruction, so every
        // interval is exactly 12 — phase-locked with the 12-instruction
        // loop body. Access A soaks up every sample; B is invisible.
        let config = SamplerConfig::scaled_to_period(12);
        let (a_samples, b_samples, _) = sample_aligned_loop(config);
        assert!(
            a_samples > 500,
            "resonant sampler still samples: {a_samples}"
        );
        assert_eq!(
            b_samples, 0,
            "a phase-locked sampler never sees the second access"
        );
    }

    #[test]
    fn full_jitter_breaks_loop_resonance() {
        // Same loop, same period, full-range jitter: intervals are uniform
        // in [6, 18), so the sampler cannot stay phase-locked and both
        // accesses are sampled at comparable rates — the unbiased-estimator
        // property the assessment equations need, restored.
        let mut config = SamplerConfig::scaled_to_period(12);
        config.full_jitter = true;
        let (a_samples, b_samples, tags) = sample_aligned_loop(config);
        assert!(a_samples > 0 && b_samples > 0);
        let ratio = a_samples as f64 / b_samples as f64;
        assert!(
            (0.6..1.7).contains(&ratio),
            "full jitter must sample both accesses: A={a_samples} B={b_samples}"
        );
        // The mean interval stays ≈ period, so the *tag rate* is preserved:
        // 120K instructions at period 12 is ~10K tags (most land on the 10
        // compute instructions per body and are dropped, as IBS would).
        assert!(
            (8_000..=12_500).contains(&tags),
            "full jitter must not change the sampling rate: {tags}"
        );
    }

    #[test]
    fn replica_matches_engine_under_full_jitter() {
        // Full jitter must preserve the sharded-execution contract: the
        // forked replica reproduces the engine's decisions access by access.
        let mut config = SamplerConfig::with_period(333);
        config.full_jitter = true;
        let mut engine = SamplingEngine::new(config);
        engine.begin_thread(ThreadId(3));
        let mut replica = engine.fork_thread(ThreadId(3));
        let mut index = 0u64;
        for step in 0..20_000u64 {
            index += 1 + (step * 7) % 23;
            let (sample, cost) = engine.observe(&record(ThreadId(3), index));
            let judgement = replica.judge(index);
            assert_eq!(judgement.sampled, sample.is_some(), "at index {index}");
            assert_eq!(judgement.perturbation, cost, "at index {index}");
        }
        assert!(engine.total_samples() + engine.total_dropped() > 500);
    }

    #[test]
    fn trap_and_setup_cycles_accumulate() {
        let mut config = SamplerConfig::with_period(10);
        config.jitter_div = 0;
        let setup = config.setup_cost;
        let mut engine = SamplingEngine::new(config);
        engine.begin_thread(ThreadId(1));
        engine.begin_thread(ThreadId(2));
        assert_eq!(engine.total_setup_cycles(), 2 * setup);
        let mut total = 0;
        for i in 0..100u64 {
            total += engine.observe(&record(ThreadId(1), i)).1;
        }
        assert_eq!(engine.total_trap_cycles(), total);
        assert!(total > 0);
    }

    #[test]
    fn samples_carry_access_fields() {
        let mut config = SamplerConfig::with_period(1);
        config.jitter_div = 0;
        let mut engine = SamplingEngine::new(config);
        engine.begin_thread(ThreadId(7));
        let record = record(ThreadId(7), 5);
        // Drain tags until one lands on instruction 5.
        let (sample, _) = engine.observe(&record);
        let sample = sample.expect("period 1 tags every instruction");
        assert_eq!(sample.thread, ThreadId(7));
        assert_eq!(sample.addr, record.addr);
        assert_eq!(sample.kind, record.kind);
        assert_eq!(sample.latency, record.latency);
        assert_eq!(sample.phase_kind, PhaseKind::Parallel);
    }

    #[test]
    fn replica_reproduces_engine_decisions() {
        // The sharded-execution contract: judging every access in order
        // marks exactly the accesses the engine samples and charges
        // exactly the perturbation `observe` returns at each access —
        // including dropped tags caught up across compute gaps.
        let mut config = SamplerConfig::with_period(333);
        config.jitter_div = 4;
        let mut engine = SamplingEngine::new(config);
        engine.begin_thread(ThreadId(3));
        let mut replica = engine.fork_thread(ThreadId(3));
        let mut index = 0u64;
        for step in 0..50_000u64 {
            // Irregular instruction gaps (compute bursts) between accesses.
            index += 1 + (step * 7) % 23;
            let (sample, cost) = engine.observe(&record(ThreadId(3), index));
            let judgement = replica.judge(index);
            assert_eq!(judgement.sampled, sample.is_some(), "at index {index}");
            assert_eq!(judgement.perturbation, cost, "at index {index}");
        }
        assert!(engine.total_samples() > 100);
    }

    #[test]
    fn deterministic_across_engines() {
        let run = || {
            let mut engine = SamplingEngine::new(SamplerConfig::with_period(777));
            engine.begin_thread(ThreadId(1));
            let mut hits = Vec::new();
            for i in 0..100_000u64 {
                if engine.observe(&record(ThreadId(1), i)).0.is_some() {
                    hits.push(i);
                }
            }
            hits
        };
        assert_eq!(run(), run());
    }
}
