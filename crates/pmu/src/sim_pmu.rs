//! The standalone simulated PMU observer.

use crate::config::{ConfigError, SamplerConfig};
use crate::engine::SamplingEngine;
use crate::faults::{FaultInjector, FaultPlan};
use crate::sample::Sample;
use cheetah_sim::{AccessRecord, Cycles, ExecObserver, SamplerFork, ThreadId};

/// An [`ExecObserver`] that samples memory accesses like AMD IBS / Intel
/// PEBS and forwards each [`Sample`] to a callback.
///
/// This is the "data collection" box of the paper's Fig. 2 in isolation:
/// useful for collecting raw sample streams (tests, baselines, custom
/// analyses). Cheetah's full profiler embeds the same [`SamplingEngine`]
/// together with detection and phase tracking.
///
/// ```
/// use cheetah_pmu::{Sample, SamplerConfig, SimPmu};
/// use cheetah_sim::{Addr, LoopStream, Machine, MachineConfig, Op,
///                   ProgramBuilder, ThreadSpec};
///
/// let machine = Machine::new(MachineConfig::with_cores(4));
/// let program = ProgramBuilder::new("sampled")
///     .parallel(vec![ThreadSpec::new(
///         "w",
///         LoopStream::new(vec![Op::Write(Addr(0x4000_0000)), Op::Work(7)], 50_000),
///     )])
///     .build();
/// let mut samples: Vec<Sample> = Vec::new();
/// let mut pmu = SimPmu::new(SamplerConfig::with_period(4096), |s| samples.push(s)).unwrap();
/// machine.run(program, &mut pmu);
/// assert!(!samples.is_empty());
/// ```
pub struct SimPmu<F> {
    engine: SamplingEngine,
    faults: Option<FaultInjector>,
    sink: F,
}

impl<F: FnMut(Sample)> SimPmu<F> {
    /// Creates a simulated PMU delivering samples to `sink`.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if `config` is invalid (zero period), so a swept
    /// experiment cell with a bad period fails gracefully instead of
    /// aborting the whole harness.
    pub fn new(config: SamplerConfig, sink: F) -> Result<Self, ConfigError> {
        Ok(SimPmu {
            engine: SamplingEngine::try_new(config)?,
            faults: None,
            sink,
        })
    }

    /// Creates a simulated PMU whose sample stream passes through a seeded
    /// [`FaultPlan`] before reaching `sink` — the robustness-testing
    /// configuration. The reorder buffer (if any) is drained when the main
    /// thread exits.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if `config` or `plan` is invalid.
    pub fn with_faults(
        config: SamplerConfig,
        plan: FaultPlan,
        sink: F,
    ) -> Result<Self, ConfigError> {
        Ok(SimPmu {
            engine: SamplingEngine::try_new(config)?,
            faults: Some(FaultInjector::new(plan)?),
            sink,
        })
    }

    /// The embedded sampling engine (counters, configuration).
    pub fn engine(&self) -> &SamplingEngine {
        &self.engine
    }

    /// The fault injector, when constructed via [`SimPmu::with_faults`].
    pub fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }
}

impl<F> std::fmt::Debug for SimPmu<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPmu")
            .field("engine", &self.engine)
            .field("faults", &self.faults)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(Sample)> ExecObserver for SimPmu<F> {
    fn on_thread_start(&mut self, thread: ThreadId, _name: &str, _now: Cycles) -> Cycles {
        self.engine.begin_thread(thread)
    }

    fn on_thread_exit(&mut self, thread: ThreadId, _now: Cycles) {
        // The main thread's exit ends the run: drain any samples parked in
        // the fault plan's reorder buffer so none are silently lost.
        if thread.is_main() {
            if let Some(faults) = &mut self.faults {
                faults.flush(&mut self.sink);
            }
        }
    }

    fn on_access(&mut self, record: &AccessRecord) -> Cycles {
        let (sample, cost) = self.engine.observe(record);
        if let Some(sample) = sample {
            match &mut self.faults {
                Some(faults) => faults.push(sample, &mut self.sink),
                None => (self.sink)(sample),
            }
        }
        cost
    }

    fn fork_sampler(&mut self, thread: ThreadId) -> SamplerFork {
        SamplerFork::Replica(Box::new(self.engine.fork_thread(thread)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_sim::{
        Addr, LoopStream, Machine, MachineConfig, NullObserver, Op, ProgramBuilder, ThreadSpec,
    };

    // Long enough (≈3.9M cycles/thread) that the fixed per-thread PMU setup
    // cost is amortised, as in the paper's ≥5-second runs.
    fn workload() -> cheetah_sim::Program {
        ProgramBuilder::new("w")
            .parallel(
                (0..2u64)
                    .map(|t| {
                        ThreadSpec::new(
                            format!("w{t}"),
                            LoopStream::new(
                                vec![Op::Write(Addr(0x4000_0000 + t * 256)), Op::Work(9)],
                                300_000,
                            ),
                        )
                    })
                    .collect(),
            )
            .build()
    }

    #[test]
    fn collects_samples_from_all_threads() {
        let machine = Machine::new(MachineConfig::with_cores(4));
        let mut samples = Vec::new();
        let mut pmu = SimPmu::new(SamplerConfig::with_period(1024), |s| samples.push(s)).unwrap();
        machine.run(workload(), &mut pmu);
        assert!(pmu.engine().total_samples() > 10);
        let t1 = samples.iter().filter(|s| s.thread == ThreadId(1)).count();
        let t2 = samples.iter().filter(|s| s.thread == ThreadId(2)).count();
        assert!(t1 > 0 && t2 > 0, "both threads must be sampled");
    }

    #[test]
    fn sampling_perturbs_runtime() {
        let machine = Machine::new(MachineConfig::with_cores(4));
        let clean = machine.run(workload(), &mut NullObserver);
        let mut pmu = SimPmu::new(SamplerConfig::with_period(1024), |_| {}).unwrap();
        let profiled = machine.run(workload(), &mut pmu);
        assert!(profiled.total_cycles > clean.total_cycles);
        let overhead = profiled.total_cycles as f64 / clean.total_cycles as f64;
        // At a 1K period the trap cost is large (the paper's motivation for
        // sampling sparsely) but still bounded.
        assert!(overhead > 1.1, "1K-period sampling must be visible");
        assert!(overhead < 6.0, "overhead ratio {overhead}");
    }

    #[test]
    fn faulted_pmu_drops_deterministically() {
        use crate::faults::FaultPlan;
        let machine = Machine::new(MachineConfig::with_cores(4));
        let run = |plan: FaultPlan| {
            let mut samples = Vec::new();
            let mut pmu =
                SimPmu::with_faults(SamplerConfig::with_period(1024), plan, |s| samples.push(s))
                    .unwrap();
            machine.run(workload(), &mut pmu);
            let counts = *pmu.faults().unwrap().counts();
            let tagged = pmu.engine().total_samples();
            drop(pmu);
            (samples, tagged, counts)
        };
        let (clean, tagged_clean, none_counts) = run(FaultPlan::none());
        assert_eq!(clean.len() as u64, tagged_clean);
        assert_eq!(none_counts.injected(), 0);
        let (faulted, tagged, counts) = run(FaultPlan::drops(250).with_seed(4));
        assert_eq!(tagged, tagged_clean, "sampling itself is unperturbed");
        assert_eq!(faulted.len() as u64 + counts.dropped, tagged);
        assert!(counts.dropped > 0);
        let (again, _, counts_again) = run(FaultPlan::drops(250).with_seed(4));
        assert_eq!(faulted, again, "faulted runs reproduce per (plan, seed)");
        assert_eq!(counts, counts_again);
    }

    #[test]
    fn faulted_pmu_flushes_reorder_buffer_at_main_exit() {
        use crate::faults::FaultPlan;
        let machine = Machine::new(MachineConfig::with_cores(4));
        let mut samples = Vec::new();
        let plan = FaultPlan {
            reorder_window: 16,
            ..FaultPlan::none()
        };
        let mut pmu =
            SimPmu::with_faults(SamplerConfig::with_period(1024), plan, |s| samples.push(s))
                .unwrap();
        machine.run(workload(), &mut pmu);
        let tagged = pmu.engine().total_samples();
        let reordered = pmu.faults().unwrap().counts().reordered;
        drop(pmu);
        assert_eq!(
            samples.len() as u64,
            tagged,
            "reordering must not lose samples once the run ends"
        );
        assert!(reordered > 0);
    }

    #[test]
    fn zero_period_is_a_graceful_error() {
        assert_eq!(
            SimPmu::new(SamplerConfig::with_period(0), |_| {}).unwrap_err(),
            ConfigError::ZeroPeriod
        );
    }

    #[test]
    fn sparse_period_means_low_overhead() {
        let machine = Machine::new(MachineConfig::with_cores(4));
        let clean = machine.run(workload(), &mut NullObserver);
        let mut pmu = SimPmu::new(SamplerConfig::paper_default(), |_| {}).unwrap();
        let profiled = machine.run(workload(), &mut pmu);
        let overhead = profiled.total_cycles as f64 / clean.total_cycles as f64 - 1.0;
        assert!(
            overhead < 0.15,
            "64K-period sampling should be cheap, got {:.1}%",
            overhead * 100.0
        );
    }
}
