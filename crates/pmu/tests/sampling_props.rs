//! Statistical and structural properties of the sampling engine.

use cheetah_pmu::{SamplerConfig, SamplingEngine};
use cheetah_sim::{AccessKind, AccessOutcome, AccessRecord, Addr, CoreId, PhaseKind, ThreadId};
use proptest::prelude::*;

fn record(thread: ThreadId, instrs_before: u64, latency: u64) -> AccessRecord {
    AccessRecord {
        thread,
        core: CoreId(0),
        addr: Addr(0x4000_0000),
        kind: AccessKind::Read,
        outcome: AccessOutcome::L1Hit,
        latency,
        start: instrs_before,
        instrs_before,
        phase_index: 1,
        phase_kind: PhaseKind::Parallel,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tag_count_matches_instruction_budget(
        period in 64u64..4096,
        gaps in proptest::collection::vec(1u64..200, 50..300),
    ) {
        let mut config = SamplerConfig::with_period(period);
        config.jitter_div = 8;
        let mut engine = SamplingEngine::new(config);
        engine.begin_thread(ThreadId(1));
        let mut instr = 0u64;
        for gap in &gaps {
            instr += gap;
            engine.observe(&record(ThreadId(1), instr, 4));
        }
        let tags = engine.total_samples() + engine.total_dropped();
        // Tags fire once per (jittered) period; intervals shrink by at
        // most period/8, and up to one tag can still be pending.
        let min_expected = instr / period;
        let max_expected = instr / (period - period / 8) + 1;
        prop_assert!(
            tags <= max_expected && tags + 1 >= min_expected.min(tags + 1),
            "tags {} outside [{}, {}] for {} instructions at period {}",
            tags, min_expected, max_expected, instr, period
        );
    }

    #[test]
    fn sampled_mean_latency_is_unbiased(
        latencies in proptest::collection::vec(1u64..500, 2..10)
    ) {
        // A loop touching accesses of different latencies back-to-back:
        // the sampled mean must approximate the true mean.
        let mut config = SamplerConfig::with_period(97);
        config.jitter_div = 4;
        let mut engine = SamplingEngine::new(config);
        engine.begin_thread(ThreadId(1));
        let mut instr = 0u64;
        let mut sampled_total = 0u64;
        let mut sampled_n = 0u64;
        for _ in 0..40_000 {
            for &lat in &latencies {
                if let (Some(sample), _) = engine.observe(&record(ThreadId(1), instr, lat)) {
                    sampled_total += sample.latency;
                    sampled_n += 1;
                }
                instr += 1;
            }
        }
        prop_assume!(sampled_n > 200);
        let true_mean = latencies.iter().sum::<u64>() as f64 / latencies.len() as f64;
        let sampled_mean = sampled_total as f64 / sampled_n as f64;
        prop_assert!(
            (sampled_mean - true_mean).abs() / true_mean < 0.25,
            "sampled {} vs true {}", sampled_mean, true_mean
        );
    }

    #[test]
    fn perturbation_equals_trap_cost_times_tags(
        period in 32u64..1024,
        n in 100u64..5_000,
    ) {
        let config = SamplerConfig::scaled_to_period(period);
        let trap = config.trap_cost;
        let mut engine = SamplingEngine::new(config);
        engine.begin_thread(ThreadId(1));
        let mut charged = 0u64;
        for i in 0..n {
            charged += engine.observe(&record(ThreadId(1), i * 3, 4)).1;
        }
        prop_assert_eq!(
            charged,
            trap * (engine.total_samples() + engine.total_dropped())
        );
        prop_assert_eq!(charged, engine.total_trap_cycles());
    }
}
