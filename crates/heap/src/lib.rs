//! # cheetah-heap — Hoard-style heap model, callsites, shadow memory
//!
//! The allocator substrate of the Cheetah reproduction. The paper's profiler
//! replaces the system allocator with a custom heap (built on Heap Layers)
//! for three reasons, all reproduced here:
//!
//! 1. **Known address range** — every allocation comes from one pre-reserved
//!    segment, so shadow-memory lookups ([`ShadowMap`]) are one shift and one
//!    index, never a search.
//! 2. **Per-thread arenas** (Hoard) — two threads never share a cache line
//!    through the allocator ([`HeapModel`]), eliminating allocator-induced
//!    false sharing so that whatever remains is the application's.
//! 3. **Callsite attribution** — each allocation records up to five stack
//!    frames ([`CallStack`]) so reports can say
//!    `linear_regression-pthread.c: 139` like Fig. 5 of the paper.
//!
//! Global variables get the same treatment through [`GlobalRegistry`], which
//! stands in for the binary's symbol table. [`AddressSpace`] combines both
//! for one-call address resolution.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod callsite;
pub mod globals;
pub mod object;
pub mod shadow;
pub mod space;

pub use arena::{HeapError, HeapModel, LARGE_THRESHOLD, MIN_CLASS, SUPERBLOCK};
pub use callsite::{CallStack, Frame, MAX_FRAMES};
pub use globals::{GlobalRegistry, GlobalSymbol, GlobalsError};
pub use object::{ObjectId, ObjectInfo};
pub use shadow::ShadowMap;
pub use space::{AddressSpace, Location};
