//! The Hoard-style heap model.
//!
//! Cheetah builds its own allocator (on Heap Layers) so that (a) the heap
//! occupies one pre-reserved address range, enabling O(1) shadow-memory
//! lookup, and (b) per-thread arenas guarantee that two threads never share
//! a cache line through the allocator itself, removing allocator-induced
//! false sharing from the picture. [`HeapModel`] reproduces both properties
//! over the simulated address space:
//!
//! * all allocations come from [`cheetah_sim::layout::HEAP_BASE`]..[`HEAP_END`],
//! * objects are rounded to power-of-two size classes,
//! * each `(thread, size class)` pair carves from its own superblocks, so a
//!   cache line is only ever handed to one thread,
//! * every allocation records its requested size and call stack.
//!
//! [`HEAP_END`]: cheetah_sim::layout::HEAP_END

use crate::callsite::CallStack;
use crate::object::{ObjectId, ObjectInfo};
use cheetah_sim::layout::{HEAP_BASE, HEAP_END};
use cheetah_sim::util::FastMap;
use cheetah_sim::{Addr, ThreadId};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Smallest size class in bytes.
pub const MIN_CLASS: u64 = 16;
/// Superblock granularity for per-thread arenas.
pub const SUPERBLOCK: u64 = 64 * 1024;
/// Allocations of at least this size bypass superblocks and get dedicated,
/// line-aligned regions.
pub const LARGE_THRESHOLD: u64 = SUPERBLOCK / 2;

/// Errors returned by [`HeapModel::alloc`] and [`HeapModel::free`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// Zero-sized allocation requested.
    ZeroSize,
    /// The modelled heap segment is exhausted.
    OutOfMemory,
    /// `free` of an address that is not the start of a live object.
    InvalidFree(Addr),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::ZeroSize => f.write_str("zero-sized allocation"),
            HeapError::OutOfMemory => f.write_str("modelled heap exhausted"),
            HeapError::InvalidFree(addr) => {
                write!(f, "free of {addr} which is not a live object start")
            }
        }
    }
}

impl Error for HeapError {}

/// Rounds a request up to its size class.
fn size_class(size: u64) -> u64 {
    size.max(MIN_CLASS).next_power_of_two()
}

#[derive(Debug, Default)]
struct ClassArena {
    /// Next free byte in the current superblock.
    cursor: u64,
    /// One past the end of the current superblock (0 = none).
    limit: u64,
    /// Recycled blocks of this class.
    free_list: Vec<u64>,
}

/// The Hoard-style per-thread heap model.
///
/// ```
/// use cheetah_heap::{CallStack, HeapModel};
/// use cheetah_sim::ThreadId;
///
/// let mut heap = HeapModel::new();
/// let a = heap.alloc(ThreadId(1), 4000, CallStack::single("app.c", 139))?;
/// let b = heap.alloc(ThreadId(2), 4000, CallStack::single("app.c", 140))?;
/// // Different threads never share a cache line through the allocator.
/// assert_ne!(a.line(64), b.line(64));
/// let object = heap.object_at(a).unwrap();
/// assert_eq!(object.size, 4000);
/// # Ok::<(), cheetah_heap::HeapError>(())
/// ```
#[derive(Debug)]
pub struct HeapModel {
    /// Global bump pointer for new superblocks / large regions.
    wilderness: u64,
    arenas: FastMap<(ThreadId, u64), ClassArena>,
    objects: Vec<ObjectInfo>,
    /// Live objects ordered by start address (range queries for lookup).
    live_by_addr: BTreeMap<u64, ObjectId>,
    /// Most recent object (live or dead) by start address, for attributing
    /// samples that race with frees.
    last_by_addr: BTreeMap<u64, ObjectId>,
    live_bytes: u64,
    peak_live_bytes: u64,
}

impl Default for HeapModel {
    fn default() -> Self {
        HeapModel::new()
    }
}

impl HeapModel {
    /// An empty heap model over the conventional heap segment.
    pub fn new() -> Self {
        HeapModel {
            wilderness: HEAP_BASE.0,
            arenas: FastMap::default(),
            objects: Vec::new(),
            live_by_addr: BTreeMap::new(),
            last_by_addr: BTreeMap::new(),
            live_bytes: 0,
            peak_live_bytes: 0,
        }
    }

    /// Allocates `size` bytes on behalf of `thread`, recording `callsite`.
    ///
    /// # Errors
    ///
    /// [`HeapError::ZeroSize`] for `size == 0`;
    /// [`HeapError::OutOfMemory`] if the modelled 1 GiB segment is full.
    pub fn alloc(
        &mut self,
        thread: ThreadId,
        size: u64,
        callsite: CallStack,
    ) -> Result<Addr, HeapError> {
        if size == 0 {
            return Err(HeapError::ZeroSize);
        }
        let class = size_class(size);
        let start = if class >= LARGE_THRESHOLD {
            self.bump(class)?
        } else {
            let arena = self.arenas.entry((thread, class)).or_default();
            if let Some(addr) = arena.free_list.pop() {
                addr
            } else {
                if arena.cursor + class > arena.limit {
                    // Need a fresh superblock for this (thread, class).
                    let block = {
                        // Inline bump to appease the borrow checker.
                        let aligned = align_up(self.wilderness, SUPERBLOCK);
                        if aligned + SUPERBLOCK > HEAP_END.0 {
                            return Err(HeapError::OutOfMemory);
                        }
                        self.wilderness = aligned + SUPERBLOCK;
                        aligned
                    };
                    let arena = self
                        .arenas
                        .get_mut(&(thread, class))
                        .expect("just inserted");
                    arena.cursor = block;
                    arena.limit = block + SUPERBLOCK;
                }
                let arena = self
                    .arenas
                    .get_mut(&(thread, class))
                    .expect("just inserted");
                let addr = arena.cursor;
                arena.cursor += class;
                addr
            }
        };
        Ok(self.record(start, size, class, thread, callsite, None))
    }

    /// Allocates `size` bytes aligned to `align` and padded so that the
    /// reserved extent is a whole number of `align` units — the allocation
    /// primitive behind synthesized false-sharing fixes: with `align` equal
    /// to the cache line size, the object starts on a line boundary and no
    /// later allocation can share its last line.
    ///
    /// # Errors
    ///
    /// [`HeapError::ZeroSize`] for `size == 0`;
    /// [`HeapError::OutOfMemory`] if the modelled segment is full.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc_aligned(
        &mut self,
        thread: ThreadId,
        size: u64,
        align: u64,
        callsite: CallStack,
    ) -> Result<Addr, HeapError> {
        if size == 0 {
            return Err(HeapError::ZeroSize);
        }
        let (start, reserved) = self.reserve_aligned(size, align)?;
        Ok(self.record(start, size, reserved, thread, callsite, None))
    }

    /// Reserves `size` bytes aligned to `align` and padded to a multiple of
    /// `align` from the wilderness; returns (start, reserved bytes).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    fn reserve_aligned(&mut self, size: u64, align: u64) -> Result<(u64, u64), HeapError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let reserved = align_up(size, align);
        let start = align_up(self.wilderness, align);
        if start + reserved > HEAP_END.0 {
            return Err(HeapError::OutOfMemory);
        }
        self.wilderness = start + reserved;
        Ok((start, reserved))
    }

    /// Relocates object `id` into fresh storage aligned to `align` and
    /// padded to a multiple of `align` (see [`HeapModel::alloc_aligned`]).
    /// The clone keeps the original's owner and callsite and records the
    /// provenance in [`ObjectInfo::relocated_from`]; the original stays
    /// live (layout rewrites redirect accesses, they do not free).
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] if the modelled segment is full.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this heap or `align` is not a
    /// power of two.
    pub fn relocate(&mut self, id: ObjectId, align: u64) -> Result<Addr, HeapError> {
        assert!(
            (id.0 as usize) < self.objects.len(),
            "relocate of unknown object {id}"
        );
        let (size, owner, callsite) = {
            let object = &self.objects[id.0 as usize];
            (object.size, object.owner, object.callsite.clone())
        };
        let (start, reserved) = self.reserve_aligned(size, align)?;
        Ok(self.record(start, size, reserved, owner, callsite, Some(id)))
    }

    fn record(
        &mut self,
        start: u64,
        size: u64,
        class: u64,
        thread: ThreadId,
        callsite: CallStack,
        relocated_from: Option<ObjectId>,
    ) -> Addr {
        let id = ObjectId(self.objects.len() as u64);
        self.objects.push(ObjectInfo {
            id,
            start: Addr(start),
            size,
            class_size: class,
            owner: thread,
            callsite,
            live: true,
            relocated_from,
        });
        self.live_by_addr.insert(start, id);
        self.last_by_addr.insert(start, id);
        self.live_bytes += class;
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
        Addr(start)
    }

    fn bump(&mut self, bytes: u64) -> Result<u64, HeapError> {
        let aligned = align_up(self.wilderness, SUPERBLOCK.min(bytes.next_power_of_two()));
        if aligned + bytes > HEAP_END.0 {
            return Err(HeapError::OutOfMemory);
        }
        self.wilderness = aligned + bytes;
        Ok(aligned)
    }

    /// Frees the object starting at `addr`, recycling its block to the
    /// owning thread's arena.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidFree`] if `addr` is not the start of a live
    /// object.
    pub fn free(&mut self, addr: Addr) -> Result<(), HeapError> {
        let id = self
            .live_by_addr
            .remove(&addr.0)
            .ok_or(HeapError::InvalidFree(addr))?;
        let (owner, class) = {
            let object = &mut self.objects[id.0 as usize];
            object.live = false;
            (object.owner, object.class_size)
        };
        self.live_bytes -= class;
        if class < LARGE_THRESHOLD {
            self.arenas
                .entry((owner, class))
                .or_default()
                .free_list
                .push(addr.0);
        }
        Ok(())
    }

    /// The object whose reserved extent contains `addr`, preferring live
    /// objects and falling back to the most recent dead one (samples can
    /// arrive just after a free).
    pub fn object_at(&self, addr: Addr) -> Option<&ObjectInfo> {
        self.lookup(&self.live_by_addr, addr)
            .or_else(|| self.lookup(&self.last_by_addr, addr))
    }

    fn lookup(&self, map: &BTreeMap<u64, ObjectId>, addr: Addr) -> Option<&ObjectInfo> {
        let (_, id) = map.range(..=addr.0).next_back()?;
        let object = &self.objects[id.0 as usize];
        object.contains(addr).then_some(object)
    }

    /// Object metadata by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this heap.
    pub fn object(&self, id: ObjectId) -> &ObjectInfo {
        &self.objects[id.0 as usize]
    }

    /// All allocations ever made, in allocation order.
    pub fn objects(&self) -> &[ObjectInfo] {
        &self.objects
    }

    /// Currently reserved bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// High-water mark of reserved bytes.
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_bytes
    }
}

fn align_up(value: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (value + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> CallStack {
        CallStack::single("test.c", 1)
    }

    #[test]
    fn size_classes_are_powers_of_two() {
        assert_eq!(size_class(1), MIN_CLASS);
        assert_eq!(size_class(16), 16);
        assert_eq!(size_class(17), 32);
        assert_eq!(size_class(4000), 4096);
        assert_eq!(size_class(4096), 4096);
    }

    #[test]
    fn zero_alloc_rejected() {
        let mut heap = HeapModel::new();
        assert_eq!(heap.alloc(ThreadId(0), 0, site()), Err(HeapError::ZeroSize));
    }

    #[test]
    fn allocations_stay_in_heap_segment() {
        let mut heap = HeapModel::new();
        for i in 0..100 {
            let addr = heap.alloc(ThreadId(i % 4), 100, site()).unwrap();
            assert!(addr >= HEAP_BASE && addr < HEAP_END);
        }
    }

    #[test]
    fn same_thread_small_objects_can_share_a_line() {
        let mut heap = HeapModel::new();
        let a = heap.alloc(ThreadId(1), 16, site()).unwrap();
        let b = heap.alloc(ThreadId(1), 16, site()).unwrap();
        assert_eq!(a.line(64), b.line(64));
        assert_eq!(b.0 - a.0, 16);
    }

    #[test]
    fn different_threads_never_share_a_line() {
        let mut heap = HeapModel::new();
        let mut allocations = Vec::new();
        for round in 0..50u64 {
            for t in 0..8u32 {
                let size = 16 + (round % 5) * 24;
                let addr = heap.alloc(ThreadId(t), size, site()).unwrap();
                allocations.push((ThreadId(t), addr, size_class(size)));
            }
        }
        for (i, &(t1, a1, c1)) in allocations.iter().enumerate() {
            for &(t2, a2, c2) in &allocations[i + 1..] {
                if t1 == t2 {
                    continue;
                }
                let lines1: std::collections::HashSet<u64> =
                    (a1.0..a1.0 + c1).map(|b| b / 64).collect();
                let any_shared = (a2.0..a2.0 + c2).any(|b| lines1.contains(&(b / 64)));
                assert!(!any_shared, "threads {t1} and {t2} share a line");
            }
        }
    }

    #[test]
    fn object_lookup_by_interior_pointer() {
        let mut heap = HeapModel::new();
        let addr = heap.alloc(ThreadId(0), 4000, site()).unwrap();
        let object = heap.object_at(Addr(addr.0 + 1234)).unwrap();
        assert_eq!(object.start, addr);
        assert_eq!(object.size, 4000);
        assert!(heap.object_at(Addr(addr.0 + 4096)).is_none());
    }

    #[test]
    fn free_recycles_to_owner_arena() {
        let mut heap = HeapModel::new();
        let a = heap.alloc(ThreadId(1), 64, site()).unwrap();
        heap.free(a).unwrap();
        let b = heap.alloc(ThreadId(1), 64, site()).unwrap();
        assert_eq!(a, b, "freed block should be recycled");
        // The dead object is still attributable.
        assert_eq!(heap.objects().len(), 2);
    }

    #[test]
    fn double_free_rejected() {
        let mut heap = HeapModel::new();
        let a = heap.alloc(ThreadId(1), 64, site()).unwrap();
        heap.free(a).unwrap();
        assert_eq!(heap.free(a), Err(HeapError::InvalidFree(a)));
        assert_eq!(
            heap.free(Addr(0x4f00_0000)),
            Err(HeapError::InvalidFree(Addr(0x4f00_0000)))
        );
    }

    #[test]
    fn dead_object_still_found_for_attribution() {
        let mut heap = HeapModel::new();
        let a = heap.alloc(ThreadId(1), 128, site()).unwrap();
        heap.free(a).unwrap();
        let object = heap.object_at(Addr(a.0 + 4)).unwrap();
        assert!(!object.live);
        assert_eq!(object.start, a);
    }

    #[test]
    fn large_allocations_line_aligned_and_tracked() {
        let mut heap = HeapModel::new();
        let addr = heap.alloc(ThreadId(0), 1 << 20, site()).unwrap();
        assert_eq!(addr.0 % 64, 0);
        let object = heap.object_at(addr).unwrap();
        assert_eq!(object.class_size, 1 << 20);
        assert!(heap.live_bytes() >= 1 << 20);
    }

    #[test]
    fn live_bytes_track_alloc_and_free() {
        let mut heap = HeapModel::new();
        let a = heap.alloc(ThreadId(0), 100, site()).unwrap();
        assert_eq!(heap.live_bytes(), 128);
        heap.free(a).unwrap();
        assert_eq!(heap.live_bytes(), 0);
        assert_eq!(heap.peak_live_bytes(), 128);
    }

    #[test]
    fn aligned_allocations_are_aligned_and_padded() {
        let mut heap = HeapModel::new();
        let a = heap.alloc_aligned(ThreadId(1), 100, 64, site()).unwrap();
        assert_eq!(a.0 % 64, 0);
        let info = heap.object_at(a).unwrap();
        assert_eq!(info.size, 100);
        assert_eq!(info.class_size, 128, "padded to a line multiple");
        // The next allocation, aligned or not, cannot share the last line.
        let b = heap.alloc(ThreadId(2), 16, site()).unwrap();
        assert!(b.0 / 64 > (a.0 + 127) / 64);
        assert_eq!(
            heap.alloc_aligned(ThreadId(1), 0, 64, site()),
            Err(HeapError::ZeroSize)
        );
    }

    #[test]
    fn relocation_keeps_identity_and_records_provenance() {
        let mut heap = HeapModel::new();
        let original = heap
            .alloc(ThreadId(3), 56, CallStack::single("app.c", 139))
            .unwrap();
        let original_id = heap.object_at(original).unwrap().id;
        let moved = heap.relocate(original_id, 64).unwrap();
        assert_ne!(moved, original);
        assert_eq!(moved.0 % 64, 0);
        let clone = heap.object_at(moved).unwrap();
        assert_eq!(clone.size, 56);
        assert_eq!(clone.owner, ThreadId(3));
        assert_eq!(clone.relocated_from, Some(original_id));
        assert_eq!(clone.callsite.to_string(), "app.c: 139");
        // The original object stays attributable.
        assert_eq!(heap.object_at(original).unwrap().id, original_id);
        assert_eq!(heap.object_at(original).unwrap().relocated_from, None);
    }

    #[test]
    fn callsites_preserved() {
        let mut heap = HeapModel::new();
        let addr = heap
            .alloc(
                ThreadId(0),
                4000,
                CallStack::single("linear_regression-pthread.c", 139),
            )
            .unwrap();
        let object = heap.object_at(addr).unwrap();
        assert_eq!(
            object.callsite.to_string(),
            "linear_regression-pthread.c: 139"
        );
    }
}
