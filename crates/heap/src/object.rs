//! Heap object metadata.

use crate::callsite::CallStack;
use cheetah_sim::{Addr, ThreadId};
use std::fmt;

/// Stable identifier of an allocated object (index into the allocation
/// history; never reused, even after `free`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// Metadata recorded for every heap allocation, kept for the lifetime of
/// the profile (the detector reports callsites even for freed objects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Identifier (allocation order).
    pub id: ObjectId,
    /// First byte of the object.
    pub start: Addr,
    /// Requested size in bytes.
    pub size: u64,
    /// Bytes actually reserved (the power-of-two size class).
    pub class_size: u64,
    /// Thread that performed the allocation.
    pub owner: ThreadId,
    /// Allocation call stack.
    pub callsite: CallStack,
    /// Whether the object is still allocated.
    pub live: bool,
    /// For objects created by a layout repair: the object this one replaces
    /// (the repair crate relocates falsely shared objects into padded,
    /// line-aligned storage and records the provenance here so reports can
    /// chain a repaired object back to its original callsite).
    pub relocated_from: Option<ObjectId>,
}

impl ObjectInfo {
    /// One past the last *requested* byte of the object.
    pub fn end(&self) -> Addr {
        Addr(self.start.0 + self.size)
    }

    /// One past the last *reserved* byte (class-size extent).
    pub fn reserved_end(&self) -> Addr {
        Addr(self.start.0 + self.class_size)
    }

    /// Whether `addr` falls inside the reserved extent.
    pub fn contains(&self, addr: Addr) -> bool {
        (self.start..self.reserved_end()).contains(&addr)
    }
}

impl fmt::Display for ObjectInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "object {} start {} end {} (with size {})",
            self.id,
            self.start,
            self.end(),
            self.size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> ObjectInfo {
        ObjectInfo {
            id: ObjectId(3),
            start: Addr(0x4000_0000),
            size: 4000,
            class_size: 4096,
            owner: ThreadId(0),
            callsite: CallStack::single("a.c", 10),
            live: true,
            relocated_from: None,
        }
    }

    #[test]
    fn extents() {
        let obj = info();
        assert_eq!(obj.end(), Addr(0x4000_0fa0));
        assert_eq!(obj.reserved_end(), Addr(0x4000_1000));
        assert!(obj.contains(Addr(0x4000_0000)));
        assert!(obj.contains(Addr(0x4000_0fff)));
        assert!(!obj.contains(Addr(0x4000_1000)));
        assert!(!obj.contains(Addr(0x3fff_ffff)));
    }

    #[test]
    fn display_includes_bounds() {
        let text = info().to_string();
        assert!(text.contains("O3"));
        assert!(text.contains("0x40000000"));
        assert!(text.contains("size 4000"));
    }
}
