//! Allocation callsites and call stacks.
//!
//! Cheetah reports the source line of the allocation site of every
//! falsely-shared heap object (e.g. `linear_regression-pthread.c: 139` in
//! Fig. 5 of the paper) and records up to five stack frames per allocation,
//! fetched via frame pointers for speed. Workloads in this reproduction
//! declare their callsites explicitly with [`CallStack::capture`].

use std::borrow::Cow;
use std::fmt;

/// Maximum frames recorded per allocation (the paper collects five function
/// entries "for performance reasons").
pub const MAX_FRAMES: usize = 5;

/// One source location.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Frame {
    file: Cow<'static, str>,
    line: u32,
}

impl Frame {
    /// Creates a frame from a file name and line number.
    pub fn new(file: impl Into<Cow<'static, str>>, line: u32) -> Self {
        Frame {
            file: file.into(),
            line,
        }
    }

    /// The file name.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// The line number.
    pub fn line(&self) -> u32 {
        self.line
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.file, self.line)
    }
}

/// A bounded allocation call stack, innermost frame first.
///
/// ```
/// use cheetah_heap::{CallStack, Frame};
/// let stack = CallStack::capture([
///     Frame::new("linear_regression-pthread.c", 139),
///     Frame::new("main.c", 88),
/// ]);
/// assert_eq!(stack.innermost().unwrap().line(), 139);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CallStack {
    frames: Vec<Frame>,
}

impl CallStack {
    /// An empty stack (allocation site unknown).
    pub fn unknown() -> Self {
        CallStack::default()
    }

    /// Builds a stack from at most [`MAX_FRAMES`] frames; extra frames are
    /// dropped from the outer end, like a frame-pointer walk that stops
    /// after five entries.
    pub fn capture(frames: impl IntoIterator<Item = Frame>) -> Self {
        CallStack {
            frames: frames.into_iter().take(MAX_FRAMES).collect(),
        }
    }

    /// Convenience constructor for a single-frame stack.
    pub fn single(file: impl Into<Cow<'static, str>>, line: u32) -> Self {
        CallStack {
            frames: vec![Frame::new(file, line)],
        }
    }

    /// The innermost (allocating) frame, if known.
    pub fn innermost(&self) -> Option<&Frame> {
        self.frames.first()
    }

    /// All recorded frames, innermost first.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Whether no frames were recorded.
    pub fn is_unknown(&self) -> bool {
        self.frames.is_empty()
    }
}

impl fmt::Display for CallStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.frames.is_empty() {
            return f.write_str("<unknown callsite>");
        }
        for (i, frame) in self.frames.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{frame}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_truncates_to_five_frames() {
        let stack = CallStack::capture((0..10).map(|i| Frame::new("f.c", i)));
        assert_eq!(stack.frames().len(), MAX_FRAMES);
        assert_eq!(stack.innermost().unwrap().line(), 0);
    }

    #[test]
    fn unknown_stack_displays_placeholder() {
        let stack = CallStack::unknown();
        assert!(stack.is_unknown());
        assert_eq!(stack.to_string(), "<unknown callsite>");
    }

    #[test]
    fn display_matches_paper_format() {
        let stack = CallStack::single("linear_regression-pthread.c", 139);
        assert_eq!(stack.to_string(), "linear_regression-pthread.c: 139");
    }

    #[test]
    fn multi_frame_display_one_per_line() {
        let stack = CallStack::capture([Frame::new("a.c", 1), Frame::new("b.c", 2)]);
        assert_eq!(stack.to_string(), "a.c: 1\nb.c: 2");
    }
}
