//! Unified address resolution: heap objects + global symbols.

use crate::arena::HeapModel;
use crate::globals::GlobalRegistry;
use crate::object::{ObjectId, ObjectInfo};
use cheetah_sim::layout::{classify, Segment};
use cheetah_sim::Addr;

/// What an address resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// Inside a tracked heap object.
    HeapObject(ObjectId),
    /// Inside a registered global; the payload is the index into
    /// [`GlobalRegistry::symbols`].
    Global(usize),
    /// In the heap or globals segment but not attributable to any tracked
    /// allocation (e.g. allocator metadata or alignment gaps).
    Unattributed(Segment),
    /// Outside the monitored segments; the profiler filters these.
    Unmonitored,
}

/// Facade combining the heap model and the global registry — the
/// "application address space" a profiler resolves sampled addresses
/// against.
///
/// ```
/// use cheetah_heap::{AddressSpace, CallStack, Location};
/// use cheetah_sim::ThreadId;
///
/// let mut space = AddressSpace::new();
/// let addr = space.heap_mut().alloc(ThreadId(0), 100, CallStack::unknown())?;
/// assert!(matches!(space.resolve(addr), Location::HeapObject(_)));
/// assert_eq!(space.resolve(cheetah_sim::Addr(0x10)), Location::Unmonitored);
/// # Ok::<(), cheetah_heap::HeapError>(())
/// ```
#[derive(Debug, Default)]
pub struct AddressSpace {
    heap: HeapModel,
    globals: GlobalRegistry,
}

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> Self {
        AddressSpace::default()
    }

    /// The heap model.
    pub fn heap(&self) -> &HeapModel {
        &self.heap
    }

    /// Mutable heap model (allocate / free).
    pub fn heap_mut(&mut self) -> &mut HeapModel {
        &mut self.heap
    }

    /// The global symbol registry.
    pub fn globals(&self) -> &GlobalRegistry {
        &self.globals
    }

    /// Mutable global registry (register symbols).
    pub fn globals_mut(&mut self) -> &mut GlobalRegistry {
        &mut self.globals
    }

    /// Resolves an address to a location.
    pub fn resolve(&self, addr: Addr) -> Location {
        match classify(addr) {
            Segment::Heap => match self.heap.object_at(addr) {
                Some(object) => Location::HeapObject(object.id),
                None => Location::Unattributed(Segment::Heap),
            },
            Segment::Globals => match self.globals.symbol_at(addr) {
                Some(symbol) => {
                    let index = self
                        .globals
                        .symbols()
                        .iter()
                        .position(|s| s.start == symbol.start)
                        .expect("symbol from registry");
                    Location::Global(index)
                }
                None => Location::Unattributed(Segment::Globals),
            },
            Segment::Other => Location::Unmonitored,
        }
    }

    /// Object metadata for a [`Location::HeapObject`] resolution.
    pub fn object(&self, id: ObjectId) -> &ObjectInfo {
        self.heap.object(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callsite::CallStack;
    use cheetah_sim::layout::HEAP_BASE;
    use cheetah_sim::ThreadId;

    #[test]
    fn resolves_all_location_kinds() {
        let mut space = AddressSpace::new();
        let heap_addr = space
            .heap_mut()
            .alloc(ThreadId(0), 64, CallStack::unknown())
            .unwrap();
        let global_addr = space.globals_mut().register("g", 16, 8).unwrap();

        assert!(matches!(space.resolve(heap_addr), Location::HeapObject(_)));
        assert!(matches!(space.resolve(global_addr), Location::Global(0)));
        assert_eq!(space.resolve(Addr(0x100)), Location::Unmonitored);
        // Heap segment but past any allocation.
        assert_eq!(
            space.resolve(Addr(HEAP_BASE.0 + 0x0800_0000)),
            Location::Unattributed(Segment::Heap)
        );
    }

    #[test]
    fn object_round_trip() {
        let mut space = AddressSpace::new();
        let addr = space
            .heap_mut()
            .alloc(ThreadId(2), 4000, CallStack::single("a.c", 9))
            .unwrap();
        if let Location::HeapObject(id) = space.resolve(addr.offset(100)) {
            let object = space.object(id);
            assert_eq!(object.owner, ThreadId(2));
            assert_eq!(object.size, 4000);
        } else {
            panic!("expected heap object");
        }
    }
}
