//! Shadow memory: O(1) per-cache-line metadata.
//!
//! Cheetah mmaps "two large arrays" covering the heap and computes a line's
//! metadata slot by bit-shifting the address (§2.2). [`ShadowMap`] is the
//! same idea over the simulated segments, with lazily allocated pages so an
//! almost-empty 1 GiB heap costs almost nothing.

use cheetah_sim::layout::{GLOBALS_BASE, GLOBALS_END, HEAP_BASE, HEAP_END};
use cheetah_sim::CacheLineId;

/// Cache lines per lazily-allocated page.
const PAGE_LINES: u64 = 4096;

#[derive(Debug)]
struct PageTable<T> {
    first_line: u64,
    pages: Vec<Option<Box<[T]>>>,
}

impl<T: Default + Clone> PageTable<T> {
    fn new(first_byte: u64, last_byte: u64, line_size: u64) -> Self {
        let first_line = first_byte / line_size;
        let lines = (last_byte - first_byte) / line_size;
        let pages = lines.div_ceil(PAGE_LINES) as usize;
        PageTable {
            first_line,
            pages: std::iter::repeat_with(|| None).take(pages).collect(),
        }
    }

    fn index(&self, line: CacheLineId) -> Option<(usize, usize)> {
        let offset = line.0.checked_sub(self.first_line)?;
        let page = (offset / PAGE_LINES) as usize;
        if page >= self.pages.len() {
            return None;
        }
        Some((page, (offset % PAGE_LINES) as usize))
    }

    fn get(&self, line: CacheLineId) -> Option<&T> {
        let (page, slot) = self.index(line)?;
        self.pages[page].as_ref().map(|p| &p[slot])
    }

    fn get_mut_or_default(&mut self, line: CacheLineId) -> Option<&mut T> {
        let (page, slot) = self.index(line)?;
        let page = self.pages[page]
            .get_or_insert_with(|| vec![T::default(); PAGE_LINES as usize].into_boxed_slice());
        Some(&mut page[slot])
    }

    fn iter(&self) -> impl Iterator<Item = (CacheLineId, &T)> {
        let first_line = self.first_line;
        self.pages.iter().enumerate().flat_map(move |(pi, page)| {
            page.iter().flat_map(move |p| {
                p.iter().enumerate().map(move |(si, value)| {
                    (
                        CacheLineId(first_line + pi as u64 * PAGE_LINES + si as u64),
                        value,
                    )
                })
            })
        })
    }
}

/// Per-cache-line shadow state covering the heap and globals segments.
///
/// Lines outside both segments (stack, kernel, libraries) have no slot:
/// lookups return `None`, which is precisely the "driver filters these out"
/// behaviour of the paper.
///
/// ```
/// use cheetah_heap::ShadowMap;
/// use cheetah_sim::{Addr, layout::HEAP_BASE};
///
/// let mut shadow: ShadowMap<u32> = ShadowMap::new(64);
/// let line = HEAP_BASE.line(64);
/// *shadow.get_mut_or_default(line).unwrap() += 1;
/// assert_eq!(shadow.get(line), Some(&1));
/// assert!(shadow.get(Addr(0x10).line(64)).is_none()); // unmapped segment
/// ```
#[derive(Debug)]
pub struct ShadowMap<T> {
    line_size: u64,
    heap: PageTable<T>,
    globals: PageTable<T>,
}

impl<T: Default + Clone> ShadowMap<T> {
    /// Creates an empty shadow map for a machine with the given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    pub fn new(line_size: u64) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        ShadowMap {
            line_size,
            heap: PageTable::new(HEAP_BASE.0, HEAP_END.0, line_size),
            globals: PageTable::new(GLOBALS_BASE.0, GLOBALS_END.0, line_size),
        }
    }

    /// The line size this map was built for.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    fn table_for(&self, line: CacheLineId) -> &PageTable<T> {
        if line.0 >= HEAP_BASE.0 / self.line_size {
            &self.heap
        } else {
            &self.globals
        }
    }

    /// Shared access to a line's slot; `None` if the line is outside the
    /// tracked segments or its page was never touched.
    pub fn get(&self, line: CacheLineId) -> Option<&T> {
        self.table_for(line).get(line)
    }

    /// Mutable access to a line's slot, allocating its page on first touch;
    /// `None` if the line is outside the tracked segments.
    pub fn get_mut_or_default(&mut self, line: CacheLineId) -> Option<&mut T> {
        if line.0 >= HEAP_BASE.0 / self.line_size {
            self.heap.get_mut_or_default(line)
        } else {
            self.globals.get_mut_or_default(line)
        }
    }

    /// Iterates over every slot in touched pages (heap then globals).
    pub fn iter_touched(&self) -> impl Iterator<Item = (CacheLineId, &T)> {
        self.globals.iter().chain(self.heap.iter())
    }

    /// Approximate bytes of shadow state currently allocated.
    pub fn shadow_bytes(&self) -> usize {
        let per_page = PAGE_LINES as usize * std::mem::size_of::<T>();
        let pages = self.heap.pages.iter().filter(|p| p.is_some()).count()
            + self.globals.pages.iter().filter(|p| p.is_some()).count();
        pages * per_page
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_sim::Addr;

    #[test]
    fn heap_and_globals_lines_tracked() {
        let mut shadow: ShadowMap<u64> = ShadowMap::new(64);
        let heap_line = HEAP_BASE.line(64);
        let global_line = GLOBALS_BASE.line(64);
        *shadow.get_mut_or_default(heap_line).unwrap() = 7;
        *shadow.get_mut_or_default(global_line).unwrap() = 9;
        assert_eq!(shadow.get(heap_line), Some(&7));
        assert_eq!(shadow.get(global_line), Some(&9));
    }

    #[test]
    fn unmapped_lines_rejected() {
        let mut shadow: ShadowMap<u64> = ShadowMap::new(64);
        assert!(shadow.get_mut_or_default(Addr(0).line(64)).is_none());
        assert!(shadow
            .get_mut_or_default(Addr(HEAP_END.0).line(64))
            .is_none());
        assert!(shadow.get(Addr(0x2100_0000).line(64)).is_none());
    }

    #[test]
    fn untouched_page_reads_none_without_allocating() {
        let shadow: ShadowMap<u32> = ShadowMap::new(64);
        assert!(shadow.get(HEAP_BASE.line(64)).is_none());
        assert_eq!(shadow.shadow_bytes(), 0);
    }

    #[test]
    fn lazy_pages_grow_on_touch() {
        let mut shadow: ShadowMap<u32> = ShadowMap::new(64);
        shadow.get_mut_or_default(HEAP_BASE.line(64)).unwrap();
        let one_page = shadow.shadow_bytes();
        assert!(one_page > 0);
        // A nearby line lands in the same page.
        shadow
            .get_mut_or_default(Addr(HEAP_BASE.0 + 64).line(64))
            .unwrap();
        assert_eq!(shadow.shadow_bytes(), one_page);
        // A distant line allocates another page.
        shadow
            .get_mut_or_default(Addr(HEAP_BASE.0 + 64 * PAGE_LINES * 3).line(64))
            .unwrap();
        assert_eq!(shadow.shadow_bytes(), 2 * one_page);
    }

    #[test]
    fn iter_touched_yields_written_slots() {
        let mut shadow: ShadowMap<u32> = ShadowMap::new(64);
        let line = Addr(HEAP_BASE.0 + 640).line(64);
        *shadow.get_mut_or_default(line).unwrap() = 42;
        let found: Vec<_> = shadow
            .iter_touched()
            .filter(|(_, v)| **v == 42)
            .map(|(l, _)| l)
            .collect();
        assert_eq!(found, vec![line]);
    }

    #[test]
    fn works_with_other_line_sizes() {
        let mut shadow: ShadowMap<u8> = ShadowMap::new(32);
        let line = HEAP_BASE.line(32);
        *shadow.get_mut_or_default(line).unwrap() = 1;
        assert_eq!(shadow.get(line), Some(&1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _: ShadowMap<u8> = ShadowMap::new(48);
    }
}
