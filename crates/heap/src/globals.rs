//! Global-variable symbol registry.
//!
//! For falsely-shared globals, Cheetah reports names and addresses "by
//! searching through the symbol table in the binary executable". Simulated
//! programs have no ELF symtab, so workloads register their globals here;
//! the registry then plays the symbol table's role for the report module.

use cheetah_sim::layout::{GLOBALS_BASE, GLOBALS_END};
use cheetah_sim::Addr;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A registered global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSymbol {
    /// Symbol name as it would appear in the binary's symbol table.
    pub name: String,
    /// First byte.
    pub start: Addr,
    /// Size in bytes.
    pub size: u64,
}

impl GlobalSymbol {
    /// One past the last byte.
    pub fn end(&self) -> Addr {
        Addr(self.start.0 + self.size)
    }

    /// Whether `addr` falls inside the symbol.
    pub fn contains(&self, addr: Addr) -> bool {
        (self.start..self.end()).contains(&addr)
    }
}

impl fmt::Display for GlobalSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {} (size {})", self.name, self.start, self.size)
    }
}

/// Error returned by [`GlobalRegistry::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalsError {
    /// Zero-sized symbol.
    ZeroSize,
    /// The globals segment is exhausted.
    SegmentFull,
}

impl fmt::Display for GlobalsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalsError::ZeroSize => f.write_str("zero-sized global"),
            GlobalsError::SegmentFull => f.write_str("globals segment exhausted"),
        }
    }
}

impl Error for GlobalsError {}

/// The simulated binary's symbol table for globals.
///
/// ```
/// use cheetah_heap::GlobalRegistry;
/// let mut globals = GlobalRegistry::new();
/// let array = globals.register("array", 4096, 64)?;
/// let symbol = globals.symbol_at(array.offset(100)).unwrap();
/// assert_eq!(symbol.name, "array");
/// # Ok::<(), cheetah_heap::GlobalsError>(())
/// ```
#[derive(Debug)]
pub struct GlobalRegistry {
    cursor: u64,
    by_addr: BTreeMap<u64, usize>,
    symbols: Vec<GlobalSymbol>,
}

impl Default for GlobalRegistry {
    fn default() -> Self {
        GlobalRegistry::new()
    }
}

impl GlobalRegistry {
    /// An empty registry over the conventional globals segment.
    pub fn new() -> Self {
        GlobalRegistry {
            cursor: GLOBALS_BASE.0,
            by_addr: BTreeMap::new(),
            symbols: Vec::new(),
        }
    }

    /// Registers a global of `size` bytes with the given alignment and
    /// returns its address.
    ///
    /// # Errors
    ///
    /// [`GlobalsError::ZeroSize`] for empty symbols,
    /// [`GlobalsError::SegmentFull`] when the segment is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        size: u64,
        align: u64,
    ) -> Result<Addr, GlobalsError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        if size == 0 {
            return Err(GlobalsError::ZeroSize);
        }
        let start = (self.cursor + align - 1) & !(align - 1);
        if start + size > GLOBALS_END.0 {
            return Err(GlobalsError::SegmentFull);
        }
        self.cursor = start + size;
        self.by_addr.insert(start, self.symbols.len());
        self.symbols.push(GlobalSymbol {
            name: name.into(),
            start: Addr(start),
            size,
        });
        Ok(Addr(start))
    }

    /// The symbol containing `addr`, if any.
    pub fn symbol_at(&self, addr: Addr) -> Option<&GlobalSymbol> {
        let (_, &index) = self.by_addr.range(..=addr.0).next_back()?;
        let symbol = &self.symbols[index];
        symbol.contains(addr).then_some(symbol)
    }

    /// All registered symbols in registration order.
    pub fn symbols(&self) -> &[GlobalSymbol] {
        &self.symbols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_resolve() {
        let mut globals = GlobalRegistry::new();
        let a = globals.register("counter", 8, 8).unwrap();
        let b = globals.register("buffer", 256, 64).unwrap();
        assert_eq!(globals.symbol_at(a).unwrap().name, "counter");
        assert_eq!(globals.symbol_at(b.offset(255)).unwrap().name, "buffer");
        assert!(globals.symbol_at(b.offset(256)).is_none());
        assert!(globals.symbol_at(Addr(GLOBALS_BASE.0 - 1)).is_none());
    }

    #[test]
    fn alignment_respected() {
        let mut globals = GlobalRegistry::new();
        globals.register("pad", 3, 1).unwrap();
        let aligned = globals.register("aligned", 64, 64).unwrap();
        assert_eq!(aligned.0 % 64, 0);
    }

    #[test]
    fn zero_size_rejected() {
        let mut globals = GlobalRegistry::new();
        assert_eq!(globals.register("x", 0, 1), Err(GlobalsError::ZeroSize));
    }

    #[test]
    fn gap_between_symbols_unattributed() {
        let mut globals = GlobalRegistry::new();
        globals.register("a", 10, 1).unwrap();
        let b = globals.register("b", 10, 64).unwrap();
        // The alignment gap between a's end and b's start belongs to nobody.
        assert!(globals.symbol_at(Addr(b.0 - 1)).is_none());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        let mut globals = GlobalRegistry::new();
        let _ = globals.register("x", 8, 3);
    }
}
