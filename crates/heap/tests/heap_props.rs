//! Property tests of the Hoard-style heap model and shadow memory.

use cheetah_heap::{AddressSpace, CallStack, HeapModel, Location, ShadowMap};
use cheetah_sim::layout::{HEAP_BASE, HEAP_END};
use cheetah_sim::{Addr, ThreadId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alloc_free_alloc_reuses_without_corruption(
        script in proptest::collection::vec((0u32..4, 1u64..2048, proptest::bool::ANY), 1..80)
    ) {
        let mut heap = HeapModel::new();
        let mut live: Vec<Addr> = Vec::new();
        for (thread, size, free_one) in script {
            if free_one && !live.is_empty() {
                let addr = live.swap_remove(0);
                heap.free(addr).unwrap();
                // Double free must fail.
                prop_assert!(heap.free(addr).is_err());
            } else {
                let addr = heap.alloc(ThreadId(thread), size, CallStack::unknown()).unwrap();
                prop_assert!(addr >= HEAP_BASE && addr < HEAP_END);
                prop_assert!(!live.contains(&addr), "live object returned twice");
                live.push(addr);
            }
        }
        // Every live object still resolves to itself.
        for addr in live {
            prop_assert_eq!(heap.object_at(addr).unwrap().start, addr);
        }
    }

    #[test]
    fn live_bytes_balance(
        sizes in proptest::collection::vec(1u64..4096, 1..50)
    ) {
        let mut heap = HeapModel::new();
        let mut addrs = Vec::new();
        for &size in &sizes {
            addrs.push(heap.alloc(ThreadId(0), size, CallStack::unknown()).unwrap());
        }
        let peak = heap.peak_live_bytes();
        prop_assert!(peak >= heap.live_bytes());
        for addr in addrs {
            heap.free(addr).unwrap();
        }
        prop_assert_eq!(heap.live_bytes(), 0);
        prop_assert_eq!(heap.peak_live_bytes(), peak, "peak is a high-water mark");
    }

    #[test]
    fn resolution_is_exclusive_and_total_over_objects(
        sizes in proptest::collection::vec(1u64..600, 1..30)
    ) {
        let mut space = AddressSpace::new();
        let mut starts = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let t = ThreadId((i % 3) as u32);
            starts.push((space.heap_mut().alloc(t, size, CallStack::unknown()).unwrap(), size));
        }
        for &(start, size) in &starts {
            for probe in [0, size - 1] {
                match space.resolve(start.offset(probe)) {
                    Location::HeapObject(id) => {
                        prop_assert_eq!(space.object(id).start, start);
                    }
                    other => prop_assert!(false, "expected heap object, got {:?}", other),
                }
            }
        }
    }

    #[test]
    fn shadow_iter_touched_finds_exactly_what_was_written(
        offsets in proptest::collection::vec(0u64..100_000, 1..60)
    ) {
        let mut shadow: ShadowMap<u32> = ShadowMap::new(64);
        let mut expected = std::collections::BTreeSet::new();
        for off in offsets {
            let line = Addr(HEAP_BASE.0 + off * 64).line(64);
            *shadow.get_mut_or_default(line).unwrap() = 1;
            expected.insert(line.0);
        }
        let found: std::collections::BTreeSet<u64> = shadow
            .iter_touched()
            .filter(|(_, v)| **v == 1)
            .map(|(l, _)| l.0)
            .collect();
        prop_assert_eq!(found, expected);
    }
}
