//! Property tests of the repair pipeline's safety contract:
//!
//! (a) a repaired program executes the same op count and phase graph as
//!     the original;
//! (b) pad/split plans leave no cache line written by two threads'
//!     disjoint word sets (the definition of false sharing);
//! (c) repaired runs are bit-identical across repeated `Machine::run`s.

use cheetah_core::{CheetahConfig, CheetahProfiler};
use cheetah_heap::{AddressSpace, CallStack};
use cheetah_repair::{repair_program, synthesize, RepairPlan};
use cheetah_sim::{
    AccessRecord, CacheLineId, CountingObserver, Cycles, ExecObserver, LoopStream, Machine,
    MachineConfig, NullObserver, Op, PhaseKind, Program, ProgramBuilder, ThreadId, ThreadSpec,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const LINE: u64 = 64;

/// A synthetic false-sharing app: one 64-byte object, each thread
/// hammering its own word. `word_slots[i]` is thread i's word index.
fn build(word_slots: &[u8], iterations: u64) -> (AddressSpace, Program) {
    let mut space = AddressSpace::new();
    let object = space
        .heap_mut()
        .alloc(ThreadId(0), 64, CallStack::single("prop.c", 9))
        .unwrap();
    let workers = word_slots
        .iter()
        .enumerate()
        .map(|(t, &slot)| {
            let addr = object.offset(u64::from(slot) * 4);
            ThreadSpec::new(
                format!("w{t}"),
                LoopStream::new(
                    vec![Op::Read(addr), Op::Write(addr), Op::Work(3)],
                    iterations,
                ),
            )
        })
        .collect();
    let program = ProgramBuilder::new("prop")
        .serial(ThreadSpec::new(
            "init",
            LoopStream::new(vec![Op::Write(object), Op::Work(20)], 200),
        ))
        .parallel(workers)
        .build();
    (space, program)
}

/// Profiles a build and synthesizes plans for its false-sharing instances.
fn plans_for(
    machine: &Machine,
    build_once: impl Fn() -> (AddressSpace, Program),
) -> Vec<RepairPlan> {
    let (space, program) = build_once();
    let mut profiler = CheetahProfiler::new(CheetahConfig::scaled(128), &space);
    machine.run(program, &mut profiler);
    let profile = profiler.finish();
    profile
        .false_sharing()
        .into_iter()
        .filter_map(|assessed| synthesize(&assessed.instance, LINE))
        .collect()
}

/// Observer recording, per (phase, cache line), which threads wrote which
/// word indices — the evidence for the no-false-sharing invariant.
#[derive(Default)]
struct WriterAudit {
    lines: BTreeMap<(u32, CacheLineId), BTreeMap<ThreadId, BTreeSet<usize>>>,
}

impl WriterAudit {
    /// Lines written by two threads whose word sets are disjoint — false
    /// sharing by definition.
    fn falsely_shared_lines(&self) -> usize {
        self.lines
            .values()
            .filter(|writers| {
                let threads: Vec<&BTreeSet<usize>> = writers.values().collect();
                threads.iter().enumerate().any(|(i, a)| {
                    threads[i + 1..]
                        .iter()
                        .any(|b| a.intersection(b).count() == 0)
                })
            })
            .count()
    }
}

impl ExecObserver for WriterAudit {
    fn on_access(&mut self, record: &AccessRecord) -> Cycles {
        if record.kind.is_write() && record.phase_kind == PhaseKind::Parallel {
            self.lines
                .entry((record.phase_index, record.addr.line(LINE)))
                .or_default()
                .entry(record.thread)
                .or_default()
                .insert(record.addr.word_in_line(LINE));
        }
        0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) Same op count and phase graph, broken vs. repaired.
    #[test]
    fn repair_preserves_op_count_and_phase_graph(
        slots in proptest::collection::vec(0u8..16, 2..5),
        iterations in 2_000u64..6_000,
    ) {
        let machine = Machine::new(MachineConfig::with_cores(8));
        let build_once = || build(&slots, iterations);
        let plans = plans_for(&machine, build_once);

        let (_, original_program) = build_once();
        let mut original_counts = CountingObserver::default();
        let original = machine.run(original_program, &mut original_counts);

        let (space, program) = build_once();
        let mut space = space;
        let (repaired_program, _) = repair_program(program, &plans, &mut space).unwrap();
        let mut repaired_counts = CountingObserver::default();
        let repaired = machine.run(repaired_program, &mut repaired_counts);

        prop_assert_eq!(original_counts.accesses, repaired_counts.accesses);
        prop_assert_eq!(original_counts.writes, repaired_counts.writes);
        prop_assert_eq!(original_counts.thread_starts, repaired_counts.thread_starts);
        prop_assert_eq!(original_counts.phase_starts, repaired_counts.phase_starts);
        prop_assert_eq!(original.phases.len(), repaired.phases.len());
        for (a, b) in original.phases.iter().zip(&repaired.phases) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(&a.threads, &b.threads);
        }
        for (a, b) in original.threads.iter().zip(&repaired.threads) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.instructions, b.instructions);
            prop_assert_eq!(a.reads, b.reads);
            prop_assert_eq!(a.writes, b.writes);
        }
    }

    /// (b) No falsely shared line survives a repair.
    #[test]
    fn repair_leaves_no_falsely_shared_lines(
        slots in proptest::collection::vec(0u8..16, 2..5),
        iterations in 2_000u64..6_000,
    ) {
        // Only meaningful when at least two threads hit distinct words of
        // one line (otherwise there is nothing to detect or repair).
        let distinct: BTreeSet<u8> = slots.iter().copied().collect();
        prop_assume!(distinct.len() >= 2);

        let machine = Machine::new(MachineConfig::with_cores(8));
        let build_once = || build(&slots, iterations);
        let plans = plans_for(&machine, build_once);
        prop_assume!(!plans.is_empty());

        let (_, broken_program) = build_once();
        let mut broken_audit = WriterAudit::default();
        machine.run(broken_program, &mut broken_audit);
        prop_assert!(
            broken_audit.falsely_shared_lines() > 0,
            "the broken build must exhibit false sharing"
        );

        let (space, program) = build_once();
        let mut space = space;
        let (repaired_program, _) = repair_program(program, &plans, &mut space).unwrap();
        let mut repaired_audit = WriterAudit::default();
        machine.run(repaired_program, &mut repaired_audit);
        prop_assert_eq!(
            repaired_audit.falsely_shared_lines(),
            0,
            "repair must eliminate every falsely shared line"
        );
    }

    /// (c) Repaired runs are bit-identical across repeated runs.
    #[test]
    fn repaired_runs_are_deterministic(
        slots in proptest::collection::vec(0u8..16, 2..5),
        iterations in 2_000u64..6_000,
    ) {
        let machine = Machine::new(MachineConfig::with_cores(8));
        let build_once = || build(&slots, iterations);
        let plans = plans_for(&machine, build_once);

        let run = || {
            let (space, program) = build_once();
            let mut space = space;
            let (repaired_program, _) =
                repair_program(program, &plans, &mut space).unwrap();
            machine.run(repaired_program, &mut NullObserver)
        };
        prop_assert_eq!(run(), run());
    }
}

/// The plan-level counterpart of invariant (b): translated words of
/// different clusters never share a cache line (checked without running).
#[test]
fn split_plan_translation_separates_clusters() {
    let machine = Machine::new(MachineConfig::with_cores(8));
    let slots = [0u8, 1, 2, 3];
    let build_once = || build(&slots, 4_000);
    let plans = plans_for(&machine, build_once);
    assert_eq!(plans.len(), 1);
    let plan = &plans[0];

    let (space, _program) = build_once();
    let mut space = space;
    let map = cheetah_repair::apply(plan, &mut space).unwrap();
    let mut line_of_cluster: BTreeMap<CacheLineId, usize> = BTreeMap::new();
    for (index, cluster) in plan.clusters.iter().enumerate() {
        for &offset in &cluster.word_offsets {
            let translated = map.translate(plan.object_start.offset(offset));
            let line = translated.line(LINE);
            if let Some(&other) = line_of_cluster.get(&line) {
                assert_eq!(other, index, "clusters {other} and {index} share {line}");
            }
            line_of_cluster.insert(line, index);
        }
    }
}
