//! Schedule-space exploration end to end: the `staggered_writers` app
//! carries false sharing the observed schedule hides; exploration must
//! find it, rank its fix by worst-case payoff, and converge to zero
//! significant residue on *every* explored schedule. Plus the union's
//! monotonicity over real profiles.

use cheetah_core::{union_findings, CheetahConfig, CheetahProfiler, Profile};
use cheetah_repair::{converge_worst_case, schedule_set, ConvergeConfig, ValidationHarness};
use cheetah_sim::{Machine, MachineConfig, SchedulePolicy};
use cheetah_workloads::{find, AppConfig};

fn app_config(threads: u32) -> AppConfig {
    AppConfig {
        threads,
        scale: 0.05,
        fixed: false,
        seed: 1,
    }
}

fn harness() -> ValidationHarness {
    ValidationHarness::calibrated(
        Machine::new(MachineConfig::with_cores(8)),
        CheetahConfig::scaled(256),
    )
}

fn profile_under(app: &cheetah_workloads::App, threads: u32, policy: SchedulePolicy) -> Profile {
    let harness = harness();
    let machine = Machine::new(harness.machine().config().clone().with_schedule(policy));
    let instance = app.build(&app_config(threads));
    let mut profiler = CheetahProfiler::new(harness.non_perturbing_config(), &instance.space);
    machine.run(instance.program, &mut profiler);
    profiler.finish()
}

/// The acceptance witness, first half: the observed schedule reports no
/// significant false sharing on `staggered_writers`, a perturbed one does.
#[test]
fn observed_profile_misses_what_perturbed_finds() {
    let app = find("staggered_writers").unwrap();
    let observed = profile_under(app, 4, SchedulePolicy::Observed);
    assert!(
        observed.significant_false_sharing(1.005).is_empty(),
        "the observed schedule must miss the staggered instance:\n{}",
        observed.render_report()
    );
    let shuffled = profile_under(app, 4, SchedulePolicy::SeededShuffle { seed: 1 });
    assert!(
        !shuffled.significant_false_sharing(1.005).is_empty(),
        "the shuffle must expose it:\n{}",
        shuffled.render_report()
    );
}

/// The acceptance witness, second half: worst-case exploration finds the
/// hidden instance and its repair converges to zero residual on every
/// explored schedule.
#[test]
fn hidden_instance_repair_converges_on_every_schedule() {
    let app = find("staggered_writers").unwrap();
    let schedules = schedule_set(&[1, 2]);
    let trace = converge_worst_case(
        &harness(),
        "staggered_writers",
        || app.build(&app_config(4)),
        &ConvergeConfig::default(),
        &schedules,
    )
    .unwrap();
    assert!(trace.initial_findings >= 1, "{trace}");
    assert!(
        trace.initial_hidden >= 1,
        "the staggered instance must be hidden from the observed schedule: {trace}"
    );
    assert!(!trace.iterations.is_empty(), "{trace}");
    assert!(trace.iterations[0].hidden, "{trace}");
    assert!(
        trace.converged,
        "repair must converge on every schedule: {trace}"
    );
    assert_eq!(trace.total_residual(), 0, "{trace}");
    assert_eq!(trace.residual_per_schedule.len(), schedules.len());
    assert!(trace.render().contains("hidden from observed"), "{trace}");
}

/// Workloads the observed schedule already diagnoses correctly keep their
/// verdict under exploration, and repair still converges.
#[test]
fn visible_instance_still_converges_under_exploration() {
    let app = find("microbench").unwrap();
    let trace = converge_worst_case(
        &harness(),
        "microbench",
        || app.build(&app_config(8)),
        &ConvergeConfig::default(),
        &schedule_set(&[1]),
    )
    .unwrap();
    assert!(trace.initial_findings >= 1, "{trace}");
    assert_eq!(
        trace.initial_hidden, 0,
        "microbench is visible to the observed schedule: {trace}"
    );
    assert!(trace.converged, "{trace}");
    assert_eq!(trace.total_residual(), 0, "{trace}");
}

/// Union-of-findings monotonicity over *real* profiles: growing the
/// explored seed set never loses a finding, never drops a sighting, and
/// never lowers a worst-case payoff.
#[test]
fn union_monotone_in_seed_set_on_real_profiles() {
    let app = find("staggered_writers").unwrap();
    let pool: Vec<(SchedulePolicy, Profile)> = std::iter::once(SchedulePolicy::Observed)
        .chain((1..=3u64).map(|seed| SchedulePolicy::SeededShuffle { seed }))
        .map(|policy| (policy, profile_under(app, 4, policy)))
        .collect();
    for split in 0..pool.len() {
        let smaller = union_findings(&pool[..split], 1.005);
        let larger = union_findings(&pool[..=split], 1.005);
        assert!(larger.len() >= smaller.len());
        for finding in &smaller {
            let grown = larger
                .iter()
                .find(|f| f.key == finding.key)
                .expect("findings never disappear as schedules are added");
            assert!(grown.sightings.len() >= finding.sightings.len());
            assert!(grown.worst_improvement() >= finding.worst_improvement());
        }
    }
}
