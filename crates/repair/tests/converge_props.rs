//! Properties of the fixpoint repair loop:
//!
//! (a) `converge` terminates within its iteration bound for arbitrary
//!     workload configurations;
//! (b) it is deterministic — bit-identical iteration traces across runs;
//! (c) the inter-object workload (two small objects per cache line)
//!     reaches zero residual instances through the pad-to-line path;
//! (d) under the line-level assessment the inter-object convergence trace
//!     predicts the joint payoff of each cross-object repair — the
//!     regression pinned by `inter_object_trace_predicts_joint_payoff`.

use cheetah_core::{AssessModel, CheetahConfig};
use cheetah_repair::{
    converge, ConvergeConfig, ConvergenceTrace, RepairStrategy, ValidationHarness,
};
use cheetah_sim::{Machine, MachineConfig};
use cheetah_workloads::{find, AppConfig};
use proptest::prelude::*;

fn harness(cores: u32, period: u64) -> ValidationHarness {
    ValidationHarness::calibrated(
        Machine::new(MachineConfig::with_cores(cores)),
        CheetahConfig::scaled(period),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (a) + (b): the loop terminates within the bound and the trace is
    /// bit-identical across runs, for arbitrary thread counts, scales and
    /// iteration bounds on the inter-object workload (the one that takes
    /// several iterations to converge).
    #[test]
    fn converge_is_bounded_and_deterministic(
        threads in 2u32..9,
        scale_milli in 40u64..120,
        max_iterations in 1u32..6,
    ) {
        let app = find("inter_object").unwrap();
        let config = AppConfig {
            threads,
            scale: scale_milli as f64 / 1000.0,
            fixed: false,
            seed: 1,
        };
        let cfg = ConvergeConfig {
            max_iterations,
            min_predicted_improvement: 0.0,
        };
        let run = || {
            converge(
                &harness(16, 64),
                "inter_object",
                || app.build(&config),
                &cfg,
            )
            .expect("plans apply")
        };
        let first = run();
        prop_assert!(first.iterations.len() as u32 <= max_iterations);
        // Stopping because the bound was hit must be reported as such.
        prop_assert!(first.converged || first.iterations.len() as u32 == max_iterations
            || first.residual_significant > 0);
        let second = run();
        prop_assert_eq!(first, second, "traces must be bit-identical");
    }
}

/// (c): the ROADMAP's inter-object case end to end — every fix the loop
/// applies is a pad-to-line relocation, and the loop reaches zero residual
/// significant instances within the bound.
#[test]
fn inter_object_pads_to_zero_residual() {
    let app = find("inter_object").unwrap();
    let config = AppConfig {
        threads: 8,
        scale: 0.1,
        fixed: false,
        seed: 1,
    };
    let trace = converge(
        &harness(16, 64),
        "inter_object",
        || app.build(&config),
        &ConvergeConfig::exhaustive(16),
    )
    .expect("plans apply");
    assert!(trace.converged, "{trace}");
    assert_eq!(trace.residual_significant, 0);
    assert!(
        !trace.iterations.is_empty(),
        "the broken build must need repair"
    );
    for it in &trace.iterations {
        assert_eq!(
            it.strategy,
            RepairStrategy::PadToLine,
            "single-owner objects must take the pad path: {trace}"
        );
        assert!(it.label.starts_with("inter_object.c:"), "{}", it.label);
    }
    assert_eq!(trace.iterations.last().unwrap().significant_after, 0);
    assert!(
        trace.total_improvement() > 2.0,
        "padding away the shared lines must pay off: {trace}"
    );
}

/// (d) Regression for the flat ~1.0x-per-step bug (ROADMAP "Cross-object
/// assessment"): under the default line-level model the `inter_object`
/// convergence trace predicts the *joint* payoff of padding one
/// co-resident — the first iteration's prediction is strictly above 1.0
/// and every iteration (including the final one, where the whole payoff
/// lands) is within 20% of measured. The per-object reference model on
/// the identical workload still predicts ~1.0x for the very fix that
/// measures >10x — the bug this PR kills, kept observable via
/// [`AssessModel::PerObject`].
#[test]
fn inter_object_trace_predicts_joint_payoff() {
    let app = find("inter_object").unwrap();
    let config = AppConfig {
        threads: 8,
        scale: 0.1,
        fixed: false,
        seed: 1,
    };
    let trace_with = |model: AssessModel| -> ConvergenceTrace {
        let harness = ValidationHarness::calibrated(
            Machine::new(MachineConfig::with_cores(48)),
            CheetahConfig::scaled(64).with_assess_model(model),
        );
        converge(
            &harness,
            "inter_object",
            || app.build(&config),
            &ConvergeConfig::exhaustive(16),
        )
        .expect("plans apply")
    };

    let line = trace_with(AssessModel::LineLevel);
    assert!(line.converged && line.residual_significant == 0, "{line}");
    assert!(!line.iterations.is_empty());
    let first = &line.iterations[0];
    assert!(
        first.predicted > 1.0,
        "first-step prediction must be strictly above 1.0, got {:.6}",
        first.predicted
    );
    assert_eq!(first.co_residents, 2, "inter-object lines pack two objects");
    for it in &line.iterations {
        assert!(
            it.relative_error() < 0.20,
            "iteration {} predicted {:.4}x vs measured {:.4}x ({:.1}% off): {line}",
            it.iteration,
            it.predicted,
            it.measured,
            it.relative_error() * 100.0
        );
    }
    let last = line.iterations.last().unwrap();
    assert!(
        last.predicted > 2.0 && last.measured > 2.0,
        "the final fix carries the joint payoff: {line}"
    );

    // The per-object reference model converges through the same fixes but
    // flat-lines the predictions: its final step predicts ~1.0x against a
    // measured >2x.
    let per_object = trace_with(AssessModel::PerObject);
    assert_eq!(per_object.iterations.len(), line.iterations.len());
    let last_obj = per_object.iterations.last().unwrap();
    assert!(
        last_obj.predicted < 1.05 && last_obj.measured > 2.0,
        "per-object model must still show the flat-prediction bug: {per_object}"
    );
    assert!(last_obj.relative_error() > 0.5);
}

/// Iteration records chain: each step's `cycles_after` is the next step's
/// `cycles_before`, and the ends match the trace's totals.
#[test]
fn iteration_records_chain() {
    let app = find("inter_object").unwrap();
    let config = AppConfig {
        threads: 4,
        scale: 0.08,
        fixed: false,
        seed: 1,
    };
    let trace = converge(
        &harness(16, 64),
        "inter_object",
        || app.build(&config),
        &ConvergeConfig::exhaustive(8),
    )
    .unwrap();
    assert!(!trace.iterations.is_empty());
    assert_eq!(trace.iterations[0].cycles_before, trace.initial_cycles);
    for pair in trace.iterations.windows(2) {
        assert_eq!(pair[0].cycles_after, pair[1].cycles_before);
        assert_eq!(pair[0].iteration + 1, pair[1].iteration);
    }
    assert_eq!(
        trace.iterations.last().unwrap().cycles_after,
        trace.final_cycles
    );
}

/// Sharded simulator execution must not change convergence at all: the
/// full profile → fix → re-profile loop produces a bit-identical trace
/// whether the machine interleaves threads classically (`shards = 1`) or
/// merges sharded event streams (`shards = 4`).
#[test]
fn converge_identical_under_sharded_execution() {
    let app = find("linear_regression").unwrap();
    let config = AppConfig {
        threads: 4,
        scale: 0.05,
        fixed: false,
        seed: 1,
    };
    let trace_at = |shards: u32| {
        let harness = ValidationHarness::calibrated(
            Machine::new(MachineConfig::with_cores(16).with_shards(shards)),
            CheetahConfig::scaled(96),
        );
        converge(
            &harness,
            "linear_regression",
            || app.build(&config),
            &ConvergeConfig::default(),
        )
        .expect("plans apply")
    };
    let classic = trace_at(1);
    let sharded = trace_at(4);
    assert_eq!(classic.iterations, sharded.iterations);
    assert_eq!(classic.initial_cycles, sharded.initial_cycles);
    assert_eq!(classic.final_cycles, sharded.final_cycles);
    assert_eq!(classic.initial_samples, sharded.initial_samples);
    assert_eq!(classic.converged, sharded.converged);
}
