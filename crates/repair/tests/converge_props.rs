//! Properties of the fixpoint repair loop:
//!
//! (a) `converge` terminates within its iteration bound for arbitrary
//!     workload configurations;
//! (b) it is deterministic — bit-identical iteration traces across runs;
//! (c) the inter-object workload (two small objects per cache line)
//!     reaches zero residual instances through the pad-to-line path.

use cheetah_core::CheetahConfig;
use cheetah_repair::{converge, ConvergeConfig, RepairStrategy, ValidationHarness};
use cheetah_sim::{Machine, MachineConfig};
use cheetah_workloads::{find, AppConfig};
use proptest::prelude::*;

fn harness(cores: u32, period: u64) -> ValidationHarness {
    ValidationHarness::calibrated(
        Machine::new(MachineConfig::with_cores(cores)),
        CheetahConfig::scaled(period),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (a) + (b): the loop terminates within the bound and the trace is
    /// bit-identical across runs, for arbitrary thread counts, scales and
    /// iteration bounds on the inter-object workload (the one that takes
    /// several iterations to converge).
    #[test]
    fn converge_is_bounded_and_deterministic(
        threads in 2u32..9,
        scale_milli in 40u64..120,
        max_iterations in 1u32..6,
    ) {
        let app = find("inter_object").unwrap();
        let config = AppConfig {
            threads,
            scale: scale_milli as f64 / 1000.0,
            fixed: false,
            seed: 1,
        };
        let cfg = ConvergeConfig {
            max_iterations,
            min_predicted_improvement: 0.0,
        };
        let run = || {
            converge(
                &harness(16, 64),
                "inter_object",
                || app.build(&config),
                &cfg,
            )
            .expect("plans apply")
        };
        let first = run();
        prop_assert!(first.iterations.len() as u32 <= max_iterations);
        // Stopping because the bound was hit must be reported as such.
        prop_assert!(first.converged || first.iterations.len() as u32 == max_iterations
            || first.residual_significant > 0);
        let second = run();
        prop_assert_eq!(first, second, "traces must be bit-identical");
    }
}

/// (c): the ROADMAP's inter-object case end to end — every fix the loop
/// applies is a pad-to-line relocation, and the loop reaches zero residual
/// significant instances within the bound.
#[test]
fn inter_object_pads_to_zero_residual() {
    let app = find("inter_object").unwrap();
    let config = AppConfig {
        threads: 8,
        scale: 0.1,
        fixed: false,
        seed: 1,
    };
    let trace = converge(
        &harness(16, 64),
        "inter_object",
        || app.build(&config),
        &ConvergeConfig::exhaustive(16),
    )
    .expect("plans apply");
    assert!(trace.converged, "{trace}");
    assert_eq!(trace.residual_significant, 0);
    assert!(
        !trace.iterations.is_empty(),
        "the broken build must need repair"
    );
    for it in &trace.iterations {
        assert_eq!(
            it.strategy,
            RepairStrategy::PadToLine,
            "single-owner objects must take the pad path: {trace}"
        );
        assert!(it.label.starts_with("inter_object.c:"), "{}", it.label);
    }
    assert_eq!(trace.iterations.last().unwrap().significant_after, 0);
    assert!(
        trace.total_improvement() > 2.0,
        "padding away the shared lines must pay off: {trace}"
    );
}

/// Iteration records chain: each step's `cycles_after` is the next step's
/// `cycles_before`, and the ends match the trace's totals.
#[test]
fn iteration_records_chain() {
    let app = find("inter_object").unwrap();
    let config = AppConfig {
        threads: 4,
        scale: 0.08,
        fixed: false,
        seed: 1,
    };
    let trace = converge(
        &harness(16, 64),
        "inter_object",
        || app.build(&config),
        &ConvergeConfig::exhaustive(8),
    )
    .unwrap();
    assert!(!trace.iterations.is_empty());
    assert_eq!(trace.iterations[0].cycles_before, trace.initial_cycles);
    for pair in trace.iterations.windows(2) {
        assert_eq!(pair[0].cycles_after, pair[1].cycles_before);
        assert_eq!(pair[0].iteration + 1, pair[1].iteration);
    }
    assert_eq!(
        trace.iterations.last().unwrap().cycles_after,
        trace.final_cycles
    );
}

/// Sharded simulator execution must not change convergence at all: the
/// full profile → fix → re-profile loop produces a bit-identical trace
/// whether the machine interleaves threads classically (`shards = 1`) or
/// merges sharded event streams (`shards = 4`).
#[test]
fn converge_identical_under_sharded_execution() {
    let app = find("linear_regression").unwrap();
    let config = AppConfig {
        threads: 4,
        scale: 0.05,
        fixed: false,
        seed: 1,
    };
    let trace_at = |shards: u32| {
        let harness = ValidationHarness::calibrated(
            Machine::new(MachineConfig::with_cores(16).with_shards(shards)),
            CheetahConfig::scaled(96),
        );
        converge(
            &harness,
            "linear_regression",
            || app.build(&config),
            &ConvergeConfig::default(),
        )
        .expect("plans apply")
    };
    let classic = trace_at(1);
    let sharded = trace_at(4);
    assert_eq!(classic.iterations, sharded.iterations);
    assert_eq!(classic.initial_cycles, sharded.initial_cycles);
    assert_eq!(classic.final_cycles, sharded.final_cycles);
    assert_eq!(classic.initial_samples, sharded.initial_samples);
    assert_eq!(classic.converged, sharded.converged);
}
