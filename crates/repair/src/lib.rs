//! # cheetah-repair — automated fix synthesis and prediction validation
//!
//! Cheetah's headline claim (§3 of the paper) is that it can predict the
//! payoff of fixing a false-sharing instance *without fixing it*, with
//! under 10% average error. `cheetah-core` reproduces the prediction; this
//! crate closes the loop by **actually fixing** the instances and
//! measuring how right the prediction was:
//!
//! 1. **Synthesis** ([`plan`]): each detected [`SharingInstance`] is
//!    turned into a [`RepairPlan`] — pad-to-line, align-to-line, or a
//!    per-thread split — chosen from the instance's per-thread word map,
//!    the same evidence a programmer would read off the paper's Fig. 5
//!    report before editing the source.
//! 2. **Rewrite** ([`rewrite`]): the plan allocates padded, line-aligned
//!    target storage from the workload's own heap and becomes a
//!    [`cheetah_sim::LayoutMap`]; [`cheetah_sim::Program::with_layout`]
//!    then redirects the program's memory accesses through it. Op streams,
//!    op counts and the fork-join phase structure are preserved exactly —
//!    the repaired program is the same program with a better data layout.
//! 3. **Validation** ([`validate`]): the [`ValidationHarness`] runs broken
//!    and repaired builds on the same deterministic machine and emits a
//!    per-instance *predicted vs. actual* table (the paper's Table 2
//!    shape) through [`cheetah_core::format_prediction_table`].
//! 4. **Convergence** ([`converge()`]): the fixpoint loop a programmer would
//!    run by hand — profile, apply the top-ranked fix, re-profile the
//!    repaired program, repeat until no significant instance remains (or a
//!    bound is hit) — returning a per-iteration trace of predicted vs.
//!    measured improvement and residual instances.
//! 5. **Worst-case exploration** ([`worst_case`]): the same loop judged
//!    over a *set* of perturbed schedules
//!    ([`cheetah_sim::SchedulePolicy`]): findings are united across
//!    interleavings, plans are ranked by worst-case payoff, and
//!    convergence requires every explored schedule to come back clean —
//!    catching instances the observed schedule hides.
//!
//! ## Example: validating the Fig. 1 microbenchmark
//!
//! ```
//! use cheetah_core::CheetahConfig;
//! use cheetah_repair::ValidationHarness;
//! use cheetah_sim::{Machine, MachineConfig};
//! use cheetah_workloads::{find, AppConfig};
//!
//! let app = find("microbench").unwrap();
//! let config = AppConfig::with_threads(8).scaled(0.05);
//! let harness = ValidationHarness::new(
//!     Machine::new(MachineConfig::with_cores(8)),
//!     CheetahConfig::scaled(256),
//! );
//! let outcome = harness.validate("microbench", || app.build(&config)).unwrap();
//! assert_eq!(outcome.instances.len(), 1, "the one array instance");
//! assert!(outcome.instances[0].actual > 2.0, "repair must really help");
//! println!("{}", outcome.render_table());
//! ```
//!
//! [`SharingInstance`]: cheetah_core::SharingInstance

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod converge;
pub mod plan;
pub mod rewrite;
pub mod validate;
pub mod worst_case;

pub use converge::{converge, ConvergeConfig, ConvergenceTrace, IterationRecord};
pub use plan::{rank, synthesize, RepairPlan, RepairStrategy, ThreadCluster};
pub use rewrite::{apply, apply_iterations, repair_program, RepairError};
pub use validate::{InstanceValidation, ValidationHarness, ValidationOutcome};
pub use worst_case::{converge_worst_case, schedule_set, WorstCaseIteration, WorstCaseTrace};
