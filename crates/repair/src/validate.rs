//! End-to-end prediction validation: profile a workload, synthesize fixes
//! for every reported false-sharing instance, apply each fix, re-run, and
//! compare Cheetah's *predicted* improvement against the *measured* one —
//! the paper's Table 2 experiment, fully automated.
//!
//! The harness exploits the simulator's determinism: a workload builder
//! produces bit-identical programs on every call, so "the same run with a
//! different layout" is a meaningful counterfactual rather than a noisy
//! re-measurement.

use crate::plan::{synthesize, RepairPlan};
use crate::rewrite::{repair_program, RepairError};
use cheetah_core::{format_prediction_table, CheetahConfig, CheetahProfiler, PredictionRow};
use cheetah_sim::{Cycles, Machine, NullObserver};
use cheetah_workloads::WorkloadInstance;
use std::fmt;

/// Validation result for one sharing instance.
#[derive(Debug, Clone)]
pub struct InstanceValidation {
    /// The synthesized plan that was applied.
    pub plan: RepairPlan,
    /// Cheetah's predicted improvement factor for fixing this instance.
    pub predicted: f64,
    /// Measured improvement: broken cycles / repaired cycles.
    pub actual: f64,
    /// Runtime of the repaired program, this instance's fix only.
    pub repaired_cycles: Cycles,
}

impl InstanceValidation {
    /// Relative prediction error `|predicted/actual - 1|`.
    pub fn relative_error(&self) -> f64 {
        self.row().relative_error()
    }

    /// The instance as a report-table row.
    pub fn row(&self) -> PredictionRow {
        PredictionRow {
            label: self.plan.label.clone(),
            strategy: self.plan.strategy.to_string(),
            predicted: self.predicted,
            actual: self.actual,
        }
    }
}

/// Complete validation outcome for one workload.
#[derive(Debug, Clone)]
pub struct ValidationOutcome {
    /// Workload name.
    pub workload: String,
    /// Unprofiled runtime of the broken build.
    pub broken_cycles: Cycles,
    /// Per-instance validations (each fix applied in isolation), in the
    /// profile's order (predicted improvement descending).
    pub instances: Vec<InstanceValidation>,
    /// Runtime with *all* synthesized fixes applied together.
    pub all_repaired_cycles: Cycles,
    /// Samples the profiling run collected (diagnostic).
    pub total_samples: u64,
}

impl ValidationOutcome {
    /// Measured improvement with every fix applied.
    pub fn combined_actual(&self) -> f64 {
        if self.all_repaired_cycles == 0 {
            return 1.0;
        }
        self.broken_cycles as f64 / self.all_repaired_cycles as f64
    }

    /// Worst per-instance relative prediction error (0 when nothing was
    /// validated).
    pub fn worst_error(&self) -> f64 {
        self.instances
            .iter()
            .map(|i| i.relative_error())
            .fold(0.0, f64::max)
    }

    /// Renders the predicted-vs-actual table.
    pub fn render_table(&self) -> String {
        let rows: Vec<PredictionRow> = self.instances.iter().map(|i| i.row()).collect();
        format_prediction_table(
            &format!(
                "{}: predicted vs. actual improvement ({} instances, combined {:.2}x)",
                self.workload,
                self.instances.len(),
                self.combined_actual()
            ),
            &rows,
        )
    }
}

impl fmt::Display for ValidationOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table())
    }
}

/// The validation harness: one machine + profiler configuration, reused
/// across workloads.
#[derive(Debug, Clone)]
pub struct ValidationHarness {
    machine: Machine,
    config: CheetahConfig,
}

impl ValidationHarness {
    /// Creates a harness.
    pub fn new(machine: Machine, config: CheetahConfig) -> Self {
        ValidationHarness { machine, config }
    }

    /// Creates a harness whose machine constants are calibrated: programs
    /// without a serial phase give Cheetah no serial-phase samples, so the
    /// assessment falls back to "a default value learned from experience"
    /// (§3.1 of the paper). On this simulator the experience is exact —
    /// after a fix, a hot thread's accesses hit its private cache — so the
    /// fallback is set to the machine's private-cache hit latency, and the
    /// compute/stall split uses the machine's true cycles-per-instruction.
    pub fn calibrated(machine: Machine, mut config: CheetahConfig) -> Self {
        config.detector.default_serial_latency = machine.config().latency.l1_hit as f64;
        config.detector.cycles_per_instruction =
            machine.config().latency.cycles_per_instruction as f64;
        config.detector.coherence_miss_latency = machine.config().latency.remote_dirty as f64;
        ValidationHarness { machine, config }
    }

    /// The machine programs run on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The profiler configuration runs use.
    pub fn cheetah_config(&self) -> &CheetahConfig {
        &self.config
    }

    /// The harness configuration with sampling perturbation zeroed (no
    /// trap or setup cost). Prediction runs use this so their baseline is
    /// the same runtime measured improvements are taken against: at the
    /// paper's native 64K period the distinction is a few percent, but at
    /// the dense periods scaled-down experiments need, trap costs would
    /// de-synchronise the very contention being measured.
    pub fn non_perturbing_config(&self) -> CheetahConfig {
        let mut config = self.config.clone();
        config.sampler.trap_cost = 0;
        config.sampler.setup_cost = 0;
        config
    }

    /// Profiles the workload, synthesizes a fix per reported false-sharing
    /// instance, and measures each fix (and all fixes combined) on the
    /// same machine.
    ///
    /// `build` must produce identically laid-out instances on every call
    /// (true for all registry workloads given a fixed [`cheetah_workloads::AppConfig`]);
    /// the harness calls it once per run it needs.
    ///
    /// # Errors
    ///
    /// [`RepairError`] if a synthesized plan cannot be applied.
    pub fn validate<F>(&self, name: &str, build: F) -> Result<ValidationOutcome, RepairError>
    where
        F: Fn() -> WorkloadInstance,
    {
        let line_size = self.machine.config().cache_line_size;

        // Baseline: the broken build, unprofiled.
        let instance = build();
        let broken_cycles = self
            .machine
            .run(instance.program, &mut NullObserver)
            .total_cycles;

        // Profiled run: detection + per-instance predictions, with the
        // perturbation-free config so prediction and measurement share a
        // baseline (see [`ValidationHarness::non_perturbing_config`]).
        let instance = build();
        let mut profiler = CheetahProfiler::new(self.non_perturbing_config(), &instance.space);
        self.machine.run(instance.program, &mut profiler);
        let profile = profiler.finish();

        // Synthesize one plan per false-sharing instance.
        let planned: Vec<(RepairPlan, f64)> = profile
            .false_sharing()
            .into_iter()
            .filter_map(|assessed| {
                synthesize(&assessed.instance, line_size).map(|plan| (plan, assessed.improvement()))
            })
            .collect();

        // Validate each fix in isolation.
        let mut instances = Vec::with_capacity(planned.len());
        for (plan, predicted) in &planned {
            let fresh = build();
            let (program, space) = fresh.into_parts();
            let mut space = space;
            let (repaired, _) = repair_program(program, std::slice::from_ref(plan), &mut space)?;
            let repaired_cycles = self.machine.run(repaired, &mut NullObserver).total_cycles;
            let actual = if repaired_cycles == 0 {
                1.0
            } else {
                broken_cycles as f64 / repaired_cycles as f64
            };
            instances.push(InstanceValidation {
                plan: plan.clone(),
                predicted: *predicted,
                actual,
                repaired_cycles,
            });
        }

        // And all fixes together. With a single plan the merged map equals
        // that plan's map, so the per-instance run already measured it.
        let all_repaired_cycles = if planned.is_empty() {
            broken_cycles
        } else if planned.len() == 1 {
            instances[0].repaired_cycles
        } else {
            let fresh = build();
            let (program, space) = fresh.into_parts();
            let mut space = space;
            let plans: Vec<RepairPlan> = planned.iter().map(|(p, _)| p.clone()).collect();
            let (repaired, _) = repair_program(program, &plans, &mut space)?;
            self.machine.run(repaired, &mut NullObserver).total_cycles
        };

        Ok(ValidationOutcome {
            workload: name.to_string(),
            broken_cycles,
            instances,
            all_repaired_cycles,
            total_samples: profile.total_samples,
        })
    }
}
