//! Applying a [`RepairPlan`] to an address space and a program.
//!
//! A plan is executed in two steps:
//!
//! 1. [`apply`] allocates the plan's target storage out of the workload's
//!    own [`AddressSpace`] (line-aligned, padded, provenance-tracked via
//!    [`cheetah_heap::ObjectInfo::relocated_from`]) and returns the
//!    resulting [`LayoutMap`];
//! 2. [`cheetah_sim::Program::with_layout`] rewrites the program's memory
//!    operations through that map.
//!
//! The rewritten program executes the **same op stream** — identical op
//! counts, identical compute, identical fork-join phase graph — against
//! the repaired layout, which is exactly the counterfactual Cheetah's
//! assessment predicts (§3 of the paper).

use crate::plan::{spans_disjoint, RepairPlan, RepairStrategy};
use cheetah_core::ObjectKey;
use cheetah_heap::{AddressSpace, CallStack, HeapError, ObjectId};
use cheetah_sim::layout::{LayoutError, LayoutMap, Remapping};
use cheetah_sim::{Addr, Program, ThreadId, WORD_BYTES};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors from applying a repair plan.
#[derive(Debug)]
pub enum RepairError {
    /// Target storage could not be allocated.
    Heap(HeapError),
    /// The synthesized remappings were inconsistent (overlapping ranges) —
    /// indicates conflicting plans applied to one space.
    Layout(LayoutError),
    /// The plan references a heap object the given space does not know.
    UnknownObject(ObjectId),
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Heap(err) => write!(f, "allocating repair storage: {err}"),
            RepairError::Layout(err) => write!(f, "composing remappings: {err}"),
            RepairError::UnknownObject(id) => {
                write!(f, "plan references unknown heap object {id}")
            }
        }
    }
}

impl Error for RepairError {}

impl From<HeapError> for RepairError {
    fn from(err: HeapError) -> Self {
        RepairError::Heap(err)
    }
}

impl From<LayoutError> for RepairError {
    fn from(err: LayoutError) -> Self {
        RepairError::Layout(err)
    }
}

/// Allocates the target storage for `plan` in `space` and returns the
/// layout transformation realising the fix.
///
/// The space must be the one the plan's program was built against (same
/// deterministic allocation order as the profiled build), so that object
/// ids and addresses line up; workload builders guarantee this.
///
/// # Errors
///
/// [`RepairError`] if storage cannot be allocated or the plan is
/// inconsistent with the space.
pub fn apply(plan: &RepairPlan, space: &mut AddressSpace) -> Result<LayoutMap, RepairError> {
    let line = plan.line_size;
    match plan.strategy {
        RepairStrategy::AlignToLine | RepairStrategy::PadToLine => {
            // Whole-object relocation to a line-aligned, line-padded base.
            let target = relocate_whole(plan, space)?;
            Ok(LayoutMap::new(vec![Remapping::new(
                plan.object_start,
                plan.object_size,
                target,
            )])?)
        }
        RepairStrategy::SplitPerThread => {
            let callsite = origin_callsite(plan, space);
            let mut rules = Vec::new();
            // Whole-span relocation must not drag a truly-shared (pinned)
            // word onto a cluster's private lines — that would recreate
            // the false sharing the plan is meant to remove.
            let span_safe = spans_disjoint(&plan.clusters)
                && plan.pinned_word_offsets.iter().all(|&offset| {
                    plan.clusters
                        .iter()
                        .all(|c| offset < c.span_start() || offset >= c.span_end())
                });
            if span_safe {
                // Common case: each thread's words occupy a private span of
                // the object; relocate each span whole (untouched interior
                // bytes travel with it, so even unsampled accesses inside
                // the span land on the thread's private lines).
                for cluster in &plan.clusters {
                    let target = space.heap_mut().alloc_aligned(
                        cluster.owner(),
                        cluster.span_len().max(WORD_BYTES),
                        line,
                        callsite.clone(),
                    )?;
                    rules.push(Remapping::new(
                        Addr(plan.object_start.0 + cluster.span_start()),
                        cluster.span_len().max(WORD_BYTES),
                        target,
                    ));
                }
            } else {
                // Interleaved spans: relocate word by word, packing each
                // thread's words contiguously into its private block.
                for cluster in &plan.clusters {
                    let block_len = cluster.word_offsets.len() as u64 * WORD_BYTES;
                    let target = space.heap_mut().alloc_aligned(
                        cluster.owner(),
                        block_len,
                        line,
                        callsite.clone(),
                    )?;
                    for (slot, &offset) in cluster.word_offsets.iter().enumerate() {
                        rules.push(Remapping::new(
                            Addr(plan.object_start.0 + offset),
                            WORD_BYTES,
                            target.offset(slot as u64 * WORD_BYTES),
                        ));
                    }
                }
            }
            Ok(LayoutMap::new(rules)?)
        }
    }
}

/// Applies several plans to one space and rewrites `program` through the
/// merged transformation. Returns the repaired program and the map (for
/// inspection or reuse on identically built programs).
///
/// # Errors
///
/// [`RepairError`] if any plan fails to apply or two plans conflict.
pub fn repair_program(
    program: Program,
    plans: &[RepairPlan],
    space: &mut AddressSpace,
) -> Result<(Program, Arc<LayoutMap>), RepairError> {
    let mut merged = LayoutMap::identity();
    for plan in plans {
        let map = apply(plan, space)?;
        merged = merged.merge(&map)?;
    }
    let shared = merged.shared();
    Ok((program.with_layout(Arc::clone(&shared)), shared))
}

/// Applies plans from *successive repair iterations* to one space,
/// rewriting `program` through each resulting map in order.
///
/// Unlike [`repair_program`] — which merges the plans of one profile into a
/// single disjoint map — this composes the maps: plan `k` was synthesized
/// from a profile of the program *after* plans `1..k` were applied, so its
/// source addresses refer to the already-rewritten layout (possibly even to
/// storage an earlier fix allocated). Because workload builds and heap
/// allocation are deterministic, replaying the plans in synthesis order
/// against a fresh space reproduces the exact addresses each plan saw.
///
/// # Errors
///
/// [`RepairError`] if any plan fails to apply.
pub fn apply_iterations(
    mut program: Program,
    plans: &[RepairPlan],
    space: &mut AddressSpace,
) -> Result<Program, RepairError> {
    for plan in plans {
        let map = apply(plan, space)?;
        program = program.with_layout(map.shared());
    }
    Ok(program)
}

fn relocate_whole(plan: &RepairPlan, space: &mut AddressSpace) -> Result<Addr, RepairError> {
    match plan.key {
        ObjectKey::Heap(id) => {
            if space.heap().objects().len() as u64 <= id.0 {
                return Err(RepairError::UnknownObject(id));
            }
            Ok(space.heap_mut().relocate(id, plan.line_size)?)
        }
        ObjectKey::Global(_) => {
            // Globals cannot move within the globals segment (the registry
            // packs symbols); padded shadow storage in the heap plays the
            // role of the recompiled, aligned global. `alloc_aligned` pads
            // the reservation to whole lines itself.
            Ok(space.heap_mut().alloc_aligned(
                ThreadId::MAIN,
                plan.object_size,
                plan.line_size,
                CallStack::unknown(),
            )?)
        }
    }
}

fn origin_callsite(plan: &RepairPlan, space: &AddressSpace) -> CallStack {
    match plan.key {
        ObjectKey::Heap(id) if (id.0 as usize) < space.heap().objects().len() => {
            space.heap().object(id).callsite.clone()
        }
        _ => CallStack::unknown(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ThreadCluster;

    fn split_plan(object_start: Addr, clusters: Vec<ThreadCluster>) -> RepairPlan {
        RepairPlan {
            key: ObjectKey::Heap(ObjectId(0)),
            label: "app.c: 1".into(),
            strategy: RepairStrategy::SplitPerThread,
            object_start,
            object_size: 64,
            line_size: 64,
            clusters,
            pinned_word_offsets: vec![],
            co_residents: 1,
        }
    }

    fn space_with_object() -> (AddressSpace, Addr) {
        let mut space = AddressSpace::new();
        let addr = space
            .heap_mut()
            .alloc(ThreadId(0), 64, CallStack::single("app.c", 1))
            .unwrap();
        (space, addr)
    }

    #[test]
    fn split_moves_each_cluster_to_a_private_line() {
        let (mut space, base) = space_with_object();
        let plan = split_plan(
            base,
            vec![
                ThreadCluster {
                    threads: vec![ThreadId(1)],
                    word_offsets: vec![0, 4],
                },
                ThreadCluster {
                    threads: vec![ThreadId(2)],
                    word_offsets: vec![8, 12],
                },
            ],
        );
        let map = apply(&plan, &mut space).unwrap();
        let t1 = map.translate(base);
        let t2 = map.translate(base.offset(8));
        assert_ne!(t1.line(64), t2.line(64), "clusters must get private lines");
        assert_eq!(t1.0 % 64, 0);
        assert_eq!(t2.0 % 64, 0);
        // Interior of a span moves with it.
        assert_eq!(map.translate(base.offset(4)), t1.offset(4));
        // Untouched object bytes stay put.
        assert_eq!(map.translate(base.offset(32)), base.offset(32));
    }

    #[test]
    fn interleaved_spans_fall_back_to_word_relocation() {
        let (mut space, base) = space_with_object();
        // Thread 1 owns words 0 and 8; thread 2 owns word 4 — spans overlap.
        let plan = split_plan(
            base,
            vec![
                ThreadCluster {
                    threads: vec![ThreadId(1)],
                    word_offsets: vec![0, 8],
                },
                ThreadCluster {
                    threads: vec![ThreadId(2)],
                    word_offsets: vec![4],
                },
            ],
        );
        let map = apply(&plan, &mut space).unwrap();
        let a = map.translate(base);
        let b = map.translate(base.offset(8));
        let c = map.translate(base.offset(4));
        assert_eq!(a.line(64), b.line(64), "same thread packs into one block");
        assert_eq!(b, a.offset(4), "words pack contiguously");
        assert_ne!(a.line(64), c.line(64));
    }

    #[test]
    fn pinned_word_inside_a_span_forces_word_relocation() {
        let (mut space, base) = space_with_object();
        // Thread 1's span [0, 12) would swallow the truly-shared word at
        // offset 4; the rewriter must fall back to word granularity and
        // leave the pinned word at its original address.
        let mut plan = split_plan(
            base,
            vec![
                ThreadCluster {
                    threads: vec![ThreadId(1)],
                    word_offsets: vec![0, 8],
                },
                ThreadCluster {
                    threads: vec![ThreadId(4)],
                    word_offsets: vec![12],
                },
            ],
        );
        plan.pinned_word_offsets = vec![4];
        let map = apply(&plan, &mut space).unwrap();
        assert_eq!(
            map.translate(base.offset(4)),
            base.offset(4),
            "truly shared word must stay in place"
        );
        let t1a = map.translate(base);
        let t1b = map.translate(base.offset(8));
        let t4 = map.translate(base.offset(12));
        assert_ne!(t1a, base);
        assert_eq!(t1a.line(64), t1b.line(64));
        assert_ne!(t1a.line(64), t4.line(64));
        assert_ne!(
            t1a.line(64),
            base.line(64),
            "private lines leave the object"
        );
    }

    #[test]
    fn pad_relocates_whole_object_with_provenance() {
        let (mut space, base) = space_with_object();
        let plan = RepairPlan {
            key: ObjectKey::Heap(ObjectId(0)),
            label: "app.c: 1".into(),
            strategy: RepairStrategy::PadToLine,
            object_start: base,
            object_size: 64,
            line_size: 64,
            clusters: vec![],
            pinned_word_offsets: vec![],
            co_residents: 1,
        };
        let map = apply(&plan, &mut space).unwrap();
        let target = map.translate(base);
        assert_ne!(target, base);
        assert_eq!(target.0 % 64, 0);
        assert_eq!(map.translate(base.offset(63)), target.offset(63));
        let info = space.heap().object_at(target).unwrap();
        assert_eq!(info.relocated_from, Some(ObjectId(0)));
        assert_eq!(info.callsite.to_string(), "app.c: 1");
    }

    #[test]
    fn unknown_object_is_an_error() {
        let mut space = AddressSpace::new();
        let plan = RepairPlan {
            key: ObjectKey::Heap(ObjectId(7)),
            label: "x".into(),
            strategy: RepairStrategy::PadToLine,
            object_start: Addr(0x4000_0000),
            object_size: 64,
            line_size: 64,
            clusters: vec![],
            pinned_word_offsets: vec![],
            co_residents: 1,
        };
        assert!(matches!(
            apply(&plan, &mut space),
            Err(RepairError::UnknownObject(_))
        ));
    }

    #[test]
    fn global_plans_get_padded_shadow_storage() {
        let mut space = AddressSpace::new();
        let g = space.globals_mut().register("shared", 48, 8).unwrap();
        let plan = RepairPlan {
            key: ObjectKey::Global(0),
            label: "shared".into(),
            strategy: RepairStrategy::PadToLine,
            object_start: g,
            object_size: 48,
            line_size: 64,
            clusters: vec![],
            pinned_word_offsets: vec![],
            co_residents: 1,
        };
        let map = apply(&plan, &mut space).unwrap();
        let target = map.translate(g);
        assert_eq!(target.0 % 64, 0);
        assert!(space.heap().object_at(target).is_some());
    }
}
