//! Fixpoint repair: profile, fix the top-ranked instance, re-profile the
//! repaired program, repeat.
//!
//! [`ValidationHarness::validate`] measures each synthesized fix against
//! the *original* profile — one shot. A programmer using a false-sharing
//! tool works differently (the LASER / Predator workflow): fix the worst
//! instance, re-run the profiler on the patched binary, and keep going
//! until the report comes back clean. [`converge`] automates that loop on
//! the simulator:
//!
//! 1. profile the current build (original layout plus every fix applied so
//!    far) with the Cheetah profiler;
//! 2. collect the *significant* false-sharing instances — predicted
//!    improvement at least [`ConvergeConfig::min_predicted_improvement`] —
//!    and rank their synthesized plans ([`crate::plan::rank`]);
//! 3. if none remain, the loop has converged; otherwise apply the
//!    top-ranked plan, measure the repaired runtime, record the iteration,
//!    and go back to 1 — unless [`ConvergeConfig::max_iterations`] is hit.
//!
//! The returned [`ConvergenceTrace`] carries one [`IterationRecord`] per
//! applied fix: which instance was fixed, the predicted vs. measured
//! improvement of that single step, and how many significant instances
//! remained afterwards. Everything downstream of a deterministic workload
//! builder is deterministic, so traces are bit-identical across runs — a
//! property the test suite asserts.

use crate::plan::{rank, synthesize, RepairPlan, RepairStrategy};
use crate::rewrite::{apply_iterations, RepairError};
use crate::validate::ValidationHarness;
use cheetah_core::CheetahProfiler;
use cheetah_sim::Cycles;
use cheetah_workloads::WorkloadInstance;
use std::fmt;

/// Lane (Chrome-trace `tid`) used by the fixpoint loop's iteration spans,
/// distinct from the execution engine's
/// [`cheetah_sim::OBS_LANE_ENGINE`].
pub const OBS_LANE_CONVERGE: u32 = 3;

/// Bounds and thresholds of the fixpoint loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergeConfig {
    /// Hard cap on applied fixes; the loop stops unconverged beyond it.
    pub max_iterations: u32,
    /// An instance is *significant* — worth an iteration — only if its
    /// predicted improvement reaches this factor. `1.0` fixes everything
    /// the detector reports; the default skips noise-level instances.
    pub min_predicted_improvement: f64,
}

impl Default for ConvergeConfig {
    fn default() -> Self {
        ConvergeConfig {
            max_iterations: 8,
            min_predicted_improvement: 1.005,
        }
    }
}

impl ConvergeConfig {
    /// A config that repairs every reported false-sharing instance,
    /// however small its predicted payoff (used for workloads — like
    /// inter-object sharing — whose per-instance predictions are
    /// structurally conservative).
    pub fn exhaustive(max_iterations: u32) -> Self {
        ConvergeConfig {
            max_iterations,
            min_predicted_improvement: 0.0,
        }
    }
}

/// One applied fix of the loop.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iteration: u32,
    /// Label of the fixed instance (callsite / symbol).
    pub label: String,
    /// Strategy of the applied plan.
    pub strategy: RepairStrategy,
    /// Largest number of co-resident objects on the fixed instance's lines
    /// at fix time (2+ marks a cross-object repair, whose `predicted`
    /// value is the joint line payoff under the default line-level
    /// assessment).
    pub co_residents: usize,
    /// Cheetah's predicted improvement for fixing this instance, taken
    /// from the profile of the build this iteration started from.
    pub predicted: f64,
    /// Measured improvement of this single step: runtime before this fix
    /// over runtime after it (both unprofiled).
    pub measured: f64,
    /// Unprofiled runtime entering the iteration.
    pub cycles_before: Cycles,
    /// Unprofiled runtime after applying the fix.
    pub cycles_after: Cycles,
    /// Significant instances seen by the profile that chose this fix.
    pub significant_before: usize,
    /// Significant instances remaining in the *next* profile (0 on the
    /// iteration that converged the loop).
    pub significant_after: usize,
}

impl IterationRecord {
    /// Relative prediction error `|predicted/measured - 1|` of this step.
    pub fn relative_error(&self) -> f64 {
        if self.measured == 0.0 {
            return 0.0;
        }
        (self.predicted / self.measured - 1.0).abs()
    }
}

/// The complete per-iteration trace of one [`converge`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceTrace {
    /// Workload name.
    pub workload: String,
    /// Unprofiled runtime of the unrepaired build.
    pub initial_cycles: Cycles,
    /// Samples the initial profile collected (diagnostic).
    pub initial_samples: u64,
    /// Unprofiled runtime after every applied fix.
    pub final_cycles: Cycles,
    /// Applied fixes, in order.
    pub iterations: Vec<IterationRecord>,
    /// Significant instances still present when the loop stopped.
    pub residual_significant: usize,
    /// Whether the loop stopped because no significant instance remained
    /// (as opposed to hitting `max_iterations`).
    pub converged: bool,
}

impl ConvergenceTrace {
    /// Total measured improvement across all applied fixes.
    pub fn total_improvement(&self) -> f64 {
        if self.final_cycles == 0 {
            return 1.0;
        }
        self.initial_cycles as f64 / self.final_cycles as f64
    }

    /// Worst single-step relative prediction error (0 with no iterations).
    pub fn worst_error(&self) -> f64 {
        self.iterations
            .iter()
            .map(|i| i.relative_error())
            .fold(0.0, f64::max)
    }

    /// Renders the trace as a small table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} iteration(s), {:.2}x total, {} residual ({})",
            self.workload,
            self.iterations.len(),
            self.total_improvement(),
            self.residual_significant,
            if self.converged {
                "converged"
            } else {
                "bound hit"
            }
        );
        for it in &self.iterations {
            let _ = writeln!(
                out,
                "  #{} {} [{}{}] predicted {:.2}x measured {:.2}x ({} -> {} cycles, {} left)",
                it.iteration,
                it.label,
                it.strategy,
                if it.co_residents > 1 {
                    format!(", {} co-resident", it.co_residents)
                } else {
                    String::new()
                },
                it.predicted,
                it.measured,
                it.cycles_before,
                it.cycles_after,
                it.significant_after
            );
        }
        out
    }
}

impl fmt::Display for ConvergenceTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Runs the fixpoint repair loop for one workload.
///
/// `build` must produce identically laid-out instances on every call (true
/// for all registry workloads under a fixed
/// [`cheetah_workloads::AppConfig`]); the loop calls it once per profile
/// and once per measurement run.
///
/// ```
/// use cheetah_core::CheetahConfig;
/// use cheetah_repair::{converge, ConvergeConfig, ValidationHarness};
/// use cheetah_sim::{Machine, MachineConfig};
/// use cheetah_workloads::{find, AppConfig};
///
/// let app = find("microbench").unwrap();
/// let config = AppConfig::with_threads(4).scaled(0.03);
/// // `with_shards(4)`: sharded deterministic execution — the trace is
/// // bit-identical to a `shards = 1` run, only faster.
/// let harness = ValidationHarness::calibrated(
///     Machine::new(MachineConfig::with_cores(8).with_shards(4)),
///     CheetahConfig::scaled(256),
/// );
/// let trace = converge(
///     &harness,
///     "microbench",
///     || app.build(&config),
///     &ConvergeConfig::default(),
/// )?;
/// assert!(trace.converged);
/// assert!(trace.total_improvement() > 1.5, "padding the array pays off");
/// # Ok::<(), cheetah_repair::RepairError>(())
/// ```
///
/// # Errors
///
/// [`RepairError`] if a synthesized plan cannot be applied.
pub fn converge<F>(
    harness: &ValidationHarness,
    workload: &str,
    build: F,
    config: &ConvergeConfig,
) -> Result<ConvergenceTrace, RepairError>
where
    F: Fn() -> WorkloadInstance,
{
    let machine = harness.machine();
    let line_size = machine.config().cache_line_size;
    // Iteration spans land in the same registry the simulator's phase and
    // merge spans report into, so one `--trace` export shows the whole
    // profile -> fix -> re-profile cadence on its own lane.
    let obs = machine.config().obs.clone();
    if obs.tracing_enabled() {
        obs.name_lane(OBS_LANE_CONVERGE, "converge");
    }

    // Profiling runs are perturbation-free (see
    // [`ValidationHarness::non_perturbing_config`]), so one run per
    // iteration serves as both the profile the next fix is chosen from and
    // the runtime measurement of the previous fix — predicted and measured
    // improvements share one baseline.
    let cheetah = harness.non_perturbing_config();

    let profile_with = |plans: &[RepairPlan]| -> Result<_, RepairError> {
        let (program, mut space) = build().into_parts();
        let repaired = apply_iterations(program, plans, &mut space)?;
        let mut profiler = CheetahProfiler::new(cheetah.clone(), &space);
        machine.run(repaired, &mut profiler);
        Ok(profiler.finish())
    };

    let mut plans: Vec<RepairPlan> = Vec::new();
    let mut profile = profile_with(&plans)?;
    let initial_cycles = profile.total_cycles;
    let initial_samples = profile.total_samples;
    let mut iterations: Vec<IterationRecord> = Vec::new();
    let (residual_significant, converged) = loop {
        // Significant instances, with synthesized plans, ranked best-first.
        let significant: Vec<_> = profile
            .significant_false_sharing(config.min_predicted_improvement)
            .into_iter()
            .collect();
        let mut candidates: Vec<(RepairPlan, f64)> = significant
            .iter()
            .filter_map(|assessed| {
                synthesize(&assessed.instance, line_size).map(|plan| (plan, assessed.improvement()))
            })
            .collect();
        rank(&mut candidates);

        if let Some(last) = iterations.last_mut() {
            last.significant_after = significant.len();
        }
        if candidates.is_empty() {
            // Converged if nothing significant remains; significant
            // instances no plan can fix (pure word evidence missing) also
            // end the loop, but count as residue.
            break (significant.len(), significant.is_empty());
        }
        if iterations.len() as u32 >= config.max_iterations {
            break (significant.len(), false);
        }

        let (plan, predicted) = candidates.swap_remove(0);
        let label = plan.label.clone();
        let strategy = plan.strategy;
        let co_residents = plan.co_residents;
        let cycles_before = profile.total_cycles;
        plans.push(plan);
        let mut span = obs.span("converge.iteration", OBS_LANE_CONVERGE);
        span.attr_u64("iteration", iterations.len() as u64 + 1);
        span.attr_str("label", label.clone());
        span.attr_f64("predicted", predicted);
        let next = profile_with(&plans)?;
        let cycles_after = next.total_cycles;
        let measured = if cycles_after == 0 {
            1.0
        } else {
            cycles_before as f64 / cycles_after as f64
        };
        span.attr_f64("measured", measured);
        span.attr_u64("cycles_before", cycles_before);
        span.attr_u64("cycles_after", cycles_after);
        span.finish();
        iterations.push(IterationRecord {
            iteration: iterations.len() as u32 + 1,
            label,
            strategy,
            co_residents,
            predicted,
            measured,
            cycles_before,
            cycles_after,
            significant_before: significant.len(),
            significant_after: 0,
        });
        profile = next;
    };

    Ok(ConvergenceTrace {
        workload: workload.to_string(),
        initial_cycles,
        initial_samples,
        final_cycles: profile.total_cycles,
        iterations,
        residual_significant,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_core::CheetahConfig;
    use cheetah_sim::{Machine, MachineConfig};
    use cheetah_workloads::{find, AppConfig};

    fn harness(cores: u32, period: u64) -> ValidationHarness {
        ValidationHarness::calibrated(
            Machine::new(MachineConfig::with_cores(cores)),
            CheetahConfig::scaled(period),
        )
    }

    #[test]
    fn microbench_converges_in_one_iteration() {
        let app = find("microbench").unwrap();
        let config = AppConfig {
            threads: 8,
            scale: 0.05,
            fixed: false,
            seed: 1,
        };
        let trace = converge(
            &harness(8, 256),
            "microbench",
            || app.build(&config),
            &ConvergeConfig::default(),
        )
        .unwrap();
        assert!(trace.converged, "{trace}");
        assert_eq!(trace.iterations.len(), 1, "{trace}");
        assert_eq!(trace.residual_significant, 0);
        assert_eq!(trace.iterations[0].significant_after, 0);
        assert!(trace.total_improvement() > 2.0, "{trace}");
        assert!(trace.worst_error() < 0.20, "{trace}");
        assert!(trace.render().contains("converged"));
    }

    #[test]
    fn clean_app_converges_immediately() {
        let app = find("blackscholes").unwrap();
        let config = AppConfig {
            threads: 8,
            scale: 0.1,
            fixed: false,
            seed: 1,
        };
        let trace = converge(
            &harness(48, 512),
            "blackscholes",
            || app.build(&config),
            &ConvergeConfig::default(),
        )
        .unwrap();
        assert!(trace.converged);
        assert!(trace.iterations.is_empty());
        assert_eq!(trace.initial_cycles, trace.final_cycles);
        assert!((trace.total_improvement() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_iterations_bounds_the_loop() {
        let app = find("linear_regression").unwrap();
        let config = AppConfig {
            threads: 8,
            scale: 0.25,
            fixed: false,
            seed: 1,
        };
        // Zero iterations allowed: the loop must stop unconverged with the
        // instance still outstanding.
        let trace = converge(
            &harness(48, 128),
            "linear_regression",
            || app.build(&config),
            &ConvergeConfig {
                max_iterations: 0,
                min_predicted_improvement: 1.005,
            },
        )
        .unwrap();
        assert!(!trace.converged);
        assert!(trace.iterations.is_empty());
        assert!(trace.residual_significant >= 1);
    }
}
