//! Worst-case repair over a schedule set: the fixpoint loop of
//! [`converge`](crate::converge::converge), but judged against *every*
//! explored interleaving instead of the one the simulator happened to
//! observe.
//!
//! Each iteration profiles the current build once per schedule in the
//! set (the observed schedule plus seeded perturbations —
//! [`schedule_set`]), unites the significant findings with
//! [`cheetah_core::union_findings`], and ranks synthesized plans by their
//! **worst-case payoff**: the highest predicted improvement any schedule
//! assigns the instance. A fix is worth what it saves under the
//! interleaving where the bug bites hardest — which for schedule-hidden
//! instances (the `staggered_writers` registry app) is never the observed
//! one. The loop converges only when **no** explored schedule reports a
//! significant instance, so a repair that merely pushes contention onto a
//! different interleaving does not count as done.

use crate::converge::{ConvergeConfig, OBS_LANE_CONVERGE};
use crate::plan::{rank, synthesize, RepairPlan, RepairStrategy};
use crate::rewrite::{apply_iterations, RepairError};
use crate::validate::ValidationHarness;
use cheetah_core::{union_findings, CheetahProfiler, Profile};
use cheetah_sim::{Machine, SchedulePolicy};
use cheetah_workloads::WorkloadInstance;
use std::fmt;

/// The standard exploration set: the observed schedule plus, per seed,
/// one uniformly shuffled and one contention-maximizing perturbation.
pub fn schedule_set(seeds: &[u64]) -> Vec<SchedulePolicy> {
    std::iter::once(SchedulePolicy::Observed)
        .chain(seeds.iter().flat_map(|&seed| {
            [
                SchedulePolicy::SeededShuffle { seed },
                SchedulePolicy::ContentionMax { seed },
            ]
        }))
        .collect()
}

/// One applied fix of the worst-case loop.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstCaseIteration {
    /// 1-based iteration number.
    pub iteration: u32,
    /// Label of the fixed instance (callsite / symbol).
    pub label: String,
    /// Strategy of the applied plan.
    pub strategy: RepairStrategy,
    /// The schedule under which the instance's payoff peaked — the
    /// evidence the plan was synthesized from.
    pub worst_schedule: SchedulePolicy,
    /// The worst-case predicted improvement the fix was ranked by.
    pub predicted: f64,
    /// Whether the observed schedule missed the instance entirely — the
    /// predictive case a single-run profiler cannot deliver.
    pub hidden: bool,
    /// Schedules (of those explored this iteration) that reported the
    /// instance as significant.
    pub sightings: usize,
}

/// The complete trace of one [`converge_worst_case`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstCaseTrace {
    /// Workload name.
    pub workload: String,
    /// The explored schedule set, in exploration order.
    pub schedules: Vec<SchedulePolicy>,
    /// Schedule-hidden findings in the *initial* exploration: significant
    /// under some perturbed schedule, invisible to the observed one.
    pub initial_hidden: usize,
    /// Significant findings (union over schedules) in the initial
    /// exploration.
    pub initial_findings: usize,
    /// Applied fixes, in order.
    pub iterations: Vec<WorstCaseIteration>,
    /// Significant instances each schedule still reports after the last
    /// applied fix, in `schedules` order.
    pub residual_per_schedule: Vec<usize>,
    /// Whether every explored schedule came back clean.
    pub converged: bool,
}

impl WorstCaseTrace {
    /// Total significant residue across the schedule set.
    pub fn total_residual(&self) -> usize {
        self.residual_per_schedule.iter().sum()
    }

    /// Renders the trace as a small table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} schedule(s), {} finding(s) initially ({} hidden), {} fix(es), {} residual ({})",
            self.workload,
            self.schedules.len(),
            self.initial_findings,
            self.initial_hidden,
            self.iterations.len(),
            self.total_residual(),
            if self.converged {
                "converged on every schedule"
            } else {
                "bound hit"
            }
        );
        for it in &self.iterations {
            let _ = writeln!(
                out,
                "  #{} {} [{}] worst case {:.2}x under {}{} ({} of {} schedules)",
                it.iteration,
                it.label,
                it.strategy,
                it.predicted,
                it.worst_schedule,
                if it.hidden {
                    ", hidden from observed"
                } else {
                    ""
                },
                it.sightings,
                self.schedules.len(),
            );
        }
        out
    }
}

impl fmt::Display for WorstCaseTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Runs the worst-case fixpoint repair loop for one workload over a
/// schedule set (see [`schedule_set`]).
///
/// `build` must produce identically laid-out instances on every call;
/// the loop profiles it once per schedule per iteration.
///
/// # Errors
///
/// [`RepairError`] if a synthesized plan cannot be applied.
pub fn converge_worst_case<F>(
    harness: &ValidationHarness,
    workload: &str,
    build: F,
    config: &ConvergeConfig,
    schedules: &[SchedulePolicy],
) -> Result<WorstCaseTrace, RepairError>
where
    F: Fn() -> WorkloadInstance,
{
    assert!(!schedules.is_empty(), "explore at least one schedule");
    let base = harness.machine().config().clone();
    let line_size = base.cache_line_size;
    let obs = base.obs.clone();
    let cheetah = harness.non_perturbing_config();

    // One machine per schedule, sharing the harness's configuration (and
    // observability registry) in everything but the policy.
    let machines: Vec<(SchedulePolicy, Machine)> = schedules
        .iter()
        .map(|&policy| (policy, Machine::new(base.clone().with_schedule(policy))))
        .collect();

    let explore = |plans: &[RepairPlan]| -> Result<Vec<(SchedulePolicy, Profile)>, RepairError> {
        machines
            .iter()
            .map(|(policy, machine)| {
                let (program, mut space) = build().into_parts();
                let repaired = apply_iterations(program, plans, &mut space)?;
                let mut span = obs.span("explore.schedule", OBS_LANE_CONVERGE);
                span.attr_str("schedule", policy.to_string());
                let mut profiler = CheetahProfiler::new(cheetah.clone(), &space);
                machine.run(repaired, &mut profiler);
                let profile = profiler.finish();
                span.attr_u64(
                    "significant",
                    profile
                        .significant_false_sharing(config.min_predicted_improvement)
                        .len() as u64,
                );
                span.finish();
                Ok((*policy, profile))
            })
            .collect()
    };

    let residuals = |runs: &[(SchedulePolicy, Profile)]| -> Vec<usize> {
        runs.iter()
            .map(|(_, profile)| {
                profile
                    .significant_false_sharing(config.min_predicted_improvement)
                    .len()
            })
            .collect()
    };

    let mut plans: Vec<RepairPlan> = Vec::new();
    let mut runs = explore(&plans)?;
    let initial = union_findings(&runs, config.min_predicted_improvement);
    let initial_findings = initial.len();
    let initial_hidden = initial.iter().filter(|f| f.is_hidden()).count();

    let mut iterations: Vec<WorstCaseIteration> = Vec::new();
    let converged = loop {
        let findings = union_findings(&runs, config.min_predicted_improvement);
        // Rank synthesized plans by worst-case payoff over the set.
        let mut candidates: Vec<(RepairPlan, f64)> = findings
            .iter()
            .filter_map(|finding| {
                synthesize(&finding.worst_instance, line_size)
                    .map(|plan| (plan, finding.worst_improvement()))
            })
            .collect();
        rank(&mut candidates);

        if candidates.is_empty() {
            break findings.is_empty();
        }
        if iterations.len() as u32 >= config.max_iterations {
            break false;
        }

        let (plan, predicted) = candidates.swap_remove(0);
        let chosen = findings
            .iter()
            .find(|f| f.key == plan.key)
            .expect("the plan came from a finding");
        iterations.push(WorstCaseIteration {
            iteration: iterations.len() as u32 + 1,
            label: plan.label.clone(),
            strategy: plan.strategy,
            worst_schedule: chosen.worst_schedule(),
            predicted,
            hidden: chosen.is_hidden(),
            sightings: chosen.sightings.len(),
        });
        plans.push(plan);
        runs = explore(&plans)?;
    };

    Ok(WorstCaseTrace {
        workload: workload.to_string(),
        schedules: schedules.to_vec(),
        initial_hidden,
        initial_findings,
        iterations,
        residual_per_schedule: residuals(&runs),
        converged,
    })
}
