//! Fix synthesis: from a detected [`SharingInstance`] to an executable
//! [`RepairPlan`].
//!
//! The paper's fixes are source edits — pad a struct, align an array,
//! give each thread its own accumulator. This module derives the same
//! transformations mechanically from the instance's per-thread word map
//! (§2.4's padding guide) and expresses them as address-range relocations
//! that [`crate::rewrite`] can apply to a running program:
//!
//! * [`RepairStrategy::AlignToLine`] — moving the whole object to a
//!   line-aligned base already puts every thread's words on private lines
//!   (the misaligned-array case: Fig. 5's `start 0x400004b8`).
//! * [`RepairStrategy::SplitPerThread`] — threads' word clusters
//!   interleave within lines, so each cluster is relocated to its own
//!   line-aligned block (the Fig. 1 "adjacent hot fields" pattern; the
//!   manual equivalent is padding each per-thread struct to a line).
//! * [`RepairStrategy::PadToLine`] — only one thread's words live in this
//!   object, so the contention is with a *neighbouring* allocation:
//!   relocate the object to exclusive, padded lines.

use cheetah_core::{ObjectKey, SharingInstance, SharingKind};
use cheetah_sim::{Addr, ThreadId, WORD_BYTES};
use std::fmt;

/// Which layout transformation a plan applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// Relocate the whole object to a cache-line-aligned base.
    AlignToLine,
    /// Relocate the whole object to exclusive, line-aligned, padded lines.
    PadToLine,
    /// Relocate each thread's word cluster to its own line-aligned block.
    SplitPerThread,
}

impl fmt::Display for RepairStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairStrategy::AlignToLine => f.write_str("align-to-line"),
            RepairStrategy::PadToLine => f.write_str("pad-to-line"),
            RepairStrategy::SplitPerThread => f.write_str("split-per-thread"),
        }
    }
}

/// The words of one object owned by one *ownership signature*: the set of
/// threads that touch them, at most one per parallel phase.
///
/// A program whose workers are re-spawned each fork-join phase gives the
/// same logical worker a fresh [`ThreadId`] per phase (streamcluster's
/// three `localSearch` phases, for example); such a word has several
/// owning threads but no two of them ever run concurrently, so it is
/// still privately owned at every instant and safe to relocate. Words
/// with two owners *within one phase* are truly shared and excluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadCluster {
    /// The owning threads, ascending — one per parallel phase that touched
    /// the words. Never empty.
    pub threads: Vec<ThreadId>,
    /// Touched word offsets, ascending.
    pub word_offsets: Vec<u64>,
}

impl ThreadCluster {
    /// Representative owner (the first thread to touch the cluster);
    /// repair storage is allocated on this thread's behalf.
    pub fn owner(&self) -> ThreadId {
        self.threads.first().copied().unwrap_or(ThreadId::MAIN)
    }
    /// First byte of the cluster's span.
    pub fn span_start(&self) -> u64 {
        self.word_offsets.first().copied().unwrap_or(0)
    }

    /// One past the last byte of the cluster's span.
    pub fn span_end(&self) -> u64 {
        self.word_offsets
            .last()
            .map(|last| last + WORD_BYTES)
            .unwrap_or(0)
    }

    /// Span length in bytes (includes untouched interior words, which are
    /// relocated together with the touched ones).
    pub fn span_len(&self) -> u64 {
        self.span_end() - self.span_start()
    }
}

/// An executable fix for one sharing instance.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairPlan {
    /// The object the plan repairs.
    pub key: ObjectKey,
    /// Human-readable identity (allocation callsite or global symbol).
    pub label: String,
    /// The chosen transformation.
    pub strategy: RepairStrategy,
    /// Object start address at planning time.
    pub object_start: Addr,
    /// Object size in bytes.
    pub object_size: u64,
    /// Cache line size the plan was synthesized for.
    pub line_size: u64,
    /// Per-thread word clusters (the split targets; also retained for
    /// align/pad plans as the safety-check input).
    pub clusters: Vec<ThreadCluster>,
    /// Word offsets that must stay at their original addresses: words
    /// touched by two threads within one parallel phase (truly shared).
    /// The rewriter must not let a whole-span relocation drag them onto a
    /// cluster's private lines.
    pub pinned_word_offsets: Vec<u64>,
    /// Largest number of co-resident objects on any of the instance's
    /// contended lines at planning time (1 = sole resident; 2+ marks a
    /// cross-object repair whose payoff is joint with its line
    /// neighbours).
    pub co_residents: usize,
}

impl fmt::Display for RepairPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} for {} ({} bytes, {} thread clusters)",
            self.strategy,
            self.label,
            self.object_size,
            self.clusters.len()
        )
    }
}

/// Ranks repair candidates best-first: predicted improvement descending,
/// with deterministic tie-breaks (object start address, then label) so
/// iterative repair fixes instances in a reproducible order even when the
/// assessment predicts identical payoffs.
///
/// Under the default line-level assessment
/// ([`cheetah_core::AssessModel::LineLevel`]) the payoff passed in here is
/// the *joint line payoff*: fixing an object whose eviction frees a whole
/// co-resident line is credited with every thread on the line, so
/// cross-object repairs rank by what the fix actually buys rather than by
/// the fixed object's own share alone.
pub fn rank(candidates: &mut [(RepairPlan, f64)]) {
    candidates.sort_by(|(a, pa), (b, pb)| {
        pb.total_cmp(pa)
            .then_with(|| a.object_start.cmp(&b.object_start))
            .then_with(|| a.label.cmp(&b.label))
    });
}

/// Whether the clusters' spans are pairwise disjoint (so each can be
/// relocated as one contiguous range).
pub(crate) fn spans_disjoint(clusters: &[ThreadCluster]) -> bool {
    let mut spans: Vec<(u64, u64)> = clusters
        .iter()
        .map(|c| (c.span_start(), c.span_end()))
        .collect();
    spans.sort_unstable();
    spans.windows(2).all(|pair| pair[0].1 <= pair[1].0)
}

/// Whether relocating the object to a line-aligned base would already put
/// every cluster's words on lines no other cluster touches.
fn alignment_separates(clusters: &[ThreadCluster], line_size: u64) -> bool {
    // Per-line map on the repair planner's hot path (consulted for every
    // candidate plan each converge iteration): the vendored FxHash-style
    // hasher, not the default SipHash — only membership and ownership are
    // queried, never iteration order.
    let mut line_owner: cheetah_sim::util::FastMap<u64, usize> = Default::default();
    for (index, cluster) in clusters.iter().enumerate() {
        for &offset in &cluster.word_offsets {
            let line = offset / line_size;
            match line_owner.get(&line) {
                Some(&owner) if owner != index => return false,
                _ => {
                    line_owner.insert(line, index);
                }
            }
        }
    }
    true
}

/// Derives the label shown in validation tables from the instance origin.
fn label_of(instance: &SharingInstance) -> String {
    match &instance.object.origin {
        cheetah_core::ObjectOrigin::Heap { callsite, .. } => callsite
            .innermost()
            .map(|frame| frame.to_string())
            .unwrap_or_else(|| "<unknown callsite>".to_string()),
        cheetah_core::ObjectOrigin::Global { name } => name.clone(),
    }
}

/// Synthesizes a repair plan for a detected instance, or `None` when no
/// layout transformation can help:
///
/// * true-sharing instances (the threads need the same words — padding
///   cannot fix semantics),
/// * instances with no per-thread word evidence (nothing to plan from).
pub fn synthesize(instance: &SharingInstance, line_size: u64) -> Option<RepairPlan> {
    if instance.kind != SharingKind::FalseSharing {
        return None;
    }
    // Group privately owned words by ownership signature. A word's
    // signature is the set of threads that touched it — at most one per
    // parallel phase. Words two threads touch *within the same phase* are
    // truly shared: relocating them cannot decouple the threads, so they
    // stay in place.
    let mut clusters: Vec<ThreadCluster> = Vec::new();
    let mut pinned_word_offsets: Vec<u64> = Vec::new();
    'words: for word in &instance.words {
        let mut phase_owner: Vec<(u32, ThreadId)> = Vec::new();
        for stats in word.stats.threads() {
            if phase_owner
                .iter()
                .any(|&(phase, thread)| phase == stats.phase && thread != stats.thread)
            {
                pinned_word_offsets.push(word.offset); // concurrent owners: truly shared
                continue 'words;
            }
            if !phase_owner.contains(&(stats.phase, stats.thread)) {
                phase_owner.push((stats.phase, stats.thread));
            }
        }
        let mut signature: Vec<ThreadId> = phase_owner.iter().map(|&(_, t)| t).collect();
        signature.sort_unstable();
        signature.dedup();
        if signature.is_empty() {
            continue;
        }
        match clusters.iter_mut().find(|c| c.threads == signature) {
            Some(cluster) => cluster.word_offsets.push(word.offset),
            None => clusters.push(ThreadCluster {
                threads: signature,
                word_offsets: vec![word.offset],
            }),
        }
    }
    for cluster in &mut clusters {
        cluster.word_offsets.sort_unstable();
    }
    if clusters.is_empty() {
        return None;
    }

    let strategy = if clusters.len() == 1 {
        RepairStrategy::PadToLine
    } else if alignment_separates(&clusters, line_size) {
        RepairStrategy::AlignToLine
    } else {
        RepairStrategy::SplitPerThread
    };

    Some(RepairPlan {
        key: instance.key,
        label: label_of(instance),
        strategy,
        object_start: instance.object.start,
        object_size: instance.object.size,
        line_size,
        clusters,
        pinned_word_offsets,
        co_residents: instance.max_co_residents(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_core::detect::words::WordStats;
    use cheetah_core::{ObjectDescriptor, ObjectOrigin, WordReport};
    use cheetah_heap::{CallStack, ObjectId};
    use cheetah_sim::AccessKind;

    fn word(offset: u64, threads: &[u32]) -> WordReport {
        let mut stats = WordStats::default();
        for &t in threads {
            stats.record(ThreadId(t), 1, AccessKind::Write, 100);
        }
        WordReport {
            addr: Addr(0x4000_0000 + offset),
            offset,
            stats,
        }
    }

    fn instance(kind: SharingKind, size: u64, words: Vec<WordReport>) -> SharingInstance {
        SharingInstance {
            key: ObjectKey::Heap(ObjectId(0)),
            object: ObjectDescriptor {
                origin: ObjectOrigin::Heap {
                    callsite: CallStack::single("app.c", 42),
                    allocated_by: ThreadId(0),
                },
                start: Addr(0x4000_0000),
                size,
            },
            kind,
            reads: 100,
            writes: 100,
            invalidations: 50,
            latency: 10_000,
            per_thread: vec![],
            per_thread_phase: vec![],
            truly_shared_accesses: 0,
            words,
            line_residency: vec![],
        }
    }

    #[test]
    fn true_sharing_yields_no_plan() {
        let inst = instance(SharingKind::TrueSharing, 64, vec![word(0, &[1, 2])]);
        assert!(synthesize(&inst, 64).is_none());
    }

    #[test]
    fn no_word_evidence_yields_no_plan() {
        let inst = instance(SharingKind::FalseSharing, 64, vec![]);
        assert!(synthesize(&inst, 64).is_none());
    }

    #[test]
    fn interleaved_clusters_choose_split() {
        // Two threads on adjacent words of one line: alignment cannot
        // separate them.
        let inst = instance(
            SharingKind::FalseSharing,
            64,
            vec![word(0, &[1]), word(4, &[2])],
        );
        let plan = synthesize(&inst, 64).unwrap();
        assert_eq!(plan.strategy, RepairStrategy::SplitPerThread);
        assert_eq!(plan.clusters.len(), 2);
        assert_eq!(plan.label, "app.c: 42");
    }

    #[test]
    fn single_cluster_chooses_pad() {
        let inst = instance(
            SharingKind::FalseSharing,
            32,
            vec![word(0, &[1]), word(8, &[1])],
        );
        let plan = synthesize(&inst, 64).unwrap();
        assert_eq!(plan.strategy, RepairStrategy::PadToLine);
    }

    #[test]
    fn alignment_sufficient_chooses_align() {
        // Threads own whole (aligned) lines of the object; the object just
        // straddles line boundaries at its current address.
        let inst = instance(
            SharingKind::FalseSharing,
            128,
            vec![
                word(0, &[1]),
                word(60, &[1]),
                word(64, &[2]),
                word(124, &[2]),
            ],
        );
        let plan = synthesize(&inst, 64).unwrap();
        assert_eq!(plan.strategy, RepairStrategy::AlignToLine);
    }

    #[test]
    fn shared_words_are_left_out_of_clusters() {
        let inst = instance(
            SharingKind::FalseSharing,
            64,
            vec![word(0, &[1]), word(4, &[2]), word(8, &[1, 2])],
        );
        let plan = synthesize(&inst, 64).unwrap();
        let all_offsets: Vec<u64> = plan
            .clusters
            .iter()
            .flat_map(|c| c.word_offsets.iter().copied())
            .collect();
        assert!(!all_offsets.contains(&8), "shared word must stay in place");
    }

    #[test]
    fn rank_orders_by_improvement_with_deterministic_ties() {
        let plan = |start: u64, label: &str| RepairPlan {
            key: ObjectKey::Heap(ObjectId(0)),
            label: label.into(),
            strategy: RepairStrategy::PadToLine,
            object_start: Addr(start),
            object_size: 64,
            line_size: 64,
            clusters: vec![],
            pinned_word_offsets: vec![],
            co_residents: 1,
        };
        let mut candidates = vec![
            (plan(0x300, "c"), 1.0),
            (plan(0x100, "a"), 4.0),
            (plan(0x200, "b"), 1.0),
        ];
        rank(&mut candidates);
        let labels: Vec<&str> = candidates.iter().map(|(p, _)| p.label.as_str()).collect();
        assert_eq!(labels, vec!["a", "b", "c"], "ties break by start address");
    }

    #[test]
    fn cluster_spans() {
        let cluster = ThreadCluster {
            threads: vec![ThreadId(1)],
            word_offsets: vec![8, 16, 40],
        };
        assert_eq!(cluster.span_start(), 8);
        assert_eq!(cluster.span_end(), 44);
        assert_eq!(cluster.span_len(), 36);
        assert!(spans_disjoint(&[
            cluster.clone(),
            ThreadCluster {
                threads: vec![ThreadId(2)],
                word_offsets: vec![44, 48],
            }
        ]));
        assert!(!spans_disjoint(&[
            cluster,
            ThreadCluster {
                threads: vec![ThreadId(2)],
                word_offsets: vec![20],
            }
        ]));
    }
}
