//! Compact criterion versions of the paper's experiments: end-to-end
//! simulated runs (native and profiled) of the key workloads, small enough
//! to benchmark the harness itself.

use cheetah_core::{CheetahConfig, CheetahProfiler};
use cheetah_sim::{Machine, MachineConfig, NullObserver};
use cheetah_workloads::{find, AppConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_microbench");
    group.sample_size(10);
    let machine = Machine::new(MachineConfig::with_cores(8));
    let app = find("microbench").unwrap();
    for fixed in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if fixed { "padded" } else { "false_sharing" }),
            &fixed,
            |b, &fixed| {
                let config = AppConfig {
                    threads: 8,
                    scale: 0.01,
                    fixed,
                    seed: 1,
                };
                b.iter(|| {
                    let instance = app.build(&config);
                    machine
                        .run(instance.program, &mut NullObserver)
                        .total_cycles
                });
            },
        );
    }
    group.finish();
}

fn bench_profile_linear_regression(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_linear_regression");
    group.sample_size(10);
    let machine = Machine::new(MachineConfig::default());
    let app = find("linear_regression").unwrap();
    let config = AppConfig {
        threads: 16,
        scale: 0.05,
        fixed: false,
        seed: 1,
    };
    group.bench_function("native", |b| {
        b.iter(|| {
            let instance = app.build(&config);
            machine
                .run(instance.program, &mut NullObserver)
                .total_cycles
        });
    });
    group.bench_function("cheetah", |b| {
        b.iter(|| {
            let instance = app.build(&config);
            let mut profiler = CheetahProfiler::new(CheetahConfig::scaled(1024), &instance.space);
            machine.run(instance.program, &mut profiler);
            profiler.finish().instances.len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig1, bench_profile_linear_regression);
criterion_main!(benches);
