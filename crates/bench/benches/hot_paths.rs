//! Criterion micro-benchmarks of the profiler's hot paths: the operations
//! executed once per simulated access or once per sample, whose host-side
//! cost bounds how fast experiments run.

use cheetah_core::{Detector, DetectorConfig, TwoEntryTable};
use cheetah_heap::{AddressSpace, CallStack, ShadowMap};
use cheetah_pmu::{Sample, SamplerConfig, SamplingEngine};
use cheetah_sim::{
    AccessKind, AccessRecord, Addr, CoreId, Directory, LatencyModel, PhaseKind, ThreadId,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_two_entry_table(c: &mut Criterion) {
    c.bench_function("two_entry_table_ping_pong", |b| {
        let mut table = TwoEntryTable::new();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(table.record_write(ThreadId(i & 1)));
        });
    });
}

fn bench_directory(c: &mut Criterion) {
    c.bench_function("directory_access_hit", |b| {
        let mut dir = Directory::new(LatencyModel::default());
        let line = Addr(0x4000_0000).line(64);
        dir.access(CoreId(0), line, AccessKind::Write, 0);
        let mut now = 1_000u64;
        b.iter(|| {
            now += 4;
            black_box(dir.access(CoreId(0), line, AccessKind::Write, now));
        });
    });
    c.bench_function("directory_access_ping_pong", |b| {
        let mut dir = Directory::new(LatencyModel::default());
        let line = Addr(0x4000_0000).line(64);
        let mut now = 0u64;
        let mut core = 0u32;
        b.iter(|| {
            core ^= 1;
            now += 200;
            black_box(dir.access(CoreId(core), line, AccessKind::Write, now));
        });
    });
}

fn bench_shadow(c: &mut Criterion) {
    c.bench_function("shadow_lookup_hot", |b| {
        let mut shadow: ShadowMap<u64> = ShadowMap::new(64);
        let line = Addr(0x4000_0000).line(64);
        shadow.get_mut_or_default(line);
        b.iter(|| black_box(shadow.get(line)));
    });
}

fn bench_sampler(c: &mut Criterion) {
    c.bench_function("sampling_engine_observe", |b| {
        let mut engine = SamplingEngine::new(SamplerConfig::paper_default());
        engine.begin_thread(ThreadId(1));
        let mut instr = 0u64;
        b.iter(|| {
            instr += 7;
            let record = AccessRecord {
                thread: ThreadId(1),
                core: CoreId(1),
                addr: Addr(0x4000_0000),
                kind: AccessKind::Read,
                outcome: cheetah_sim::AccessOutcome::L1Hit,
                latency: 4,
                start: instr,
                instrs_before: instr,
                phase_index: 1,
                phase_kind: PhaseKind::Parallel,
            };
            black_box(engine.observe(&record));
        });
    });
}

fn bench_detector(c: &mut Criterion) {
    c.bench_function("detector_ingest", |b| {
        let mut space = AddressSpace::new();
        let addr = space
            .heap_mut()
            .alloc(ThreadId(0), 64, CallStack::unknown())
            .unwrap();
        let mut detector = Detector::new(DetectorConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let sample = Sample {
                thread: ThreadId((i & 1) as u32 + 1),
                addr: addr.offset((i & 1) * 4),
                kind: AccessKind::Write,
                latency: 150,
                time: i,
                phase_index: 1,
                phase_kind: PhaseKind::Parallel,
            };
            detector.ingest(&space, black_box(&sample));
        });
    });
}

criterion_group!(
    benches,
    bench_two_entry_table,
    bench_directory,
    bench_shadow,
    bench_sampler,
    bench_detector
);
criterion_main!(benches);
