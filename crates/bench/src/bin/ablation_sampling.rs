//! Ablation B (§2.1, §5) — sampling-period sweep on linear_regression:
//! how sparse can sampling get while still catching the significant
//! instance, and what does density cost?

use cheetah_bench::{paper_machine, row, run_cheetah, run_native};
use cheetah_core::CheetahConfig;
use cheetah_workloads::{find, AppConfig};

fn main() {
    let machine = paper_machine();
    let app = find("linear_regression").expect("registered");
    let config = AppConfig {
        threads: 16,
        scale: 0.5,
        fixed: false,
        seed: 1,
    };
    let native = run_native(&machine, app, &config).total_cycles;

    println!("Ablation B: sampling period sweep (linear_regression, 16 threads)");
    println!(
        "{}",
        row(["period", "samples", "detected", "predicted", "overhead"]
            .map(String::from)
            .as_ref())
    );
    for period in [128u64, 512, 2048, 8192, 32768, 65536] {
        let (report, profile) = run_cheetah(&machine, app, &config, CheetahConfig::scaled(period));
        let fs = profile.false_sharing();
        let detected = !fs.is_empty();
        let predicted = fs.first().map_or(1.0, |i| i.improvement());
        println!(
            "{}",
            row(&[
                period.to_string(),
                profile.total_samples.to_string(),
                detected.to_string(),
                format!("{predicted:.2}x"),
                format!(
                    "{:+.2}%",
                    (report.total_cycles as f64 / native as f64 - 1.0) * 100.0
                ),
            ])
        );
    }
    println!("\npaper: 'even with sparse samples (e.g., one out of 64K instructions)'");
    println!("significant instances are caught, given runs of sufficient length");
}
