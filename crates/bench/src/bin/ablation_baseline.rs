//! Ablation C (§6.1) — Cheetah vs. a Predator-like full-instrumentation
//! detector: Predator sees every access and so finds the minor instances
//! Cheetah misses, but at a multi-x runtime cost and with no fix-impact
//! prediction.

use cheetah_baselines::PredatorProfiler;
use cheetah_bench::{paper_machine, row, run_cheetah, run_native};
use cheetah_core::CheetahConfig;
use cheetah_workloads::{find, AppConfig};

fn main() {
    let machine = paper_machine();
    let config = AppConfig::with_threads(16);

    println!("Ablation C: Cheetah vs. Predator-like full instrumentation");
    println!(
        "{}",
        row([
            "app",
            "cheetah inst",
            "cheetah ovh",
            "predator inst",
            "predator ovh"
        ]
        .map(String::from)
        .as_ref())
    );
    for name in [
        "histogram",
        "reverse_index",
        "word_count",
        "linear_regression",
    ] {
        let app = find(name).expect("registered");
        let native = run_native(&machine, app, &config).total_cycles;

        let (ch_report, profile) = run_cheetah(&machine, app, &config, CheetahConfig::scaled(8192));
        let cheetah_found = profile.significant_false_sharing(1.1).len();
        let cheetah_ovh = ch_report.total_cycles as f64 / native as f64;

        let instance = app.build(&config);
        let mut predator = PredatorProfiler::new(Default::default(), &instance.space);
        let pr_report = machine.run(instance.program, &mut predator);
        let predator_found = predator
            .instances()
            .iter()
            .filter(|i| i.kind == cheetah_core::SharingKind::FalseSharing)
            .count();
        let predator_ovh = pr_report.total_cycles as f64 / native as f64;

        println!(
            "{}",
            row(&[
                name.to_string(),
                cheetah_found.to_string(),
                format!("{cheetah_ovh:.2}x"),
                predator_found.to_string(),
                format!("{predator_ovh:.2}x"),
            ])
        );
    }
    println!("\npaper: Predator finds the most instances at ~6x overhead;");
    println!("Cheetah reports only the significant ones at ~7%");
}
