//! Simulator throughput: single- vs. multi-shard wall-clock and
//! merged-event counts on the Table-2 matrix rows.
//!
//! For every `(workload, threads)` row of the validation matrix — plus the
//! `streaming_histogram` rows, the adversarial case for extent
//! classification — this harness times the core simulation pipeline of one
//! matrix cell (a native run and a profiled run of both the broken and the
//! repaired build) at several shard counts, and verifies on the way that
//! every shard count produces the bit-identical [`cheetah_sim::RunReport`]
//! (determinism is a hard failure here, not a statistic).
//!
//! Each cell runs as the **median of N repeats** (rep-major, so slow drift
//! cannot bias one shard count), and the [`cheetah_sim::metrics`] counters
//! are captured alongside wall-clock: `merged` (events the merge replays
//! individually), `folded` (accesses batch-folded by precompute and
//! settled-run folding), `surfaced` (observer deliveries) and `ordered`
//! (merged − surfaced: replay forced by coherence ordering alone — the
//! number extent classification exists to shrink). Event counts are
//! deterministic per (cell, shard count), so they are asserted stable
//! across repeats rather than aggregated.
//!
//! Emits a human table on stdout and machine-readable records to
//! `BENCH_sim.json` (current directory); each cell record carries the
//! sharded passes' wall-clock split as a nested `pass_breakdown` object
//! and the schedule policy the cell ran under (always `"observed"` here —
//! perturbed-schedule sweeps live in `schedule_explore`).
//! With `--check`, exits nonzero if any thread-count row is slower sharded
//! (shards >= 2) than single-threaded beyond the tolerance, or if any
//! sharded cell reports a zeroed three-pass breakdown (a silently
//! uninstrumented code path) — the CI regression gates for the sharded
//! execution path. `bench_compare --sim` adds the cross-commit gate on the
//! recorded event counts.
//!
//! With `--trace out.json` the first cell is re-run at the highest shard
//! count through a tracing [`ObsHandle`] and the phase / classify /
//! precompute / merge spans are exported as Perfetto-loadable Chrome
//! trace-event JSON (`--journal out.jsonl` likewise exports the flat JSONL
//! journal of the same run). `--locate-divergence` switches to a
//! diagnostic mode: every cell runs at shard counts {1, max} with
//! per-phase FNV state-hash witnesses enabled, and the harness reports the
//! first phase whose hashes differ — turning "bit-identity assert failed
//! somewhere" into a one-line diagnosis.
//!
//! Usage: `sim_throughput [--shards 1,2,4] [--reps N] [--tolerance 0.10]
//! [--check] [--trace out.json] [--journal out.jsonl]
//! [--locate-divergence]`

use cheetah_core::{CheetahConfig, CheetahProfiler};
use cheetah_obs::ObsHandle;
use cheetah_sim::{metrics, ExecMetrics, Machine, MachineConfig, NullObserver, RunReport};
use cheetah_workloads::{find, table2_matrix, SweepCell, SWEEP_THREAD_COUNTS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

/// One timed pipeline execution, reporting into `obs` (callers pass a
/// fresh registry per call, so concurrent bench invocations and the global
/// counters can never contaminate a cell's deltas); returns the profiled
/// broken-build report (the determinism witness), the wall-clock
/// nanoseconds and the event counters accumulated over the cell's four
/// runs.
fn run_cell(cell: &SweepCell, shards: u32, obs: &ObsHandle) -> (RunReport, u128, ExecMetrics) {
    let machine = Machine::new(
        MachineConfig::with_cores(cell.cores)
            .with_shards(shards)
            .with_obs(obs.clone()),
    );
    let cheetah = CheetahConfig::scaled(cell.period).with_obs(obs.clone());
    let broken = cell.app_config();
    let fixed = cheetah_workloads::AppConfig {
        fixed: true,
        ..broken
    };
    let before = metrics::snapshot_of(obs);
    let start = Instant::now();
    let mut witness = None;
    for (config, profiled) in [
        (&broken, false),
        (&broken, true),
        (&fixed, false),
        (&fixed, true),
    ] {
        let instance = cell.app.build(config);
        let report = if profiled {
            let mut profiler = CheetahProfiler::new(cheetah.clone(), &instance.space);
            machine.run(instance.program, &mut profiler)
        } else {
            machine.run(instance.program, &mut NullObserver)
        };
        if profiled && !config.fixed {
            witness = Some(report);
        }
    }
    let wall = start.elapsed().as_nanos();
    let events = metrics::snapshot_of(obs).since(&before);
    (witness.expect("broken profiled run executed"), wall, events)
}

/// Runs one profiled broken-build execution with per-phase state-hash
/// witnesses enabled; returns `(index, kind, witness)` per phase, in phase
/// order.
fn phase_hashes(cell: &SweepCell, shards: u32) -> Vec<(u64, String, u64)> {
    let obs = ObsHandle::fresh();
    let machine = Machine::new(
        MachineConfig::with_cores(cell.cores)
            .with_shards(shards)
            .with_obs(obs.clone())
            .with_witness(true),
    );
    let cheetah = CheetahConfig::scaled(cell.period).with_obs(obs.clone());
    let instance = cell.app.build(&cell.app_config());
    let mut profiler = CheetahProfiler::new(cheetah, &instance.space);
    machine.run(instance.program, &mut profiler);
    obs.spans_sorted_by_attr("phase", "index")
        .iter()
        .map(|span| {
            (
                span.attr_u64("index").expect("phase span carries index"),
                span.attr_str("kind").unwrap_or("?").to_string(),
                span.attr_u64("witness").expect("witness enabled"),
            )
        })
        .collect()
}

/// The `--locate-divergence` mode: reruns every cell at shard counts
/// {1, `max_shards`} and reports the first phase whose state hashes
/// differ. Returns the number of diverging cells.
fn locate_divergence(cells: &[SweepCell], max_shards: u32) -> usize {
    println!("Determinism divergence locator: per-phase state hashes, shards 1 vs {max_shards}\n");
    let mut diverging = 0;
    for cell in cells {
        let name = format!("{} threads={}", cell.app.name(), cell.threads);
        let base = phase_hashes(cell, 1);
        let sharded = phase_hashes(cell, max_shards);
        let diverged = base
            .iter()
            .zip(&sharded)
            .find(|(a, b)| a != b)
            .map(|(a, b)| (a.clone(), b.clone()));
        match diverged {
            Some(((index, kind, left), (_, _, right))) => {
                diverging += 1;
                println!(
                    "{name}: FIRST DIVERGENCE at phase #{index} ({kind}): \
                     {left:#018x} (1 shard) vs {right:#018x} ({max_shards} shards)"
                );
            }
            None if base.len() != sharded.len() => {
                diverging += 1;
                println!(
                    "{name}: phase count differs: {} (1 shard) vs {} ({max_shards} shards)",
                    base.len(),
                    sharded.len()
                );
            }
            None => println!("{name}: identical ({} phases)", base.len()),
        }
    }
    diverging
}

struct Record {
    workload: &'static str,
    threads: u32,
    period: u64,
    shards: u32,
    wall_ns: u128,
    speedup: f64,
    events: ExecMetrics,
}

impl Record {
    fn ordered_events(&self) -> u64 {
        self.events.merged_events - self.events.surfaced_events
    }
}

struct Args {
    shards: Vec<u32>,
    reps: u32,
    tolerance: f64,
    check: bool,
    trace: Option<String>,
    journal: Option<String>,
    locate: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        shards: vec![1, 2, 4],
        reps: 3,
        tolerance: 0.10,
        check: false,
        trace: None,
        journal: None,
        locate: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                let list = args.next().expect("--shards needs a list");
                parsed.shards = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("shard count"))
                    .collect();
            }
            "--reps" => parsed.reps = args.next().expect("--reps needs N").parse().expect("reps"),
            "--tolerance" => {
                parsed.tolerance = args
                    .next()
                    .expect("--tolerance needs a fraction")
                    .parse()
                    .expect("tolerance")
            }
            "--check" => parsed.check = true,
            "--trace" => parsed.trace = Some(args.next().expect("--trace needs a path")),
            "--journal" => parsed.journal = Some(args.next().expect("--journal needs a path")),
            "--locate-divergence" => parsed.locate = true,
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(
        parsed.shards.contains(&1),
        "--shards must include 1 (the baseline)"
    );
    assert!(parsed.reps >= 1, "--reps must be at least 1");
    parsed
}

/// Median of the recorded repeat times.
fn median(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2
    }
}

/// The bench rows: the matrix's `(workload, threads)` pairs at the first
/// period each, plus the streaming-classification stress rows.
fn bench_cells() -> Vec<SweepCell> {
    let mut cells: Vec<SweepCell> = Vec::new();
    for cell in table2_matrix() {
        if !cells
            .iter()
            .any(|c: &SweepCell| c.app.name() == cell.app.name() && c.threads == cell.threads)
        {
            cells.push(cell);
        }
    }
    let hist = find("streaming_histogram").expect("registered workload");
    for threads in SWEEP_THREAD_COUNTS {
        cells.push(SweepCell {
            app: hist,
            threads,
            period: 64,
            scale: 0.5,
            cores: 48,
            min_predicted_improvement: 1.005,
            max_iterations: 8,
        });
    }
    cells
}

/// Re-runs `cell` at `shards` through a fresh tracing registry and writes
/// the requested exports.
fn export_trace(cell: &SweepCell, shards: u32, trace: Option<&str>, journal: Option<&str>) {
    let obs = ObsHandle::fresh();
    run_cell(cell, shards, &obs);
    if let Some(path) = trace {
        std::fs::write(path, obs.chrome_trace()).expect("write chrome trace");
        println!("wrote {path} (load in https://ui.perfetto.dev)");
    }
    if let Some(path) = journal {
        std::fs::write(path, obs.jsonl()).expect("write jsonl journal");
        println!("wrote {path}");
    }
}

fn main() {
    let args = parse_args();
    let (shard_counts, reps, tolerance, check) =
        (args.shards, args.reps, args.tolerance, args.check);
    let cells = bench_cells();
    let max_shards = *shard_counts.iter().max().expect("nonempty shard list");

    if args.locate {
        let diverging = locate_divergence(&cells, max_shards);
        if diverging > 0 {
            std::process::exit(1);
        }
        return;
    }

    let mut records: Vec<Record> = Vec::new();
    for cell in &cells {
        // Median-of-reps, rep-major: interleaving shard counts within each
        // rep keeps slow drift (thermal, noisy neighbours) from biasing
        // one shard count's measurements against another's — and a median
        // is robust to the isolated stalls a loaded 1-CPU host produces.
        let mut walls: Vec<Vec<u128>> = vec![Vec::with_capacity(reps as usize); shard_counts.len()];
        let mut events: Vec<Vec<ExecMetrics>> =
            vec![Vec::with_capacity(reps as usize); shard_counts.len()];
        let mut baseline_report: Option<RunReport> = None;
        for _ in 0..reps {
            for (i, &shards) in shard_counts.iter().enumerate() {
                // A fresh untraced registry per execution: event deltas are
                // scoped to this cell, immune to the global registry's other
                // users (satellite fix for cross-run contamination).
                let (report, wall, cell_events) =
                    run_cell(cell, shards, &ObsHandle::fresh_untraced());
                walls[i].push(wall);
                if let Some(first) = events[i].first() {
                    assert_eq!(
                        (
                            first.merged_events,
                            first.folded_events,
                            first.surfaced_events
                        ),
                        (
                            cell_events.merged_events,
                            cell_events.folded_events,
                            cell_events.surfaced_events
                        ),
                        "{} threads={} shards={}: event counts changed between repeats",
                        cell.app.name(),
                        cell.threads,
                        shards
                    );
                }
                events[i].push(cell_events);
                match &baseline_report {
                    None => baseline_report = Some(report),
                    Some(baseline) => assert_eq!(
                        baseline,
                        &report,
                        "{} threads={} shards={}: sharded report diverged from 1-shard run",
                        cell.app.name(),
                        cell.threads,
                        shards
                    ),
                }
            }
        }
        let medians: Vec<u128> = walls.iter_mut().map(|w| median(w)).collect();
        let baseline_wall = medians[0];
        for (i, &shards) in shard_counts.iter().enumerate() {
            // Event counts are repeat-stable (asserted above); the pass
            // timings are noisy, so report their per-field medians to stay
            // consistent with the median wall-clock.
            let mut cell_events = events[i][0];
            let ns_median = |f: fn(&ExecMetrics) -> u64| -> u64 {
                let mut ns: Vec<u128> = events[i].iter().map(|e| u128::from(f(e))).collect();
                median(&mut ns) as u64
            };
            cell_events.classify_ns = ns_median(|e| e.classify_ns);
            cell_events.precompute_ns = ns_median(|e| e.precompute_ns);
            cell_events.merge_ns = ns_median(|e| e.merge_ns);
            records.push(Record {
                workload: cell.app.name(),
                threads: cell.threads,
                period: cell.period,
                shards,
                wall_ns: medians[i],
                speedup: baseline_wall as f64 / medians[i] as f64,
                events: cell_events,
            });
        }
    }

    println!("Simulator throughput: matrix-cell pipeline wall-clock by shard count");
    println!("(median of {reps} repeats; events: merged | ordered = merged - surfaced | folded)\n");
    println!(
        "{}",
        cheetah_bench::row(&[
            "workload".into(),
            "threads".into(),
            "shards".into(),
            "wall_ms".into(),
            "speedup".into(),
            "merged".into(),
            "ordered".into(),
            "folded".into(),
        ])
    );
    for r in &records {
        println!(
            "{}",
            cheetah_bench::row(&[
                r.workload.into(),
                r.threads.to_string(),
                r.shards.to_string(),
                format!("{:.1}", r.wall_ns as f64 / 1e6),
                format!("{:.2}x", r.speedup),
                r.events.merged_events.to_string(),
                r.ordered_events().to_string(),
                r.events.folded_events.to_string(),
            ])
        );
    }

    // Aggregate rows by thread count: the matrix-row view of the gate.
    let mut rows: BTreeMap<(u32, u32), (u128, u64, u64)> = BTreeMap::new();
    for r in &records {
        let row = rows.entry((r.threads, r.shards)).or_insert((0, 0, 0));
        row.0 += r.wall_ns;
        row.1 += r.events.merged_events;
        row.2 += r.ordered_events();
    }
    println!("\nPer-row aggregate (all workloads at a thread count):\n");
    println!(
        "{}",
        cheetah_bench::row(&[
            "threads".into(),
            "shards".into(),
            "wall_ms".into(),
            "speedup".into(),
            "ordered".into(),
        ])
    );
    let mut row_records: Vec<(u32, u32, u128, f64, u64, u64)> = Vec::new();
    let mut regressions: Vec<String> = Vec::new();
    for (&(threads, shards), &(wall, merged, ordered)) in &rows {
        let base = rows[&(threads, 1)].0;
        let speedup = base as f64 / wall as f64;
        row_records.push((threads, shards, wall, speedup, merged, ordered));
        println!(
            "{}",
            cheetah_bench::row(&[
                threads.to_string(),
                shards.to_string(),
                format!("{:.1}", wall as f64 / 1e6),
                format!("{:.2}x", speedup),
                ordered.to_string(),
            ])
        );
        if shards >= 2 && (wall as f64) > base as f64 * (1.0 + tolerance) {
            regressions.push(format!(
                "row threads={threads} shards={shards}: {:.1}ms vs {:.1}ms single-threaded \
                 ({speedup:.2}x, slower beyond {tolerance:.0}% tolerance)",
                wall as f64 / 1e6,
                base as f64 / 1e6,
                tolerance = tolerance * 100.0
            ));
        }
    }

    // Instrumentation gate: a sharded cell with a zeroed three-pass
    // breakdown means the classify/precompute/merge timers silently
    // stopped reporting — fail `--check` rather than publish hollow data.
    for r in &records {
        if r.shards >= 2
            && (r.events.classify_ns == 0 || r.events.precompute_ns == 0 || r.events.merge_ns == 0)
        {
            regressions.push(format!(
                "cell {} threads={} shards={}: pass_breakdown has a zero component \
                 (classify={} precompute={} merge={} ns) — sharded passes unreported",
                r.workload,
                r.threads,
                r.shards,
                r.events.classify_ns,
                r.events.precompute_ns,
                r.events.merge_ns
            ));
        }
    }

    let mut json = String::from("{\n  \"benchmark\": \"sim\",\n");
    let _ = writeln!(
        json,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"results\": [\n");
    let cell_records: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\"workload\": \"{}\", \"threads\": {}, \"period\": {}, \
                 \"shards\": {}, \"schedule\": \"observed\", \"wall_ns\": {}, \"speedup\": {:.4}, \
                 \"merged_events\": {}, \"folded_events\": {}, \"surfaced_events\": {}, \
                 \"ordered_events\": {}, \"pass_breakdown\": {{\"classify_ns\": {}, \
                 \"precompute_ns\": {}, \"merge_ns\": {}}}, \"identical\": true}}",
                r.workload,
                r.threads,
                r.period,
                r.shards,
                r.wall_ns,
                r.speedup,
                r.events.merged_events,
                r.events.folded_events,
                r.events.surfaced_events,
                r.ordered_events(),
                r.events.classify_ns,
                r.events.precompute_ns,
                r.events.merge_ns,
            )
        })
        .collect();
    json.push_str(&cell_records.join(",\n"));
    json.push_str("\n  ],\n  \"rows\": [\n");
    let row_json: Vec<String> = row_records
        .iter()
        .map(|(threads, shards, wall, speedup, merged, ordered)| {
            format!(
                "    {{\"threads\": {threads}, \"shards\": {shards}, \
                 \"wall_ns\": {wall}, \"speedup\": {speedup:.4}, \
                 \"merged_events\": {merged}, \"ordered_events\": {ordered}}}"
            )
        })
        .collect();
    json.push_str(&row_json.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let path = "BENCH_sim.json";
    let mut file = std::fs::File::create(path).expect("create BENCH_sim.json");
    file.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {path}");

    if args.trace.is_some() || args.journal.is_some() {
        export_trace(
            &cells[0],
            max_shards,
            args.trace.as_deref(),
            args.journal.as_deref(),
        );
    }

    if !regressions.is_empty() {
        eprintln!("\nsharded execution regressions:");
        for regression in &regressions {
            eprintln!("  {regression}");
        }
        if check {
            std::process::exit(1);
        }
    } else if check {
        println!(
            "check passed: no sharded row slower than single-threaded; \
             all sharded cells report a nonzero pass breakdown"
        );
    }
}
