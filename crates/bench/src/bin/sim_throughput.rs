//! Simulator throughput: single- vs. multi-shard wall-clock on the
//! Table-2 matrix rows.
//!
//! For every `(workload, threads)` row of the validation matrix this
//! harness times the core simulation pipeline of one matrix cell — a
//! native run and a profiled run of both the broken and the repaired
//! build — at several shard counts, and verifies on the way that every
//! shard count produces the bit-identical [`cheetah_sim::RunReport`]
//! (determinism is a hard failure here, not a statistic).
//!
//! Emits a human table on stdout and machine-readable records to
//! `BENCH_sim.json` (current directory). With `--check`, exits nonzero if
//! any thread-count row is slower sharded (shards >= 2) than
//! single-threaded beyond the tolerance — the CI regression gate for the
//! sharded execution path.
//!
//! Usage: `sim_throughput [--shards 1,2,4] [--reps N] [--tolerance 0.10]
//! [--check]`

use cheetah_core::{CheetahConfig, CheetahProfiler};
use cheetah_sim::{Machine, MachineConfig, NullObserver, RunReport};
use cheetah_workloads::{table2_matrix, SweepCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

/// One timed pipeline execution; returns the profiled broken-build report
/// (the determinism witness) and the wall-clock nanoseconds.
fn run_cell(cell: &SweepCell, shards: u32) -> (RunReport, u128) {
    let machine = Machine::new(MachineConfig::with_cores(cell.cores).with_shards(shards));
    let cheetah = CheetahConfig::scaled(cell.period);
    let broken = cell.app_config();
    let fixed = cheetah_workloads::AppConfig {
        fixed: true,
        ..broken
    };
    let start = Instant::now();
    let mut witness = None;
    for (config, profiled) in [
        (&broken, false),
        (&broken, true),
        (&fixed, false),
        (&fixed, true),
    ] {
        let instance = cell.app.build(config);
        let report = if profiled {
            let mut profiler = CheetahProfiler::new(cheetah.clone(), &instance.space);
            machine.run(instance.program, &mut profiler)
        } else {
            machine.run(instance.program, &mut NullObserver)
        };
        if profiled && !config.fixed {
            witness = Some(report);
        }
    }
    let wall = start.elapsed().as_nanos();
    (witness.expect("broken profiled run executed"), wall)
}

struct Record {
    workload: &'static str,
    threads: u32,
    period: u64,
    shards: u32,
    wall_ns: u128,
    speedup: f64,
}

fn parse_args() -> (Vec<u32>, u32, f64, bool) {
    let mut shards = vec![1u32, 2, 4];
    let mut reps = 3u32;
    let mut tolerance = 0.10f64;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                let list = args.next().expect("--shards needs a list");
                shards = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("shard count"))
                    .collect();
            }
            "--reps" => reps = args.next().expect("--reps needs N").parse().expect("reps"),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance needs a fraction")
                    .parse()
                    .expect("tolerance")
            }
            "--check" => check = true,
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(
        shards.contains(&1),
        "--shards must include 1 (the baseline)"
    );
    (shards, reps, tolerance, check)
}

fn main() {
    let (shard_counts, reps, tolerance, check) = parse_args();

    // One row per (workload, threads): the matrix's first period for the
    // workload (the second period only re-samples the same simulation).
    let mut cells: Vec<SweepCell> = Vec::new();
    for cell in table2_matrix() {
        if !cells
            .iter()
            .any(|c: &SweepCell| c.app.name() == cell.app.name() && c.threads == cell.threads)
        {
            cells.push(cell);
        }
    }

    let mut records: Vec<Record> = Vec::new();
    for cell in &cells {
        // Best-of-reps, rep-major: interleaving shard counts within each
        // rep keeps slow drift (thermal, noisy neighbours) from biasing
        // one shard count's measurements against another's.
        let mut best: Vec<u128> = vec![u128::MAX; shard_counts.len()];
        let mut baseline_report: Option<RunReport> = None;
        for _ in 0..reps {
            for (i, &shards) in shard_counts.iter().enumerate() {
                let (report, wall) = run_cell(cell, shards);
                best[i] = best[i].min(wall);
                match &baseline_report {
                    None => baseline_report = Some(report),
                    Some(baseline) => assert_eq!(
                        baseline,
                        &report,
                        "{} threads={} shards={}: sharded report diverged from 1-shard run",
                        cell.app.name(),
                        cell.threads,
                        shards
                    ),
                }
            }
        }
        let baseline_wall = best[0];
        for (i, &shards) in shard_counts.iter().enumerate() {
            records.push(Record {
                workload: cell.app.name(),
                threads: cell.threads,
                period: cell.period,
                shards,
                wall_ns: best[i],
                speedup: baseline_wall as f64 / best[i] as f64,
            });
        }
    }

    println!("Simulator throughput: matrix-cell pipeline wall-clock by shard count\n");
    println!(
        "{}",
        cheetah_bench::row(&[
            "workload".into(),
            "threads".into(),
            "shards".into(),
            "wall_ms".into(),
            "speedup".into(),
        ])
    );
    for r in &records {
        println!(
            "{}",
            cheetah_bench::row(&[
                r.workload.into(),
                r.threads.to_string(),
                r.shards.to_string(),
                format!("{:.1}", r.wall_ns as f64 / 1e6),
                format!("{:.2}x", r.speedup),
            ])
        );
    }

    // Aggregate rows by thread count: the matrix-row view of the gate.
    let mut rows: BTreeMap<(u32, u32), u128> = BTreeMap::new();
    for r in &records {
        *rows.entry((r.threads, r.shards)).or_insert(0) += r.wall_ns;
    }
    println!("\nPer-row aggregate (all workloads at a thread count):\n");
    println!(
        "{}",
        cheetah_bench::row(&[
            "threads".into(),
            "shards".into(),
            "wall_ms".into(),
            "speedup".into(),
        ])
    );
    let mut row_records: Vec<(u32, u32, u128, f64)> = Vec::new();
    let mut regressions: Vec<String> = Vec::new();
    for (&(threads, shards), &wall) in &rows {
        let base = rows[&(threads, 1)];
        let speedup = base as f64 / wall as f64;
        row_records.push((threads, shards, wall, speedup));
        println!(
            "{}",
            cheetah_bench::row(&[
                threads.to_string(),
                shards.to_string(),
                format!("{:.1}", wall as f64 / 1e6),
                format!("{:.2}x", speedup),
            ])
        );
        if shards >= 2 && (wall as f64) > base as f64 * (1.0 + tolerance) {
            regressions.push(format!(
                "row threads={threads} shards={shards}: {:.1}ms vs {:.1}ms single-threaded \
                 ({speedup:.2}x, slower beyond {tolerance:.0}% tolerance)",
                wall as f64 / 1e6,
                base as f64 / 1e6,
                tolerance = tolerance * 100.0
            ));
        }
    }

    let mut json = String::from("{\n  \"benchmark\": \"sim\",\n");
    let _ = writeln!(
        json,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    json.push_str("  \"results\": [\n");
    let cell_records: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\"workload\": \"{}\", \"threads\": {}, \"period\": {}, \
                 \"shards\": {}, \"wall_ns\": {}, \"speedup\": {:.4}, \"identical\": true}}",
                r.workload, r.threads, r.period, r.shards, r.wall_ns, r.speedup
            )
        })
        .collect();
    json.push_str(&cell_records.join(",\n"));
    json.push_str("\n  ],\n  \"rows\": [\n");
    let row_json: Vec<String> = row_records
        .iter()
        .map(|(threads, shards, wall, speedup)| {
            format!(
                "    {{\"threads\": {threads}, \"shards\": {shards}, \
                 \"wall_ns\": {wall}, \"speedup\": {speedup:.4}}}"
            )
        })
        .collect();
    json.push_str(&row_json.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let path = "BENCH_sim.json";
    let mut file = std::fs::File::create(path).expect("create BENCH_sim.json");
    file.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {path}");

    if !regressions.is_empty() {
        eprintln!("\nsharded execution slower than single-threaded:");
        for regression in &regressions {
            eprintln!("  {regression}");
        }
        if check {
            std::process::exit(1);
        }
    } else if check {
        println!("check passed: no sharded row slower than single-threaded");
    }
}
