//! Schedule-space exploration sweep: profile workloads under the observed
//! schedule plus seeded perturbations, unite the findings, flag the
//! instances the observed schedule hides, and assess worst-case repair.
//!
//! For each workload the harness profiles the broken build once per
//! schedule in [`cheetah_repair::schedule_set`] (observed + a shuffled and
//! a contention-maximizing policy per seed), unites the significant
//! false-sharing findings with [`cheetah_core::union_findings`], then runs
//! the worst-case fixpoint repair ([`cheetah_repair::converge_worst_case`])
//! and reports whether it converged to zero residue on *every* explored
//! schedule.
//!
//! Emits a human table on stdout and a machine-readable per-seed findings
//! artifact to `BENCH_schedule.json` (override with `--out`). With
//! `--check` (the CI smoke gate) every (workload, schedule) profile runs
//! twice and the run exits nonzero if any pair of runs diverges (the
//! determinism witness: perturbed schedules must be pure functions of
//! their seed), if a workload whose registry expectation is
//! schedule-hidden false sharing yields no hidden finding, or if its
//! worst-case repair fails to converge.
//!
//! Usage: `schedule_explore [--workloads a,b,c] [--seeds 1,2,3,4]
//! [--threads N] [--scale F] [--period P] [--out FILE] [--check]`
//! (`--schedule-seed` is accepted as an alias for `--seeds`)

use cheetah_core::{
    hidden_findings, union_findings, CheetahConfig, CheetahProfiler, ObjectOrigin, Profile,
};
use cheetah_repair::{converge_worst_case, schedule_set, ConvergeConfig, ValidationHarness};
use cheetah_sim::{Machine, MachineConfig, SchedulePolicy};
use cheetah_workloads::{find, App, AppConfig, Expectation};
use std::fmt::Write as _;
use std::io::Write as _;

const MIN_IMPROVEMENT: f64 = 1.005;

struct Args {
    workloads: Vec<&'static App>,
    seeds: Vec<u64>,
    threads: u32,
    scale: f64,
    period: u64,
    out: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        workloads: ["staggered_writers", "microbench", "linear_regression"]
            .iter()
            .map(|name| find(name).expect("registered workload"))
            .collect(),
        seeds: vec![1, 2, 3, 4],
        threads: 4,
        scale: 0.05,
        period: 256,
        out: "BENCH_schedule.json".to_string(),
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workloads" => {
                let list = args.next().expect("--workloads needs a list");
                parsed.workloads = list
                    .split(',')
                    .map(|name| {
                        find(name.trim()).unwrap_or_else(|| panic!("unknown workload {name}"))
                    })
                    .collect();
            }
            "--seeds" | "--schedule-seed" => {
                let list = args.next().expect("--seeds needs a list");
                parsed.seeds = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("seed"))
                    .collect();
            }
            "--threads" => {
                parsed.threads = args
                    .next()
                    .expect("--threads needs N")
                    .parse()
                    .expect("threads")
            }
            "--scale" => {
                parsed.scale = args
                    .next()
                    .expect("--scale needs a fraction")
                    .parse()
                    .expect("scale")
            }
            "--period" => {
                parsed.period = args
                    .next()
                    .expect("--period needs P")
                    .parse()
                    .expect("period")
            }
            "--out" => parsed.out = args.next().expect("--out needs a path"),
            "--check" => parsed.check = true,
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(!parsed.seeds.is_empty(), "need at least one seed");
    parsed
}

fn harness(period: u64) -> ValidationHarness {
    ValidationHarness::calibrated(
        Machine::new(MachineConfig::with_cores(8)),
        CheetahConfig::scaled(period),
    )
}

/// One profiled run; the rendered report is the determinism witness.
fn profile_under(
    harness: &ValidationHarness,
    app: &App,
    config: &AppConfig,
    policy: SchedulePolicy,
) -> Profile {
    let machine = Machine::new(harness.machine().config().clone().with_schedule(policy));
    let instance = app.build(config);
    let mut profiler = CheetahProfiler::new(harness.non_perturbing_config(), &instance.space);
    machine.run(instance.program, &mut profiler);
    profiler.finish()
}

fn main() {
    let args = parse_args();
    let schedules = schedule_set(&args.seeds);
    let harness = harness(args.period);
    let mut failures: Vec<String> = Vec::new();

    println!(
        "Schedule-space exploration: {} workload(s) x {} schedule(s) \
         (observed + shuffle/contend per seed {:?})\n",
        args.workloads.len(),
        schedules.len(),
        args.seeds
    );
    println!(
        "{}",
        cheetah_bench::row(&[
            "workload".into(),
            "schedule".into(),
            "significant".into(),
            "best".into(),
        ])
    );

    let mut json = String::from("{\n  \"benchmark\": \"schedule_explore\",\n");
    let _ = writeln!(json, "  \"seeds\": {:?},", args.seeds);
    let _ = writeln!(
        json,
        "  \"threads\": {}, \"scale\": {}, \"period\": {},",
        args.threads, args.scale, args.period
    );
    json.push_str("  \"workloads\": [\n");
    let mut workload_json: Vec<String> = Vec::new();

    for app in &args.workloads {
        let config = AppConfig {
            threads: args.threads,
            scale: args.scale,
            fixed: false,
            seed: 1,
        };
        let mut runs: Vec<(SchedulePolicy, Profile)> = Vec::new();
        let mut schedule_json: Vec<String> = Vec::new();
        for &policy in &schedules {
            let profile = profile_under(&harness, app, &config, policy);
            if args.check {
                // Determinism witness: a second run must be bit-identical.
                let again = profile_under(&harness, app, &config, policy);
                if profile.render_report() != again.render_report()
                    || profile.total_cycles != again.total_cycles
                    || profile.total_samples != again.total_samples
                {
                    failures.push(format!(
                        "{} under {policy}: two runs diverged \
                         ({} vs {} cycles, {} vs {} samples)",
                        app.name(),
                        profile.total_cycles,
                        again.total_cycles,
                        profile.total_samples,
                        again.total_samples
                    ));
                }
            }
            let significant = profile.significant_false_sharing(MIN_IMPROVEMENT);
            let best = significant
                .first()
                .map_or(0.0, |assessed| assessed.improvement());
            println!(
                "{}",
                cheetah_bench::row(&[
                    app.name().into(),
                    policy.to_string(),
                    significant.len().to_string(),
                    if significant.is_empty() {
                        "-".into()
                    } else {
                        format!("{best:.2}x")
                    },
                ])
            );
            schedule_json.push(format!(
                "        {{\"schedule\": \"{policy}\", \"significant\": {}, \
                 \"best_improvement\": {best:.4}, \"total_cycles\": {}, \
                 \"total_samples\": {}}}",
                significant.len(),
                profile.total_cycles,
                profile.total_samples
            ));
            runs.push((policy, profile));
        }

        let union = union_findings(&runs, MIN_IMPROVEMENT);
        let hidden = hidden_findings(&union);
        println!(
            "  -> union: {} finding(s), {} hidden from the observed schedule",
            union.len(),
            hidden.len()
        );
        if args.check && app.expectation() == Expectation::HiddenFalseSharing && hidden.is_empty() {
            failures.push(format!(
                "{}: expected a schedule-hidden finding, union found none",
                app.name()
            ));
        }

        let trace = converge_worst_case(
            &harness,
            app.name(),
            || app.build(&config),
            &ConvergeConfig::default(),
            &schedules,
        )
        .expect("worst-case repair failed to apply");
        print!("{trace}");
        println!();
        if args.check && !trace.converged {
            failures.push(format!(
                "{}: worst-case repair left residue on an explored schedule",
                app.name()
            ));
        }

        let finding_json: Vec<String> = union
            .iter()
            .map(|f| {
                let label = match &f.object.origin {
                    ObjectOrigin::Heap { callsite, .. } => callsite.to_string(),
                    ObjectOrigin::Global { name } => name.clone(),
                };
                format!(
                    "        {{\"label\": \"{label}\", \"worst_improvement\": {:.4}, \
                     \"worst_schedule\": \"{}\", \"hidden\": {}, \"sightings\": {}}}",
                    f.worst_improvement(),
                    f.worst_schedule(),
                    f.is_hidden(),
                    f.sightings.len()
                )
            })
            .collect();
        workload_json.push(format!(
            "    {{\"workload\": \"{}\", \"expectation\": \"{}\",\n      \"schedules\": [\n{}\n      ],\n      \
             \"union_findings\": [\n{}\n      ],\n      \"hidden_findings\": {}, \
             \"repair_converged\": {}, \"repair_iterations\": {}, \"repair_residual\": {}}}",
            app.name(),
            app.expectation(),
            schedule_json.join(",\n"),
            finding_json.join(",\n"),
            hidden.len(),
            trace.converged,
            trace.iterations.len(),
            trace.total_residual()
        ));
    }

    json.push_str(&workload_json.join(",\n"));
    json.push_str("\n  ]\n}\n");
    let mut file = std::fs::File::create(&args.out).expect("create findings artifact");
    file.write_all(json.as_bytes()).expect("write json");
    println!("wrote {}", args.out);

    if !failures.is_empty() {
        eprintln!("\nschedule exploration failures:");
        for failure in &failures {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    } else if args.check {
        println!(
            "check passed: all schedules deterministic, hidden expectations met, \
             worst-case repair converged"
        );
    }
}
