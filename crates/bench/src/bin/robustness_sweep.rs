//! Robustness sweep: the graceful-degradation guarantees as executable
//! checks.
//!
//! For each workload the harness first profiles a clean, unbounded run
//! (the baseline), then re-profiles under a matrix of seeded
//! [`FaultPlan`] presets (uniform and burst drops, bounded reorder,
//! field corruption, duplication, a combined "chaos" plan) and under
//! memory pressure (line-table capacity clamped to ¼ of the baseline's
//! peak detailed-line working set). It reports, per cell, what the
//! injector did, what the detector quarantined or evicted, and whether
//! the top finding survived.
//!
//! Emits a human table on stdout and a machine-readable artifact to
//! `BENCH_robust.json` (override with `--out`). With `--check` (the CI
//! gate) the run exits nonzero unless every guarantee holds:
//!
//! 1. **Bit-transparency** — the null fault plan and a capacity equal to
//!    the peak working set each reproduce the baseline report
//!    byte-for-byte.
//! 2. **Determinism** — every faulted cell run twice is bit-identical
//!    (faults are a pure function of `(plan, seed)`).
//! 3. **Shard independence** — the 20%-drop cell profiles identically
//!    under 1, 2 and 4 simulator shards.
//! 4. **Top-finding survival** — under ¼-capacity pressure the
//!    baseline's best false-sharing instance is still reported.
//! 5. **Degraded repair** — with 20% drops *and* ¼ capacity, the
//!    fixpoint repair loop still converges to zero residual.
//!
//! Usage: `robustness_sweep [--workloads a,b,c] [--threads N]
//! [--scale F] [--period P] [--seed S] [--out FILE] [--check]`

use cheetah_core::{
    CheetahConfig, CheetahProfiler, CorruptFields, FaultPlan, ObjectOrigin, Profile,
};
use cheetah_repair::{converge, ConvergeConfig, ValidationHarness};
use cheetah_sim::{Machine, MachineConfig};
use cheetah_workloads::{find, App, AppConfig};
use std::fmt::Write as _;
use std::io::Write as _;

const MIN_IMPROVEMENT: f64 = 1.005;

struct Args {
    workloads: Vec<&'static App>,
    threads: u32,
    scale: f64,
    period: u64,
    seed: u64,
    out: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        workloads: ["microbench", "linear_regression", "streamcluster"]
            .iter()
            .map(|name| find(name).expect("registered workload"))
            .collect(),
        threads: 4,
        scale: 0.05,
        period: 256,
        seed: 7,
        out: "BENCH_robust.json".to_string(),
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workloads" => {
                let list = args.next().expect("--workloads needs a list");
                parsed.workloads = list
                    .split(',')
                    .map(|name| {
                        find(name.trim()).unwrap_or_else(|| panic!("unknown workload {name}"))
                    })
                    .collect();
            }
            "--threads" => {
                parsed.threads = args
                    .next()
                    .expect("--threads needs N")
                    .parse()
                    .expect("threads")
            }
            "--scale" => {
                parsed.scale = args
                    .next()
                    .expect("--scale needs a fraction")
                    .parse()
                    .expect("scale")
            }
            "--period" => {
                parsed.period = args
                    .next()
                    .expect("--period needs P")
                    .parse()
                    .expect("period")
            }
            "--seed" => parsed.seed = args.next().expect("--seed needs S").parse().expect("seed"),
            "--out" => parsed.out = args.next().expect("--out needs a path"),
            "--check" => parsed.check = true,
            other => panic!("unknown argument {other}"),
        }
    }
    parsed
}

/// The fault-plan matrix, every preset reseeded to `seed`.
fn fault_presets(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    let base = FaultPlan::none();
    vec![
        (
            "drop10",
            FaultPlan {
                drop_per_mille: 100,
                ..base.clone()
            },
        ),
        (
            "drop20",
            FaultPlan {
                drop_per_mille: 200,
                ..base.clone()
            },
        ),
        (
            "burst",
            FaultPlan {
                burst_every: 64,
                burst_len: 8,
                ..base.clone()
            },
        ),
        (
            "reorder",
            FaultPlan {
                reorder_window: 16,
                ..base.clone()
            },
        ),
        (
            "corrupt",
            FaultPlan {
                corrupt_per_mille: 50,
                corrupt_fields: CorruptFields::all(),
                ..base.clone()
            },
        ),
        (
            "duplicate",
            FaultPlan {
                duplicate_per_mille: 50,
                ..base.clone()
            },
        ),
        (
            "chaos",
            FaultPlan {
                drop_per_mille: 100,
                reorder_window: 8,
                duplicate_per_mille: 30,
                corrupt_per_mille: 30,
                corrupt_fields: CorruptFields::all(),
                ..base.clone()
            },
        ),
    ]
    .into_iter()
    .map(|(name, plan)| (name, plan.with_seed(seed)))
    .collect()
}

fn harness_with(
    period: u64,
    configure: impl FnOnce(CheetahConfig) -> CheetahConfig,
) -> ValidationHarness {
    ValidationHarness::calibrated(
        Machine::new(MachineConfig::with_cores(8)),
        configure(CheetahConfig::scaled(period)),
    )
}

/// One profiled run; the rendered report is the determinism witness.
fn profile_under(
    harness: &ValidationHarness,
    app: &App,
    config: &AppConfig,
    shards: u32,
) -> Profile {
    let machine = Machine::new(harness.machine().config().clone().with_shards(shards));
    let instance = app.build(config);
    let mut profiler = CheetahProfiler::new(harness.non_perturbing_config(), &instance.space);
    machine.run(instance.program, &mut profiler);
    profiler.finish()
}

fn label_of(origin: &ObjectOrigin) -> String {
    match origin {
        ObjectOrigin::Heap { callsite, .. } => callsite.to_string(),
        ObjectOrigin::Global { name } => name.clone(),
    }
}

/// Labels of the significant false-sharing instances, best first.
fn significant_labels(profile: &Profile) -> Vec<String> {
    profile
        .significant_false_sharing(MIN_IMPROVEMENT)
        .iter()
        .map(|assessed| label_of(&assessed.instance.object.origin))
        .collect()
}

fn main() {
    let args = parse_args();
    let presets = fault_presets(args.seed);
    let mut failures: Vec<String> = Vec::new();

    println!(
        "Robustness sweep: {} workload(s) x {} fault preset(s) + memory \
         pressure (seed {})\n",
        args.workloads.len(),
        presets.len(),
        args.seed
    );
    println!(
        "{}",
        cheetah_bench::row(&[
            "workload".into(),
            "cell".into(),
            "injected".into(),
            "quarantined".into(),
            "evicted".into(),
            "significant".into(),
            "best".into(),
        ])
    );

    let mut json = String::from("{\n  \"benchmark\": \"robustness_sweep\",\n");
    let _ = writeln!(
        json,
        "  \"seed\": {}, \"threads\": {}, \"scale\": {}, \"period\": {},",
        args.seed, args.threads, args.scale, args.period
    );
    json.push_str("  \"workloads\": [\n");
    let mut workload_json: Vec<String> = Vec::new();

    for app in &args.workloads {
        let config = AppConfig {
            threads: args.threads,
            scale: args.scale,
            fixed: false,
            seed: 1,
        };

        // Baseline: clean plan, unbounded tables.
        let clean = harness_with(args.period, |cheetah| cheetah);
        let baseline = profile_under(&clean, app, &config, 1);
        let peak = baseline.ingest.peak_detailed_lines;
        let baseline_labels = significant_labels(&baseline);
        let row = |cell: &str, profile: &Profile| {
            let significant = profile.significant_false_sharing(MIN_IMPROVEMENT);
            let best = significant
                .first()
                .map_or(0.0, |assessed| assessed.improvement());
            println!(
                "{}",
                cheetah_bench::row(&[
                    app.name().into(),
                    cell.into(),
                    profile
                        .fault_counts
                        .map_or("-".into(), |counts| counts.injected().to_string()),
                    profile.ingest.quarantined.total().to_string(),
                    (profile.ingest.line_evictions + profile.ingest.object_evictions).to_string(),
                    significant.len().to_string(),
                    if significant.is_empty() {
                        "-".into()
                    } else {
                        format!("{best:.2}x")
                    },
                ])
            );
            best
        };
        row("baseline", &baseline);

        // Guarantee 1: bit-transparency of the null plan and of a capacity
        // that covers the whole working set.
        if args.check {
            let nulled = harness_with(args.period, |c| c.with_faults(FaultPlan::none()));
            let null_profile = profile_under(&nulled, app, &config, 1);
            if null_profile.render_report() != baseline.render_report() {
                failures.push(format!(
                    "{}: the null fault plan perturbed the report",
                    app.name()
                ));
            }
            if peak > 0 {
                let roomy = harness_with(args.period, |c| c.with_line_capacity(peak as usize));
                let roomy_profile = profile_under(&roomy, app, &config, 1);
                if roomy_profile.render_report() != baseline.render_report() {
                    failures.push(format!(
                        "{}: capacity == peak working set ({peak}) changed the report",
                        app.name()
                    ));
                }
            }
        }

        // Fault-preset cells.
        let mut cell_json: Vec<String> = Vec::new();
        for (cell, plan) in &presets {
            let faulted = harness_with(args.period, |c| c.with_faults(plan.clone()));
            let profile = profile_under(&faulted, app, &config, 1);
            if args.check {
                // Guarantee 2: two runs of a faulted cell are bit-identical.
                let again = profile_under(&faulted, app, &config, 1);
                if profile.render_report() != again.render_report()
                    || profile.fault_counts != again.fault_counts
                {
                    failures.push(format!(
                        "{} under {cell}: two seeded runs diverged",
                        app.name()
                    ));
                }
                // Guarantee 3: fault decisions ride the merged sample
                // stream, so shard count must not matter.
                if *cell == "drop20" {
                    for shards in [2u32, 4] {
                        let sharded = profile_under(&faulted, app, &config, shards);
                        if profile.render_report() != sharded.render_report()
                            || profile.fault_counts != sharded.fault_counts
                        {
                            failures.push(format!(
                                "{} under {cell}: {shards}-shard run diverged from 1-shard",
                                app.name()
                            ));
                        }
                    }
                }
            }
            let best = row(cell, &profile);
            let counts = profile.fault_counts.expect("faulted cell has an injector");
            cell_json.push(format!(
                "        {{\"cell\": \"{cell}\", \"injected\": {}, \"dropped\": {}, \
                 \"quarantined\": {}, \"significant\": {}, \"best_improvement\": {best:.4}}}",
                counts.injected(),
                counts.dropped + counts.burst_dropped + counts.truncated,
                profile.ingest.quarantined.total(),
                profile.significant_false_sharing(MIN_IMPROVEMENT).len(),
            ));
        }

        // Memory pressure: clamp the line table to ¼ of the baseline's
        // peak detailed-line working set.
        let capacity = (peak.div_ceil(4)).max(1) as usize;
        let pressured_harness = harness_with(args.period, |c| c.with_line_capacity(capacity));
        let pressured = profile_under(&pressured_harness, app, &config, 1);
        let best = row(&format!("cap={capacity}"), &pressured);
        let survived = match baseline_labels.first() {
            Some(top) => significant_labels(&pressured).contains(top),
            None => true,
        };
        // Guarantee 4: the hottest finding survives eviction pressure.
        if args.check && !survived {
            failures.push(format!(
                "{}: top finding lost under ¼-capacity pressure (capacity {capacity})",
                app.name()
            ));
        }

        // Guarantee 5: degraded repair. 20% drops and ¼ capacity at once,
        // and the fixpoint loop must still reach zero residual.
        let degraded_plan = FaultPlan::drops(200).with_seed(args.seed);
        let degraded = harness_with(args.period, |c| {
            c.with_faults(degraded_plan).with_line_capacity(capacity)
        });
        let trace = converge(
            &degraded,
            app.name(),
            || app.build(&config),
            &ConvergeConfig::default(),
        )
        .expect("synthesized repairs must apply");
        println!(
            "  -> degraded repair (drop20, cap={capacity}): {} in {} iteration(s), residual {}",
            if trace.converged {
                "converged"
            } else {
                "did NOT converge"
            },
            trace.iterations.len(),
            trace.residual_significant
        );
        println!();
        if args.check && !trace.converged {
            failures.push(format!(
                "{}: repair under drop20 + ¼ capacity left residue",
                app.name()
            ));
        }

        workload_json.push(format!(
            "    {{\"workload\": \"{}\", \"peak_detailed_lines\": {peak},\n      \
             \"cells\": [\n{}\n      ],\n      \
             \"pressure\": {{\"line_capacity\": {capacity}, \"line_evictions\": {}, \
             \"repromotions\": {}, \"best_improvement\": {best:.4}, \
             \"top_finding_survived\": {survived}}},\n      \
             \"degraded_repair\": {{\"converged\": {}, \"iterations\": {}, \
             \"residual\": {}}}}}",
            app.name(),
            cell_json.join(",\n"),
            pressured.ingest.line_evictions,
            pressured.ingest.line_repromotions,
            trace.converged,
            trace.iterations.len(),
            trace.residual_significant
        ));
    }

    json.push_str(&workload_json.join(",\n"));
    json.push_str("\n  ]\n}\n");
    let mut file = std::fs::File::create(&args.out).expect("create robustness artifact");
    file.write_all(json.as_bytes()).expect("write json");
    println!("wrote {}", args.out);

    if !failures.is_empty() {
        eprintln!("\nrobustness failures:");
        for failure in &failures {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    } else if args.check {
        println!(
            "check passed: transparent when idle, deterministic per seed, \
             shard-independent, top finding survives ¼ capacity, degraded \
             repair converges"
        );
    }
}
