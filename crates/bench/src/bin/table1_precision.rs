//! Table 1 — precision of the fix-impact assessment: Cheetah's predicted
//! improvement vs. the real improvement measured by actually applying the
//! paper's padding fix, at 2/4/8/16 threads.

use cheetah_bench::{paper_machine, row, run_cheetah, run_native};
use cheetah_core::CheetahConfig;
use cheetah_workloads::{find, AppConfig};

fn main() {
    let machine = paper_machine();
    println!("Table 1: precision of assessment");
    println!(
        "{}",
        row(["application", "threads", "predict", "real", "diff"]
            .map(String::from)
            .as_ref())
    );
    for name in ["linear_regression", "streamcluster"] {
        let app = find(name).expect("registered");
        for threads in [16u32, 8, 4, 2] {
            let config = AppConfig {
                threads,
                scale: 0.5,
                fixed: false,
                seed: 1,
            };
            let broken = run_native(&machine, app, &config).total_cycles;
            let fixed = run_native(&machine, app, &config.clone().fixed()).total_cycles;
            let real = broken as f64 / fixed as f64;
            // Denser sampling for shorter runs, with costs scaled alongside
            // the period so perturbation stays at deployment levels.
            let period = match (name, threads) {
                ("streamcluster", t) if t <= 4 => 64,
                ("streamcluster", _) => 128,
                (_, t) if t >= 8 => 256,
                _ => 512,
            };
            let (_, profile) = run_cheetah(&machine, app, &config, CheetahConfig::scaled(period));
            let predicted = profile
                .false_sharing()
                .first()
                .map_or(1.0, |i| i.improvement());
            println!(
                "{}",
                row(&[
                    name.to_string(),
                    threads.to_string(),
                    format!("{predicted:.3}x"),
                    format!("{real:.3}x"),
                    format!("{:+.1}%", (predicted / real - 1.0) * 100.0),
                ])
            );
        }
    }
    println!("\npaper: |diff| < 10% for every configuration");
}
