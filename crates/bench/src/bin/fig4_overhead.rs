//! Fig. 4 — Cheetah's runtime overhead across the 17 evaluated
//! applications, measured in simulated time (trap + per-thread PMU setup
//! costs charged by the sampling engine; period and costs scaled together,
//! see `SamplerConfig::scaled_to_period`).

use cheetah_bench::{paper_machine, row, run_cheetah, run_native};
use cheetah_core::CheetahConfig;
use cheetah_workloads::{evaluated_apps, AppConfig};

fn main() {
    let machine = paper_machine();
    let config = AppConfig::with_threads(16);
    // 64K / 8: the workloads are shrunk ~8x relative to 5-second runs.
    let cheetah = CheetahConfig::scaled(8192);

    println!("Fig. 4: normalized runtime under Cheetah (pthreads = 1.00)");
    println!(
        "{}",
        row(["app", "native", "cheetah", "normalized", "samples"]
            .map(String::from)
            .as_ref())
    );
    let mut ratios = Vec::new();
    let mut ratios_excl = Vec::new();
    for app in evaluated_apps() {
        let native = run_native(&machine, app, &config).total_cycles;
        let (profiled, profile) = run_cheetah(&machine, app, &config, cheetah.clone());
        let ratio = profiled.total_cycles as f64 / native as f64;
        ratios.push(ratio);
        if app.name() != "kmeans" && app.name() != "x264" {
            ratios_excl.push(ratio);
        }
        println!(
            "{}",
            row(&[
                app.name().to_string(),
                native.to_string(),
                profiled.total_cycles.to_string(),
                format!("{ratio:.3}"),
                profile.total_samples.to_string(),
            ])
        );
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let avg_excl = ratios_excl.iter().sum::<f64>() / ratios_excl.len() as f64;
    println!("\nAVERAGE: {avg:.3} (paper: ~1.07)");
    println!("AVERAGE excl. kmeans/x264: {avg_excl:.3} (paper: ~1.04)");
}
