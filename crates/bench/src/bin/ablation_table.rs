//! Ablation A (§2.3) — Cheetah's constant-space two-entry table vs. Zhao
//! et al.'s per-thread ownership bitmap: do they agree on which objects are
//! significant, and what does per-line state cost as threads grow?

use cheetah_baselines::OwnershipDetector;
use cheetah_bench::{paper_machine, row};
use cheetah_core::{Detector, DetectorConfig};
use cheetah_pmu::{Sample, SamplerConfig, SimPmu};
use cheetah_workloads::{find, AppConfig};

fn main() {
    let machine = paper_machine();
    let app = find("linear_regression").expect("registered");

    println!("Ablation A: two-entry table vs. ownership bitmap");
    println!(
        "{}",
        row(["threads", "table inval", "bitmap inval", "agree?"]
            .map(String::from)
            .as_ref())
    );
    for threads in [2u32, 4, 8, 16] {
        let config = AppConfig {
            threads,
            scale: 0.25,
            fixed: false,
            seed: 1,
        };
        let instance = app.build(&config);
        let mut samples: Vec<Sample> = Vec::new();
        let mut pmu = SimPmu::new(SamplerConfig::scaled_to_period(256), |s| samples.push(s))
            .expect("nonzero period");
        machine.run(instance.program, &mut pmu);

        let mut table = Detector::new(DetectorConfig::default());
        let mut bitmap = OwnershipDetector::new(64);
        for sample in &samples {
            table.ingest(&instance.space, sample);
            bitmap.ingest(sample);
        }
        let table_inval: u64 = table.objects().map(|o| o.invalidations).sum();
        let bitmap_inval = bitmap.total_invalidations();
        let ratio = table_inval as f64 / bitmap_inval.max(1) as f64;
        println!(
            "{}",
            row(&[
                threads.to_string(),
                table_inval.to_string(),
                bitmap_inval.to_string(),
                (if (0.5..=1.5).contains(&ratio) {
                    "yes"
                } else {
                    "no"
                })
                .to_string(),
            ])
        );
    }

    println!("\nPer-line detection state (bytes):");
    println!(
        "{}",
        row(["threads", "two-entry table", "ownership bitmap"]
            .map(String::from)
            .as_ref())
    );
    for threads in [2u32, 32, 64, 256, 1024] {
        let bitmap = OwnershipDetector::new(threads);
        println!(
            "{}",
            row(&[
                threads.to_string(),
                // Two entries of (thread id, kind): constant.
                std::mem::size_of::<cheetah_core::TwoEntryTable>().to_string(),
                bitmap.per_line_bytes().to_string(),
            ])
        );
    }
    println!("\npaper: the bitmap 'cannot easily scale to more than 32 threads'");
}
