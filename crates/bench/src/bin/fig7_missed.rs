//! Fig. 7 — the false-sharing instances Cheetah misses (histogram,
//! reverse_index, word_count) have negligible performance impact, so
//! missing them saves programmer effort rather than costing performance.

use cheetah_bench::{paper_machine, row, run_cheetah, run_native};
use cheetah_core::CheetahConfig;
use cheetah_workloads::{find, AppConfig};

fn main() {
    let machine = paper_machine();
    let config = AppConfig::with_threads(16);

    println!("Fig. 7: impact of the minor instances Cheetah misses");
    println!(
        "{}",
        row(
            ["app", "with-FS", "no-FS", "improvement", "cheetah reports"]
                .map(String::from)
                .as_ref()
        )
    );
    for name in ["histogram", "reverse_index", "word_count"] {
        let app = find(name).expect("registered");
        let broken = run_native(&machine, app, &config).total_cycles;
        let fixed = run_native(&machine, app, &config.clone().fixed()).total_cycles;
        // Cheetah at deployment sampling rate: are the instances reported?
        let (_, profile) = run_cheetah(&machine, app, &config, CheetahConfig::scaled(8192));
        let significant = profile.significant_false_sharing(1.1).len();
        println!(
            "{}",
            row(&[
                name.to_string(),
                broken.to_string(),
                fixed.to_string(),
                format!("{:.4}x", broken as f64 / fixed as f64),
                significant.to_string(),
            ])
        );
    }
    println!("\npaper: fixing these yields <0.2%; Cheetah reports none of them");
}
