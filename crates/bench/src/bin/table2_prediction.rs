//! Table 2 — predicted vs. actual improvement of *synthesized* fixes.
//!
//! For every repair target (the apps with significant false sharing), the
//! harness profiles the broken build, synthesizes a fix from the profile
//! alone, applies it, and measures the real speedup next to Cheetah's
//! prediction. Also measures the detector's runtime overhead at the
//! experiment's sampling rate.
//!
//! Emits a human table on stdout and machine-readable numbers to
//! `BENCH_repair.json` (current directory) so future changes can be
//! compared against this baseline.

use cheetah_core::{CheetahConfig, CheetahProfiler};
use cheetah_repair::{InstanceValidation, ValidationHarness};
use cheetah_sim::{Machine, MachineConfig, NullObserver};
use cheetah_workloads::{repair_targets, AppConfig};
use std::fmt::Write as _;
use std::io::Write as _;

struct Case {
    name: &'static str,
    threads: u32,
    scale: f64,
    period: u64,
    cores: u32,
}

struct Row {
    case: Case,
    /// One entry per validated instance; empty when nothing was detected.
    instances: Vec<InstanceValidation>,
    combined_actual: f64,
    detector_overhead: f64,
    broken_cycles: u64,
    samples: u64,
}

fn measure(case: Case) -> Row {
    let app = cheetah_workloads::find(case.name).expect("registered app");
    let config = AppConfig {
        threads: case.threads,
        scale: case.scale,
        fixed: false,
        seed: 1,
    };
    let machine = Machine::new(MachineConfig::with_cores(case.cores));
    let cheetah = CheetahConfig::scaled(case.period);

    // Detector overhead: profiled vs. native runtime of the broken build.
    let native = machine
        .run(app.build(&config).program, &mut NullObserver)
        .total_cycles;
    let instance = app.build(&config);
    let mut profiler = CheetahProfiler::new(cheetah.clone(), &instance.space);
    let profiled = machine.run(instance.program, &mut profiler).total_cycles;
    drop(profiler);
    let detector_overhead = profiled as f64 / native as f64 - 1.0;

    // Prediction validation through the synthesized repair.
    let harness = ValidationHarness::calibrated(machine, cheetah);
    let outcome = harness
        .validate(case.name, || app.build(&config))
        .expect("synthesized repair must apply");
    Row {
        case,
        combined_actual: outcome.combined_actual(),
        instances: outcome.instances,
        detector_overhead,
        broken_cycles: outcome.broken_cycles,
        samples: outcome.total_samples,
    }
}

fn main() {
    let cases: Vec<Case> = repair_targets()
        .map(|app| match app.name() {
            "microbench" => Case {
                name: "microbench",
                threads: 8,
                scale: 0.05,
                period: 256,
                cores: 8,
            },
            "linear_regression" => Case {
                name: "linear_regression",
                threads: 16,
                scale: 0.25,
                period: 128,
                cores: 48,
            },
            other => Case {
                name: other,
                threads: 8,
                scale: 0.5,
                period: 64,
                cores: 48,
            },
        })
        .collect();

    let rows: Vec<Row> = cases.into_iter().map(measure).collect();

    println!("Table 2: predicted vs. actual improvement of synthesized fixes\n");
    println!(
        "{}",
        cheetah_bench::row(&[
            "workload".into(),
            "threads".into(),
            "instance".into(),
            "predicted".into(),
            "actual".into(),
            "error".into(),
            "overhead".into(),
        ])
    );
    for row in &rows {
        if row.instances.is_empty() {
            println!(
                "{}",
                cheetah_bench::row(&[
                    row.case.name.into(),
                    row.case.threads.to_string(),
                    "(none)".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("{:.1}%", row.detector_overhead * 100.0),
                ])
            );
        }
        for instance in &row.instances {
            println!(
                "{}",
                cheetah_bench::row(&[
                    row.case.name.into(),
                    row.case.threads.to_string(),
                    instance.plan.label.clone(),
                    format!("{:.2}x", instance.predicted),
                    format!("{:.2}x", instance.actual),
                    format!("{:.1}%", instance.relative_error() * 100.0),
                    format!("{:.1}%", row.detector_overhead * 100.0),
                ])
            );
        }
    }

    // One JSON record per validated instance, plus per-workload context,
    // so cross-PR tracking never loses instances behind the top one.
    let mut records: Vec<String> = Vec::new();
    for row in &rows {
        for instance in &row.instances {
            let mut record = String::new();
            let _ = write!(
                record,
                "    {{\"workload\": \"{}\", \"threads\": {}, \"scale\": {}, \"period\": {}, \
                 \"instance\": \"{}\", \"strategy\": \"{}\", \
                 \"predicted_speedup\": {:.6}, \"actual_speedup\": {:.6}, \
                 \"prediction_error\": {:.6}, \"combined_actual_speedup\": {:.6}, \
                 \"detector_overhead\": {:.6}, \"broken_cycles\": {}, \
                 \"repaired_cycles\": {}, \"samples\": {}}}",
                row.case.name,
                row.case.threads,
                row.case.scale,
                row.case.period,
                instance.plan.label,
                instance.plan.strategy,
                instance.predicted,
                instance.actual,
                instance.relative_error(),
                row.combined_actual,
                row.detector_overhead,
                row.broken_cycles,
                instance.repaired_cycles,
                row.samples,
            );
            records.push(record);
        }
    }
    let mut json = String::from("{\n  \"benchmark\": \"repair\",\n  \"results\": [\n");
    json.push_str(&records.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let path = "BENCH_repair.json";
    let mut file = std::fs::File::create(path).expect("create BENCH_repair.json");
    file.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {path}");
}
