//! Table 2, scaled up — the prediction-validation *matrix*.
//!
//! The paper validates predicted vs. real improvement at one configuration
//! per workload; this harness sweeps every cell of
//! [`cheetah_workloads::table2_matrix`] (workload × thread count ×
//! sampling period) and, in each cell, runs the full fixpoint repair loop
//! ([`cheetah_repair::converge()`]): profile, apply the top-ranked
//! synthesized fix, re-profile, repeat to convergence. Each cell records
//! the loop's first fix (predicted vs. measured improvement of that step),
//! how many iterations convergence took, and the detector's runtime
//! overhead at the cell's sampling rate.
//!
//! Emits a human table on stdout and machine-readable records to
//! `BENCH_repair.json` (current directory); CI regenerates the file and
//! compares per-cell prediction errors against the committed baseline via
//! the `bench_compare` bin.
//!
//! With `--trace out.json` every cell's phase, shard-pass, and
//! converge-iteration spans are collected in one tracing [`ObsHandle`] and
//! exported as Perfetto-loadable Chrome trace-event JSON after the matrix
//! completes. The default (untraced) path is byte-identical to before —
//! spans on the global registry are no-ops.

use cheetah_core::{CheetahConfig, CheetahProfiler};
use cheetah_obs::ObsHandle;
use cheetah_repair::{converge, ConvergeConfig, ConvergenceTrace, ValidationHarness};
use cheetah_sim::{Machine, MachineConfig, NullObserver};
use cheetah_workloads::{table2_matrix, SweepCell};
use std::fmt::Write as _;
use std::io::Write as _;

struct Row {
    cell: SweepCell,
    trace: ConvergenceTrace,
    detector_overhead: f64,
}

fn measure(cell: SweepCell, shards: u32, obs: &ObsHandle) -> Row {
    let config = cell.app_config();
    let machine = Machine::new(
        MachineConfig::with_cores(cell.cores)
            .with_shards(shards)
            .with_obs(obs.clone()),
    );
    let cheetah = CheetahConfig::scaled(cell.period).with_obs(obs.clone());

    // Detector overhead: profiled (with real trap/setup costs) vs. native
    // runtime of the broken build.
    let native = machine
        .run(cell.app.build(&config).program, &mut NullObserver)
        .total_cycles;
    let instance = cell.app.build(&config);
    let mut profiler = CheetahProfiler::new(cheetah.clone(), &instance.space);
    let profiled = machine.run(instance.program, &mut profiler).total_cycles;
    drop(profiler);
    let detector_overhead = profiled as f64 / native as f64 - 1.0;

    // The fixpoint loop: fix, re-profile, repeat until nothing significant
    // remains. Cross-object cells run exhaustively with a thread-scaled
    // iteration bound (see `cheetah_workloads::sweep`).
    let harness = ValidationHarness::calibrated(machine, cheetah);
    let trace = converge(
        &harness,
        cell.app.name(),
        || cell.app.build(&config),
        &ConvergeConfig {
            max_iterations: cell.max_iterations,
            min_predicted_improvement: cell.min_predicted_improvement,
        },
    )
    .expect("synthesized repairs must apply");
    Row {
        cell,
        trace,
        detector_overhead,
    }
}

fn main() {
    // `--shards N`: host threads for sharded simulator execution (see
    // `MachineConfig::shards`; 0 = auto, 1 = classic loop). Results are
    // bit-identical for every value — only wall-clock changes — so the
    // default exercises the sharded path.
    let mut shards = 4u32;
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                shards = args
                    .next()
                    .expect("--shards needs a count")
                    .parse()
                    .expect("shard count");
            }
            "--trace" => trace_path = Some(args.next().expect("--trace needs a path")),
            other => panic!("unknown argument {other}"),
        }
    }
    let obs = if trace_path.is_some() {
        ObsHandle::fresh()
    } else {
        ObsHandle::global()
    };
    let rows: Vec<Row> = table2_matrix()
        .into_iter()
        .map(|cell| measure(cell, shards, &obs))
        .collect();

    println!("Table 2 matrix: fixpoint repair, predicted vs. measured per cell\n");
    println!(
        "{}",
        cheetah_bench::row(&[
            "workload".into(),
            "threads".into(),
            "period".into(),
            "iters".into(),
            "instance".into(),
            "predicted".into(),
            "actual".into(),
            "error".into(),
            "total".into(),
            "overhead".into(),
        ])
    );
    for row in &rows {
        let first = row.trace.iterations.first();
        println!(
            "{}",
            cheetah_bench::row(&[
                row.cell.app.name().into(),
                row.cell.threads.to_string(),
                row.cell.period.to_string(),
                row.trace.iterations.len().to_string(),
                first.map_or("(none)".into(), |i| i.label.clone()),
                first.map_or("-".into(), |i| format!("{:.2}x", i.predicted)),
                first.map_or("-".into(), |i| format!("{:.2}x", i.measured)),
                first.map_or("-".into(), |i| format!(
                    "{:.1}%",
                    i.relative_error() * 100.0
                )),
                format!("{:.2}x", row.trace.total_improvement()),
                format!("{:.1}%", row.detector_overhead * 100.0),
            ])
        );
    }

    // One JSON record per matrix cell.
    let mut records: Vec<String> = Vec::new();
    for row in &rows {
        let first = row.trace.iterations.first();
        let mut record = String::new();
        let _ = write!(
            record,
            "    {{\"workload\": \"{}\", \"threads\": {}, \"scale\": {}, \"period\": {}, \
             \"iterations\": {}, \"converged\": {}, \"residual\": {}, \
             \"instance\": \"{}\", \"strategy\": \"{}\", \"co_residents\": {}, \
             \"predicted_speedup\": {:.6}, \"actual_speedup\": {:.6}, \
             \"prediction_error\": {:.6}, \"worst_step_error\": {:.6}, \
             \"total_measured_speedup\": {:.6}, \
             \"detector_overhead\": {:.6}, \"broken_cycles\": {}, \
             \"repaired_cycles\": {}, \"samples\": {}}}",
            row.cell.app.name(),
            row.cell.threads,
            row.cell.scale,
            row.cell.period,
            row.trace.iterations.len(),
            row.trace.converged,
            row.trace.residual_significant,
            first.map_or("(none)".to_string(), |i| i.label.clone()),
            first.map_or("-".to_string(), |i| i.strategy.to_string()),
            first.map_or(1, |i| i.co_residents),
            first.map_or(0.0, |i| i.predicted),
            first.map_or(0.0, |i| i.measured),
            // First-fix error matches the predicted/actual pair above;
            // worst_step_error covers every iteration of the cell's loop.
            first.map_or(0.0, |i| i.relative_error()),
            row.trace.worst_error(),
            row.trace.total_improvement(),
            row.detector_overhead,
            row.trace.initial_cycles,
            row.trace.final_cycles,
            row.trace.initial_samples,
        );
        records.push(record);
    }
    let mut json = String::from("{\n  \"benchmark\": \"repair\",\n  \"results\": [\n");
    json.push_str(&records.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let path = "BENCH_repair.json";
    let mut file = std::fs::File::create(path).expect("create BENCH_repair.json");
    file.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {path}");

    if let Some(trace) = trace_path {
        std::fs::write(&trace, obs.chrome_trace()).expect("write chrome trace");
        println!("wrote {trace} (load in https://ui.perfetto.dev)");
    }
}
