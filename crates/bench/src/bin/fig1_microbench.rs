//! Fig. 1 — the false-sharing microbenchmark: linear-speedup expectation
//! vs. reality on an 8-core machine, plus the padded (fixed) build.

use cheetah_bench::{row, run_native};
use cheetah_sim::{Machine, MachineConfig};
use cheetah_workloads::{find, AppConfig};

fn main() {
    let machine = Machine::new(MachineConfig::with_cores(8));
    let app = find("microbench").expect("registered");
    let serial = run_native(&machine, app, &AppConfig::with_threads(1)).total_cycles;

    println!("Fig. 1: false-sharing microbenchmark (8-core machine)");
    println!(
        "{}",
        row(["threads", "expectation", "reality", "gap", "fixed build"]
            .map(String::from)
            .as_ref())
    );
    for threads in [1u32, 2, 4, 8] {
        let reality = run_native(&machine, app, &AppConfig::with_threads(threads)).total_cycles;
        let fixed =
            run_native(&machine, app, &AppConfig::with_threads(threads).fixed()).total_cycles;
        let expectation = serial / u64::from(threads);
        println!(
            "{}",
            row(&[
                threads.to_string(),
                expectation.to_string(),
                reality.to_string(),
                format!("{:.1}x", reality as f64 / expectation as f64),
                fixed.to_string(),
            ])
        );
    }
    println!("\npaper: reality ~13x the expectation at 8 threads");
}
