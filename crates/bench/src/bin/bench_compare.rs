//! Regression gates for the committed benchmark baselines.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json> [--tolerance-points 5]
//! bench_compare --sim <baseline.json> <fresh.json> [--tolerance-points 10]
//! bench_compare --robust <baseline.json> <fresh.json> [--tolerance-points 10]
//! ```
//!
//! Default mode matches `BENCH_repair.json` cells between a committed
//! baseline and a freshly generated file by
//! `(workload, threads, period, instance)` and exits nonzero if any cell's
//! relative prediction error regressed by more than the tolerance
//! (percentage points), or if a baseline cell vanished from the fresh
//! matrix. New cells (matrix growth) only warn.
//!
//! `--sim` mode gates `BENCH_sim.json` instead: for the streaming rows
//! (`streamcluster`, `streaming_histogram` — the workloads extent
//! classification exists for) every sharded cell must not replay more
//! order-dependent events (`ordered_events`) than the recorded baseline
//! allows, and must not run slower than the classic single-threaded loop
//! (speedup below 1 beyond the tolerance). Event counts are deterministic,
//! so their tolerance is a fixed 5%-of-baseline slack for benign
//! reclassifications; the wall-clock tolerance is `--tolerance-points`
//! interpreted as percent.
//!
//! `--robust` mode gates `BENCH_robust.json`: per (workload, fault cell)
//! the best reported improvement must not fall below the baseline's by
//! more than the tolerance (percent, relative); the pressure cell's
//! top-finding-survived flag and the degraded-repair convergence must
//! not flip from true to false, and the degraded residual must not
//! grow. Detection output is deterministic, so the tolerance only
//! absorbs deliberate re-tuning, not run-to-run noise.
//!
//! The parser is deliberately minimal — the emitters write one record per
//! line with scalar fields only — so the workspace stays free of a JSON
//! dependency.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extracts a scalar field's raw text from a single-line JSON record.
fn field<'a>(record: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\": ");
    let start = record.find(&key)? + key.len();
    let rest = &record[start..];
    if let Some(quoted) = rest.strip_prefix('"') {
        quoted.split('"').next()
    } else {
        rest.split([',', '}']).next().map(str::trim)
    }
}

/// Parses the records of a BENCH_repair.json file into
/// `(cell key -> prediction_error)`.
fn parse(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut cells = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('{') || !line.contains("\"workload\"") {
            continue;
        }
        let workload = field(line, "workload").ok_or("record without workload")?;
        let threads = field(line, "threads").ok_or("record without threads")?;
        let period = field(line, "period").unwrap_or("-");
        let instance = field(line, "instance").unwrap_or("-");
        let error: f64 = field(line, "prediction_error")
            .ok_or("record without prediction_error")?
            .parse()
            .map_err(|e| format!("bad prediction_error in {path}: {e}"))?;
        // Gate on the cell's worst convergence step when recorded (older
        // baselines carry only the first-fix error): a multi-iteration
        // cell must not regress in a later step unnoticed.
        let worst: f64 = field(line, "worst_step_error")
            .and_then(|v| v.parse().ok())
            .unwrap_or(error);
        cells.insert(
            format!("{workload} t{threads} p{period} [{instance}]"),
            error.max(worst),
        );
    }
    if cells.is_empty() {
        return Err(format!("{path}: no benchmark records found"));
    }
    Ok(cells)
}

/// One sharded cell of a BENCH_sim.json file.
#[derive(Debug, Clone, Copy)]
struct SimCell {
    ordered_events: u64,
    speedup: f64,
}

/// Parses the per-cell records of a BENCH_sim.json file into
/// `(workload t<threads> s<shards> -> cell)` for sharded cells.
fn parse_sim(path: &str) -> Result<BTreeMap<String, SimCell>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut cells = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('{') || !line.contains("\"workload\"") {
            continue;
        }
        let workload = field(line, "workload").ok_or("record without workload")?;
        let threads = field(line, "threads").ok_or("record without threads")?;
        let shards: u32 = field(line, "shards")
            .ok_or("record without shards")?
            .parse()
            .map_err(|e| format!("bad shards in {path}: {e}"))?;
        if shards < 2 {
            continue;
        }
        let ordered_events: u64 = match field(line, "ordered_events") {
            // Pre-extent baselines carry no event counts; skip them so the
            // gate starts enforcing once a counted baseline is committed.
            None => continue,
            Some(v) => v
                .parse()
                .map_err(|e| format!("bad ordered_events in {path}: {e}"))?,
        };
        let speedup: f64 = field(line, "speedup")
            .ok_or("record without speedup")?
            .parse()
            .map_err(|e| format!("bad speedup in {path}: {e}"))?;
        cells.insert(
            format!("{workload} t{threads} s{shards}"),
            SimCell {
                ordered_events,
                speedup,
            },
        );
    }
    if cells.is_empty() {
        return Err(format!("{path}: no sharded sim records found"));
    }
    Ok(cells)
}

/// The workloads whose sharded rows the sim gate enforces: the streaming
/// shapes extent classification exists for.
const SIM_GATED: [&str; 2] = ["streamcluster", "streaming_histogram"];

/// Event-count slack for benign reclassifications (fraction of baseline).
const SIM_EVENT_SLACK: f64 = 0.05;

/// The `--sim` gate; `tolerance` is the wall-clock fraction.
fn compare_sim(baseline_path: &str, fresh_path: &str, tolerance: f64) -> ExitCode {
    let (baseline, fresh) = match (parse_sim(baseline_path), parse_sim(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };
    let mut failures = 0usize;
    for (key, base) in &baseline {
        let gated = SIM_GATED.iter().any(|w| key.starts_with(w));
        match fresh.get(key) {
            None => {
                eprintln!("MISSING  {key}: cell present in baseline but not regenerated");
                failures += 1;
            }
            Some(cell) => {
                let event_limit =
                    (base.ordered_events as f64 * (1.0 + SIM_EVENT_SLACK)).ceil() as u64;
                let events_bad = gated && cell.ordered_events > event_limit;
                let speed_bad = gated && cell.speedup < 1.0 - tolerance;
                let status = if events_bad || speed_bad {
                    failures += 1;
                    "REGRESS"
                } else {
                    "ok"
                };
                println!(
                    "{status:8} {key}: ordered {} -> {} (limit {event_limit}), \
                     speedup {:.2}x -> {:.2}x{}",
                    base.ordered_events,
                    cell.ordered_events,
                    base.speedup,
                    cell.speedup,
                    if gated { "" } else { " [informational]" },
                );
            }
        }
    }
    for key in fresh.keys() {
        if !baseline.contains_key(key) {
            println!("NEW      {key}: not in baseline (bench grew)");
        }
    }
    if failures > 0 {
        eprintln!(
            "bench_compare --sim: {failures} sharded cell(s) replay more ordered events \
             than the baseline, run slower than the classic loop, or went missing"
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench_compare --sim: all {} baseline cells within limits",
            baseline.len()
        );
        ExitCode::SUCCESS
    }
}

/// One gated entry of a BENCH_robust.json file: a fault-preset cell, the
/// pressure cell, or the degraded-repair outcome.
#[derive(Debug, Clone, Copy)]
struct RobustCell {
    /// Best reported improvement (fault and pressure cells; 0 for the
    /// degraded-repair entry, which gates on the fields below instead).
    best_improvement: f64,
    /// `top_finding_survived` (pressure) or `converged` (degraded
    /// repair); always true for fault cells.
    held: bool,
    /// Residual significant instances (degraded repair; 0 elsewhere).
    residual: u64,
}

/// Parses a BENCH_robust.json file into `(workload/cell -> entry)`.
/// The emitter nests cells under their workload record, so the scan is
/// stateful: a `"workload"` line names the group for the cell,
/// `"pressure"` and `"degraded_repair"` lines that follow it.
fn parse_robust(path: &str) -> Result<BTreeMap<String, RobustCell>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut cells = BTreeMap::new();
    let mut workload = String::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(name) = field(line, "workload") {
            workload = name.to_string();
        } else if let Some(cell) = field(line, "cell") {
            let best: f64 = field(line, "best_improvement")
                .ok_or("cell without best_improvement")?
                .parse()
                .map_err(|e| format!("bad best_improvement in {path}: {e}"))?;
            cells.insert(
                format!("{workload}/{cell}"),
                RobustCell {
                    best_improvement: best,
                    held: true,
                    residual: 0,
                },
            );
        } else if line.starts_with("\"pressure\"") {
            let best: f64 = field(line, "best_improvement")
                .ok_or("pressure without best_improvement")?
                .parse()
                .map_err(|e| format!("bad best_improvement in {path}: {e}"))?;
            let survived = field(line, "top_finding_survived") == Some("true");
            cells.insert(
                format!("{workload}/pressure"),
                RobustCell {
                    best_improvement: best,
                    held: survived,
                    residual: 0,
                },
            );
        } else if line.starts_with("\"degraded_repair\"") {
            let converged = field(line, "converged") == Some("true");
            let residual: u64 = field(line, "residual")
                .ok_or("degraded_repair without residual")?
                .trim_end_matches('}')
                .trim()
                .parse()
                .map_err(|e| format!("bad residual in {path}: {e}"))?;
            cells.insert(
                format!("{workload}/degraded"),
                RobustCell {
                    best_improvement: 0.0,
                    held: converged,
                    residual,
                },
            );
        }
    }
    if cells.is_empty() {
        return Err(format!("{path}: no robustness records found"));
    }
    Ok(cells)
}

/// The `--robust` gate; `tolerance` is the relative improvement slack.
fn compare_robust(baseline_path: &str, fresh_path: &str, tolerance: f64) -> ExitCode {
    let (baseline, fresh) = match (parse_robust(baseline_path), parse_robust(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };
    let mut failures = 0usize;
    for (key, base) in &baseline {
        match fresh.get(key) {
            None => {
                eprintln!("MISSING  {key}: cell present in baseline but not regenerated");
                failures += 1;
            }
            Some(cell) => {
                let floor = base.best_improvement * (1.0 - tolerance);
                let improvement_bad = cell.best_improvement < floor;
                let held_bad = base.held && !cell.held;
                let residual_bad = cell.residual > base.residual;
                let status = if improvement_bad || held_bad || residual_bad {
                    failures += 1;
                    "REGRESS"
                } else {
                    "ok"
                };
                println!(
                    "{status:8} {key}: best {:.2}x -> {:.2}x (floor {floor:.2}x), \
                     held {} -> {}, residual {} -> {}",
                    base.best_improvement,
                    cell.best_improvement,
                    base.held,
                    cell.held,
                    base.residual,
                    cell.residual,
                );
            }
        }
    }
    for key in fresh.keys() {
        if !baseline.contains_key(key) {
            println!("NEW      {key}: not in baseline (sweep grew)");
        }
    }
    if failures > 0 {
        eprintln!(
            "bench_compare --robust: {failures} cell(s) lost improvement beyond {:.0}%, \
             dropped a survival/convergence guarantee, grew residue, or went missing",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench_compare --robust: all {} baseline cells within limits",
            baseline.len()
        );
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let sim_mode = args.first().is_some_and(|a| a == "--sim");
    let robust_mode = args.first().is_some_and(|a| a == "--robust");
    if sim_mode || robust_mode {
        args.remove(0);
    }
    let (baseline_path, fresh_path) = match (args.first(), args.get(1)) {
        (Some(b), Some(f)) => (b.clone(), f.clone()),
        _ => {
            eprintln!(
                "usage: bench_compare [--sim | --robust] <baseline.json> <fresh.json> \
                 [--tolerance-points N]"
            );
            return ExitCode::from(2);
        }
    };
    // Remaining arguments must parse exactly; a typo that silently fell
    // back to the default would loosen the CI gate without anyone noticing.
    let mut tolerance_points = if sim_mode || robust_mode {
        10.0f64
    } else {
        5.0f64
    };
    let mut rest = args[2..].iter();
    while let Some(arg) = rest.next() {
        let value = match (arg.as_str(), arg.strip_prefix("--tolerance-points=")) {
            ("--tolerance-points", _) => rest.next().map(String::as_str),
            (_, Some(inline)) => Some(inline),
            _ => None,
        };
        match value.and_then(|v| v.parse::<f64>().ok()) {
            Some(points) => tolerance_points = points,
            None => {
                eprintln!("bench_compare: bad argument {arg:?} (want --tolerance-points N)");
                return ExitCode::from(2);
            }
        }
    }
    let tolerance = tolerance_points / 100.0;
    if sim_mode {
        return compare_sim(&baseline_path, &fresh_path, tolerance);
    }
    if robust_mode {
        return compare_robust(&baseline_path, &fresh_path, tolerance);
    }

    let (baseline, fresh) = match (parse(&baseline_path), parse(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0usize;
    for (key, &old_error) in &baseline {
        match fresh.get(key) {
            None => {
                eprintln!("MISSING  {key}: cell present in baseline but not regenerated");
                failures += 1;
            }
            Some(&new_error) => {
                let delta = new_error - old_error;
                let status = if delta > tolerance {
                    failures += 1;
                    "REGRESS"
                } else {
                    "ok"
                };
                println!(
                    "{status:8} {key}: {:.1}% -> {:.1}% ({:+.1} points)",
                    old_error * 100.0,
                    new_error * 100.0,
                    delta * 100.0
                );
            }
        }
    }
    for key in fresh.keys() {
        if !baseline.contains_key(key) {
            println!("NEW      {key}: not in baseline (matrix grew)");
        }
    }

    if failures > 0 {
        eprintln!(
            "bench_compare: {failures} cell(s) regressed beyond {:.0} points or went missing",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench_compare: all {} baseline cells within {:.0} points",
            baseline.len(),
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    }
}
