//! # cheetah-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see DESIGN.md for the index):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig1_microbench` | Fig. 1 — expectation vs. reality of the FS microbenchmark |
//! | `fig4_overhead` | Fig. 4 — Cheetah's runtime overhead over 17 applications |
//! | `fig7_missed` | Fig. 7 — impact of the minor instances Cheetah misses |
//! | `table1_precision` | Table 1 — predicted vs. real improvement |
//! | `ablation_table` | two-entry table vs. ownership bitmap (§2.3) |
//! | `ablation_sampling` | sampling-period sweep: recall vs. overhead (§2.1, §5) |
//! | `ablation_baseline` | Cheetah vs. Predator-like full instrumentation (§6.1) |
//! | `schedule_explore` | schedule-space exploration: hidden-FS detection over perturbed interleavings |
//!
//! `cargo bench` additionally runs criterion micro-benchmarks of the hot
//! paths (table update, directory access, sampling decision, detector
//! ingest) and compact versions of the figure workloads.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use cheetah_core::{CheetahConfig, CheetahProfiler, Profile};
use cheetah_sim::{Machine, MachineConfig, NullObserver, RunReport};
use cheetah_workloads::{App, AppConfig};

/// Runs an app natively (no profiling) and returns the machine report.
pub fn run_native(machine: &Machine, app: &App, config: &AppConfig) -> RunReport {
    let instance = app.build(config);
    machine.run(instance.program, &mut NullObserver)
}

/// Runs an app under the Cheetah profiler; returns the machine report and
/// the profile.
pub fn run_cheetah(
    machine: &Machine,
    app: &App,
    config: &AppConfig,
    cheetah: CheetahConfig,
) -> (RunReport, Profile) {
    let instance = app.build(config);
    let mut profiler = CheetahProfiler::new(cheetah, &instance.space);
    let report = machine.run(instance.program, &mut profiler);
    (report, profiler.finish())
}

/// The evaluation machine: 48 cores, 64-byte lines (the paper's Opteron).
pub fn paper_machine() -> Machine {
    Machine::new(MachineConfig::default())
}

/// Prints a markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" | ")
}
