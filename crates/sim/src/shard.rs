//! Sharded deterministic execution of parallel phases.
//!
//! The classic engine ([`crate::exec`]) interleaves every thread of a
//! parallel phase through one discrete-event loop: each memory access takes
//! a heap scheduling step, a shared-directory lookup and an observer
//! callback, all on one host thread. This module executes the same phase in
//! two passes whose result is **bit-identical** to the classic loop:
//!
//! 1. **Precompute** (fanned out over host threads): each worker's access
//!    stream is materialised and replayed *locally*. Three facts make most
//!    of the work timing-independent and therefore precomputable before any
//!    global interleaving is known:
//!    * streams are deterministic state machines — the op sequence never
//!      depends on timing;
//!    * MESI transitions (`coherence::transition`) depend only on
//!      the line's state and the issuing core, never on the clock; the
//!      clock matters solely for busy-window queueing, and a line touched
//!      by a single core can never queue (each thread's clock advances past
//!      its own transactions, and pre-phase transactions complete before
//!      the phase starts);
//!    * sampling decisions ([`crate::observer::ThreadSampler`]) are pure
//!      functions of the thread's retired-instruction index.
//!
//!    Lines are classified by who touches them in the phase: **private**
//!    lines (one worker) are simulated entirely in the precompute pass
//!    against worker-local state seeded from the shared directory;
//!    **read-shared** lines (several workers, no writes) reduce to one
//!    directory access per worker — every later read by the same core is a
//!    provable L1 hit; **write-shared** lines (the false-sharing traffic
//!    itself) stay fully ordered. The pass folds runs of precomputed work
//!    into `lead` cycles and emits an *event* for everything that needs
//!    global time or the observer. Consecutive unsampled read-shared hits
//!    collapse into a single *hit-run* event.
//!
//! 2. **Merge** (single-threaded): the per-worker event streams are merged
//!    on a min-heap keyed by `(timestamp, worker, seq)` — the exact order
//!    the classic loop produces (its heap is keyed the same way and each
//!    worker's ops are FIFO). Shared-directory accesses, busy-window waits,
//!    observer callbacks and sample delivery all happen here, in merged
//!    global order, so coherence state, detector samples and reports come
//!    out bit-identical to the classic loop. The phase's join barrier
//!    becomes a merge barrier: the main thread resumes at the merged
//!    maximum end time, exactly as it would have at the classic join.
//!
//! ## The hit-run settling argument
//!
//! A read-shared line's busy windows can only be created by *first-touch*
//! accesses (its hits never occupy the line), and every worker touching the
//! line performs exactly one first touch. Once all first touches have been
//! merged and the last window has expired, no later read of the line can
//! ever wait — so a run of such hits has no observable effect other than
//! advancing its own worker's clock and counting L1 hits, and the merge
//! processes the entire run in O(run length) additions without touching the
//! heap or the directory. Before that settling point the merge walks the
//! run read by read against the real busy windows, yielding to the heap at
//! the horizon exactly like the classic loop.
//!
//! Determinism is structural: the precompute pass is per-worker (the
//! partitioning of workers onto host threads cannot affect its output) and
//! the merge order is a pure function of worker clocks, so *any* shard
//! count — including the classic path at `shards = 1` — yields the same
//! [`crate::RunReport`]. The property tests in `tests/shard_props.rs` and
//! the `sim_throughput` bench gate assert exactly that.

use crate::coherence::{prefetchable, transition, Directory, LineState};
use crate::exec::{MachineConfig, ThreadCtx};
use crate::latency::{AccessOutcome, LatencyModel};
use crate::observer::{AccessRecord, ExecObserver, SamplerFork};
use crate::program::{AccessStream, Op, OpsStream};
use crate::types::{AccessKind, Addr, CacheLineId, CoreId, Cycles, PhaseKind, ThreadId};
use crate::util::FastMap;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How a cache line participates in the current parallel phase, from one
/// worker's point of view. Pre-resolved per worker before the precompute
/// pass so the per-access hot loop costs at most one map lookup.
#[derive(Debug, Clone, Copy)]
enum LineClass {
    /// Placeholder for a private line whose MESI state currently lives in
    /// the worker's hot cache; overwritten on eviction or the final flush.
    PrivateHot,
    /// Touched by this worker only: fully simulated in its precompute pass
    /// against the carried MESI state (`None` = never cached).
    Private(Option<LineState>),
    /// Read-shared (several workers, reads only) and already touched by
    /// this worker: every further read is a provable L1 hit needing only
    /// the busy-window check. A read-shared line's *first* touch resolves
    /// straight to this class while emitting the directory event.
    ReadSharedTouched,
    /// Touched by several workers with at least one write: every access is
    /// merged in global order.
    WriteShared,
}

/// Phase-global classification of one line: which worker touched it first,
/// how many workers touch it, and whether anyone writes it.
struct LineInfo {
    owner: u32,
    touchers: u32,
    wrote: bool,
}

/// A line's class as resolved for one access in the precompute hot loop.
enum Resolved {
    /// Private to this worker; payload is the MESI state before the access.
    Private(Option<LineState>),
    /// This worker's first touch of a read-shared line (directory event).
    ReadSharedFirst,
    /// A later read of a read-shared line (provable L1 hit).
    ReadSharedHit,
    /// Write-shared: full directory event.
    WriteShared,
}

/// One read inside a hit-run: `lead` cycles of folded local work since the
/// previous read (0 for the first — the event's own lead covers it), then
/// an L1 hit on a read-shared line. Unsampled by construction, so no
/// observer fields are needed; replica perturbation is folded into the
/// following lead.
struct HitRead {
    lead: Cycles,
    addr: Addr,
}

/// One precomputed worker event, preceded by `lead` cycles of local work
/// (compute ops, unsampled private accesses and their perturbation).
struct Ev {
    lead: Cycles,
    kind: EvKind,
}

enum EvKind {
    /// An access that needs the shared directory (write-shared line, or a
    /// core's first touch of a read-shared line).
    Dir {
        addr: Addr,
        kind: AccessKind,
        instrs_before: u64,
        /// Precomputed next-line-prefetch condition (the worker's own
        /// access sequence determines it).
        sequential: bool,
        /// First touch of a read-shared line: decrements the line's
        /// outstanding-first-touch count for hit-run settling.
        settles: bool,
        surfaced: bool,
        perturbation: Option<Cycles>,
    },
    /// A *sampled* read of a read-shared line after this core's first
    /// touch: a proven L1 hit surfaced to the observer; only the
    /// busy-window wait needs global time.
    SharedHit {
        addr: Addr,
        instrs_before: u64,
        perturbation: Option<Cycles>,
    },
    /// A run of unsampled read-shared hits (see the module docs).
    HitRun { reads: Box<[HitRead]> },
    /// A private access that must be surfaced to the observer (sampled, or
    /// the observer demanded every access); outcome and cost precomputed.
    Private {
        addr: Addr,
        kind: AccessKind,
        instrs_before: u64,
        outcome: AccessOutcome,
        cost: Cycles,
        perturbation: Option<Cycles>,
    },
    /// End of the worker's stream; `lead` holds trailing compute cycles.
    Exit,
}

/// One materialised memory access: `work_before` compute instructions since
/// the previous access, then the access itself.
struct MatAccess {
    work_before: u64,
    addr: Addr,
    write: bool,
}

/// Materialisation output of one worker stream.
struct Mat {
    accesses: Vec<MatAccess>,
    /// Compute instructions after the last access.
    trailing_work: u64,
    /// Lines this worker touches, with a "did it write" flag.
    touched: FastMap<CacheLineId, bool>,
}

/// Precompute output of one worker.
struct WorkerPlan {
    events: Vec<Ev>,
    instructions: u64,
    reads: u64,
    writes: u64,
    /// The worker's line view after the pass; private entries carry the
    /// final MESI states for write-back.
    view: FastMap<CacheLineId, LineClass>,
    /// Private lines that became LLC-resident during the phase.
    llc_new: Vec<CacheLineId>,
    /// Final last-touched line of the worker's core (prefetch tracker).
    last_line: Option<CacheLineId>,
    /// Coherence statistics of the precomputed private accesses.
    stats: crate::stats::CoherenceStats,
}

/// Hit-run settling state: once every read-shared line's first touches have
/// merged and the last busy window has passed, hit runs fold in O(1) per
/// read with no directory traffic.
struct Settle {
    /// Outstanding first-touch counts per read-shared line.
    outstanding: FastMap<CacheLineId, u32>,
    /// Read-shared lines whose first touches have not all merged yet.
    unsettled_lines: usize,
    /// Latest busy-window end among fully-settled lines.
    horizon: Cycles,
}

impl Settle {
    /// Whether a hit run starting at `now` is provably wait-free.
    fn all_settled(&self, now: Cycles) -> bool {
        self.unsettled_lines == 0 && self.horizon <= now
    }
}

/// Runs one serial phase with the sharded engine's fast local access path;
/// drop-in replacement for the classic `Execution::run_serial`.
///
/// A serial phase is the degenerate sharded phase: one thread, no other
/// actor, so *every* line is private and no materialisation,
/// classification or merge is needed at all. The stream executes in a
/// single fused pass whose wins mirror the parallel precompute: a
/// hot-line cache plus a compact state map instead of the directory's
/// multi-lookup path, and the sampling replica skipping the per-access
/// observer callback. The replica forks from the main thread's *current*
/// sampling state, so repeated serial phases chain exactly.
pub(crate) fn run_serial_sharded(
    config: &MachineConfig,
    directory: &mut Directory,
    observer: &mut dyn ExecObserver,
    main: &mut ThreadCtx,
    phase_index: u32,
) {
    const HOT_WAYS: usize = 4;
    let line_size = config.cache_line_size;
    let latency = &config.latency;
    let cpi = latency.cycles_per_instruction;
    let l1_cost = latency.l1_hit;
    let core = main.core;
    let mut fork = observer.fork_sampler(main.id);
    let mut next_tag: u64 = match &fork {
        SamplerFork::Replica(replica) => replica.next_tag(),
        _ => 0,
    };

    // Phase-local MESI states: a hot direct-mapped cache backed by a map of
    // evicted lines; first touches fall through to the shared directory.
    let mut states: FastMap<CacheLineId, LineState> = FastMap::default();
    let mut hot: [(CacheLineId, LineState); HOT_WAYS] =
        [(CacheLineId(u64::MAX), LineState::Exclusive(core)); HOT_WAYS];
    let mut llc_new: Vec<CacheLineId> = Vec::new();
    let mut stats = crate::stats::CoherenceStats::default();
    let mut next_sequential: u64 = directory
        .last_line_for(core)
        .map_or(u64::MAX, |l| l.0.wrapping_add(1));
    let mut last_line = directory.last_line_for(core);
    let mut clock = main.clock;

    while let Some(op) = main.stream.next_op() {
        match op {
            Op::Work(n) => {
                main.instructions += n;
                clock += n * cpi;
            }
            Op::Read(addr) | Op::Write(addr) => {
                let write = matches!(op, Op::Write(_));
                let kind = if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let line = addr.line(line_size);
                let (perturbation, surfaced) = match &mut fork {
                    SamplerFork::Transparent => (Some(0), false),
                    SamplerFork::EveryAccess => (None, true),
                    SamplerFork::Replica(replica) => {
                        if main.instructions >= next_tag {
                            let judgement = replica.judge(main.instructions);
                            next_tag = replica.next_tag();
                            (Some(judgement.perturbation), judgement.sampled)
                        } else {
                            (Some(0), false)
                        }
                    }
                };
                let sequential = next_sequential == line.0;
                next_sequential = line.0.wrapping_add(1);
                let way = (line.0 as usize) & (HOT_WAYS - 1);
                let prev = if hot[way].0 == line {
                    Some(hot[way].1)
                } else {
                    // Promote, writing the evicted line's state back.
                    if hot[way].0 != CacheLineId(u64::MAX) {
                        let (old_line, old_state) = hot[way];
                        states.insert(old_line, old_state);
                    }
                    hot[way].0 = line;
                    let seeded = match states.get(&line) {
                        Some(&state) => Some(state),
                        // First touch this phase: seed from the directory.
                        None => directory.line_state_of(line),
                    };
                    if let Some(state) = seeded {
                        hot[way].1 = state;
                    }
                    seeded
                };
                // The overwhelmingly common case: the line is already owned.
                let owned_hit = match prev {
                    Some(LineState::Modified(owner)) => owner == core,
                    Some(LineState::Exclusive(owner)) if !write => owner == core,
                    Some(LineState::Exclusive(owner)) if owner == core => {
                        hot[way].1 = LineState::Modified(core);
                        true
                    }
                    _ => false,
                };
                let (outcome, cost) = if owned_hit {
                    (AccessOutcome::L1Hit, l1_cost)
                } else {
                    let t = transition(prev, false, core, kind);
                    hot[way].1 = t.state;
                    if t.llc_insert {
                        llc_new.push(line);
                    }
                    stats.invalidations += t.invalidated;
                    let outcome = if sequential && prefetchable(t.outcome) {
                        AccessOutcome::Prefetched
                    } else {
                        t.outcome
                    };
                    (outcome, latency.cost(outcome))
                };
                stats.record(outcome);
                let perturb = if surfaced {
                    let record = AccessRecord {
                        thread: main.id,
                        core,
                        addr,
                        kind,
                        outcome,
                        latency: cost,
                        start: clock,
                        instrs_before: main.instructions,
                        phase_index,
                        phase_kind: PhaseKind::Serial,
                    };
                    let returned = observer.on_access(&record);
                    perturbation.unwrap_or(returned)
                } else {
                    perturbation.expect("unsurfaced access has judgement")
                };
                clock += cost + perturb;
                main.instructions += 1;
                if write {
                    main.writes += 1;
                } else {
                    main.reads += 1;
                }
                last_line = Some(line);
            }
        }
    }

    // Write-back: evicted and hot line states, LLC residency, prefetch
    // tracker and statistics fold into the shared directory.
    for (line, state) in hot {
        if line != CacheLineId(u64::MAX) {
            states.insert(line, state);
        }
    }
    for (line, state) in states {
        directory.restore_line_state(line, state);
    }
    for line in llc_new {
        directory.llc_insert(line);
    }
    directory.set_last_line(core, last_line);
    directory.absorb_stats(&stats);
    main.clock = clock;
}

/// Runs one parallel phase sharded; drop-in replacement for the classic
/// `Execution::run_parallel` (same inputs, same outputs, same observer
/// callback sequence). Workers must sit on pairwise-distinct cores.
pub(crate) fn run_parallel_sharded(
    config: &MachineConfig,
    directory: &mut Directory,
    observer: &mut dyn ExecObserver,
    workers: &mut [ThreadCtx],
    phase_index: u32,
    shards: usize,
) -> Vec<Cycles> {
    let line_size = config.cache_line_size;
    let latency = config.latency.clone();
    let debug_timing = std::env::var_os("CHEETAH_SHARD_TIMING").is_some();
    let t0 = std::time::Instant::now();

    // Sampling replicas, handed out after every member's on_thread_start
    // (the engine called those while spawning, before this function).
    let forks: Vec<SamplerFork> = workers
        .iter()
        .map(|w| observer.fork_sampler(w.id))
        .collect();

    // Pass 1a: materialise each stream and collect its line-touch map.
    let streams: Vec<Box<dyn AccessStream>> = workers
        .iter_mut()
        .map(|w| std::mem::replace(&mut w.stream, Box::new(OpsStream::new(Vec::new()))))
        .collect();
    let mats: Vec<Mat> = parallel_map(streams, shards, &|_slot, stream| {
        materialize(stream, line_size)
    });
    let t_mat = t0.elapsed();

    // Classify lines: count touchers and writes per line across workers.
    // Private line states are *not* moved out of the directory — the
    // precompute pass reads them through a shared borrow and the write-back
    // overwrites them in place, so the phase costs no per-line map churn.
    let mut info: FastMap<CacheLineId, LineInfo> = FastMap::default();
    for (slot, mat) in mats.iter().enumerate() {
        for (&line, &wrote) in &mat.touched {
            match info.entry(line) {
                std::collections::hash_map::Entry::Occupied(mut entry) => {
                    let entry = entry.get_mut();
                    entry.touchers += 1;
                    entry.wrote |= wrote;
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(LineInfo {
                        owner: slot as u32,
                        touchers: 1,
                        wrote,
                    });
                }
            }
        }
    }
    let mut settle = Settle {
        outstanding: FastMap::default(),
        unsettled_lines: 0,
        horizon: 0,
    };
    for (&line, entry) in &info {
        if entry.touchers > 1 && !entry.wrote {
            settle.outstanding.insert(line, entry.touchers);
            settle.unsettled_lines += 1;
        }
    }

    // Pass 1b: per-worker event precomputation, fanned out on host threads.
    let inputs: Vec<(Mat, SamplerFork, u32, CoreId, Option<CacheLineId>)> = {
        let mut inputs = Vec::with_capacity(workers.len());
        let mut forks = forks.into_iter();
        for (slot, (mat, worker)) in mats.into_iter().zip(workers.iter()).enumerate() {
            inputs.push((
                mat,
                forks.next().expect("fork per worker"),
                slot as u32,
                worker.core,
                directory.last_line_for(worker.core),
            ));
        }
        inputs
    };
    let t_class = t0.elapsed();
    let latency_ref = &latency;
    let info_ref = &info;
    let directory_ref: &Directory = directory;
    let plans: Vec<WorkerPlan> = parallel_map(inputs, shards, &|_slot, input| {
        let (mat, fork, me, core, last_line) = input;
        precompute_worker(
            me,
            core,
            mat,
            fork,
            last_line,
            info_ref,
            directory_ref,
            latency_ref,
            line_size,
        )
    });
    let t_pre = t0.elapsed();

    // Pass 2: deterministic merge on (timestamp, worker, seq).
    let ends = merge(
        directory,
        observer,
        workers,
        &plans,
        &mut settle,
        phase_index,
        &latency,
        line_size,
    );

    // Write-back: private line states, LLC residency, prefetch trackers and
    // local statistics fold into the shared directory; worker totals into
    // the thread contexts.
    for (slot, plan) in plans.into_iter().enumerate() {
        for (line, class) in plan.view {
            debug_assert!(
                !matches!(class, LineClass::PrivateHot),
                "hot lines are flushed before write-back"
            );
            if let LineClass::Private(state) = class {
                let state = state.expect("touched private line has a state");
                directory.restore_line_state(line, state);
            }
        }
        for line in plan.llc_new {
            directory.llc_insert(line);
        }
        directory.set_last_line(workers[slot].core, plan.last_line);
        directory.absorb_stats(&plan.stats);
        let ctx = &mut workers[slot];
        ctx.instructions = plan.instructions;
        ctx.reads = plan.reads;
        ctx.writes = plan.writes;
        ctx.clock = ends[slot];
    }
    if debug_timing {
        let t_all = t0.elapsed();
        eprintln!(
            "shard phase {phase_index}: mat={:?} class={:?} pre={:?} merge={:?} total={:?}",
            t_mat,
            t_class - t_mat,
            t_pre - t_class,
            t_all - t_pre,
            t_all
        );
    }
    ends
}

/// Drains a stream into a compact access vector and records which lines it
/// touches.
///
/// A small direct-mapped cache of recently seen lines keeps the hot loop
/// out of the hash map: workload inner loops cycle over a handful of lines,
/// so nearly every access hits the cache.
fn materialize(mut stream: Box<dyn AccessStream>, line_size: u64) -> Mat {
    const CACHE_WAYS: usize = 8;
    let mut accesses = Vec::new();
    let mut work: u64 = 0;
    let mut touched: FastMap<CacheLineId, bool> = FastMap::default();
    let mut cache: [(CacheLineId, bool); CACHE_WAYS] = [(CacheLineId(u64::MAX), false); CACHE_WAYS];
    while let Some(op) = stream.next_op() {
        match op {
            Op::Work(n) => work += n,
            Op::Read(addr) | Op::Write(addr) => {
                let write = matches!(op, Op::Write(_));
                let line = addr.line(line_size);
                let way = &mut cache[(line.0 as usize) & (CACHE_WAYS - 1)];
                if way.0 != line || (write && !way.1) {
                    let entry = touched.entry(line).or_insert(false);
                    *entry |= write;
                    *way = (line, *entry);
                }
                accesses.push(MatAccess {
                    work_before: std::mem::take(&mut work),
                    addr,
                    write,
                });
            }
        }
    }
    Mat {
        accesses,
        trailing_work: work,
        touched,
    }
}

/// Replays one worker's accesses locally: simulates private lines, judges
/// every access through the sampling replica, and folds everything that
/// needs no global time into event leads.
///
/// The worker's line view is resolved lazily: each distinct line consults
/// the phase classification (`info`) and, for private lines, reads the
/// current MESI state straight out of the (shared-borrowed) directory on
/// first touch. (Serial phases do not come through here — they use the
/// fused loop in [`run_serial_sharded`].)
#[allow(clippy::too_many_arguments)]
fn precompute_worker(
    me: u32,
    core: CoreId,
    mat: Mat,
    mut fork: SamplerFork,
    last_line: Option<CacheLineId>,
    info: &FastMap<CacheLineId, LineInfo>,
    directory: &Directory,
    latency: &LatencyModel,
    line_size: u64,
) -> WorkerPlan {
    let mut view: FastMap<CacheLineId, LineClass> = FastMap::default();
    view.reserve(mat.touched.len());
    const HOT_WAYS: usize = 4;
    let mut events: Vec<Ev> = Vec::new();
    let mut lead: Cycles = 0;
    let (mut instructions, mut reads, mut writes) = (0u64, 0u64, 0u64);
    let mut llc_new: Vec<CacheLineId> = Vec::new();
    let mut stats = crate::stats::CoherenceStats::default();
    let cpi = latency.cycles_per_instruction;
    let l1_cost = latency.l1_hit;
    // `last.0 + 1` of the previously touched line; u64::MAX when none.
    let mut next_sequential: u64 = last_line.map_or(u64::MAX, |l| l.0.wrapping_add(1));
    // Hot private lines, direct-mapped, held out of the view map.
    let mut hot: [(CacheLineId, LineState); HOT_WAYS] =
        [(CacheLineId(u64::MAX), LineState::Exclusive(core)); HOT_WAYS];
    // Pending sampling judgement threshold (see ThreadSampler::next_tag).
    let mut next_tag: u64 = match &fork {
        SamplerFork::Replica(replica) => replica.next_tag(),
        _ => 0,
    };
    // Open hit run (unsampled read-shared hits) plus the lead before it.
    let mut run: Vec<HitRead> = Vec::new();
    let mut run_lead: Cycles = 0;

    macro_rules! flush_run {
        () => {
            if !run.is_empty() {
                events.push(Ev {
                    lead: run_lead,
                    kind: EvKind::HitRun {
                        reads: std::mem::take(&mut run).into_boxed_slice(),
                    },
                });
            }
        };
    }

    for access in &mat.accesses {
        let MatAccess {
            work_before,
            addr,
            write,
        } = *access;
        instructions += work_before;
        lead += work_before * cpi;
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let line = addr.line(line_size);
        let (perturbation, surfaced) = match &mut fork {
            SamplerFork::Transparent => (Some(0), false),
            SamplerFork::EveryAccess => (None, true),
            SamplerFork::Replica(replica) => {
                if instructions >= next_tag {
                    let judgement = replica.judge(instructions);
                    next_tag = replica.next_tag();
                    (Some(judgement.perturbation), judgement.sampled)
                } else {
                    (Some(0), false)
                }
            }
        };
        let sequential = next_sequential == line.0;
        next_sequential = line.0.wrapping_add(1);

        // Hot path: a recently-used private line, entirely in registers.
        let way = (line.0 as usize) & (HOT_WAYS - 1);
        if hot[way].0 == line {
            let prev = hot[way].1;
            // The overwhelmingly common case: the line is already owned.
            let owned_hit = match prev {
                LineState::Modified(owner) => owner == core,
                LineState::Exclusive(owner) if !write => owner == core,
                LineState::Exclusive(owner) if owner == core => {
                    hot[way].1 = LineState::Modified(core);
                    true
                }
                _ => false,
            };
            let (outcome, cost) = if owned_hit {
                (AccessOutcome::L1Hit, l1_cost)
            } else {
                let t = transition(Some(prev), false, core, kind);
                hot[way].1 = t.state;
                if t.llc_insert {
                    llc_new.push(line);
                }
                stats.invalidations += t.invalidated;
                let outcome = if sequential && prefetchable(t.outcome) {
                    AccessOutcome::Prefetched
                } else {
                    t.outcome
                };
                (outcome, latency.cost(outcome))
            };
            stats.record(outcome);
            if surfaced {
                flush_run!();
                events.push(Ev {
                    lead: std::mem::take(&mut lead),
                    kind: EvKind::Private {
                        addr,
                        kind,
                        instrs_before: instructions,
                        outcome,
                        cost,
                        perturbation,
                    },
                });
            } else {
                lead += cost + perturbation.expect("unsurfaced access has judgement");
            }
            instructions += 1;
            if write {
                writes += 1;
            } else {
                reads += 1;
            }
            continue;
        }

        let class = match view.entry(line) {
            std::collections::hash_map::Entry::Occupied(entry) => match *entry.get() {
                LineClass::Private(prev) => Resolved::Private(prev),
                LineClass::ReadSharedTouched => Resolved::ReadSharedHit,
                LineClass::WriteShared => Resolved::WriteShared,
                LineClass::PrivateHot => unreachable!("hot lines resolve via the cache"),
            },
            std::collections::hash_map::Entry::Vacant(vacant) => {
                let entry = info.get(&line).expect("touched line is classified");
                if entry.touchers == 1 {
                    debug_assert_eq!(entry.owner, me, "private line owned elsewhere");
                    vacant.insert(LineClass::PrivateHot);
                    Resolved::Private(directory.line_state_of(line))
                } else if entry.wrote {
                    vacant.insert(LineClass::WriteShared);
                    Resolved::WriteShared
                } else {
                    vacant.insert(LineClass::ReadSharedTouched);
                    Resolved::ReadSharedFirst
                }
            }
        };
        match class {
            Resolved::Private(prev) => {
                // Promote into the hot cache, writing the evicted line's
                // state back into the view. The promoted line's view slot
                // goes stale until eviction or the final flush — nothing
                // reads it in between.
                if hot[way].0 != CacheLineId(u64::MAX) {
                    let (old_line, old_state) = hot[way];
                    // The evicted entry's view slot is always Private.
                    *view
                        .get_mut(&old_line)
                        .expect("hot lines come from the view") =
                        LineClass::Private(Some(old_state));
                }
                // `in_llc = false` is exact for a cold private line: LLC
                // residency implies a directory entry, which the class
                // would have carried.
                let t = transition(prev, false, core, kind);
                hot[way] = (line, t.state);
                if t.llc_insert {
                    llc_new.push(line);
                }
                stats.invalidations += t.invalidated;
                let outcome = if sequential && prefetchable(t.outcome) {
                    AccessOutcome::Prefetched
                } else {
                    t.outcome
                };
                let cost = latency.cost(outcome);
                stats.record(outcome);
                if surfaced {
                    flush_run!();
                    events.push(Ev {
                        lead: std::mem::take(&mut lead),
                        kind: EvKind::Private {
                            addr,
                            kind,
                            instrs_before: instructions,
                            outcome,
                            cost,
                            perturbation,
                        },
                    });
                } else {
                    lead += cost + perturbation.expect("unsurfaced access has judgement");
                }
            }
            Resolved::ReadSharedFirst => {
                debug_assert!(!write, "read-shared line written");
                flush_run!();
                events.push(Ev {
                    lead: std::mem::take(&mut lead),
                    kind: EvKind::Dir {
                        addr,
                        kind,
                        instrs_before: instructions,
                        sequential,
                        settles: true,
                        surfaced,
                        perturbation,
                    },
                });
            }
            Resolved::ReadSharedHit => {
                debug_assert!(!write, "read-shared line written");
                if surfaced {
                    flush_run!();
                    events.push(Ev {
                        lead: std::mem::take(&mut lead),
                        kind: EvKind::SharedHit {
                            addr,
                            instrs_before: instructions,
                            perturbation,
                        },
                    });
                } else {
                    // Join (or open) the hit run; perturbation lands after
                    // the hit, i.e. in the next lead.
                    if run.is_empty() {
                        run_lead = std::mem::take(&mut lead);
                        run.push(HitRead { lead: 0, addr });
                    } else {
                        run.push(HitRead {
                            lead: std::mem::take(&mut lead),
                            addr,
                        });
                    }
                    lead += perturbation.expect("unsurfaced access has judgement");
                }
            }
            Resolved::WriteShared => {
                flush_run!();
                events.push(Ev {
                    lead: std::mem::take(&mut lead),
                    kind: EvKind::Dir {
                        addr,
                        kind,
                        instrs_before: instructions,
                        sequential,
                        settles: false,
                        surfaced,
                        perturbation,
                    },
                });
            }
        }
        instructions += 1;
        if write {
            writes += 1;
        } else {
            reads += 1;
        }
    }
    instructions += mat.trailing_work;
    lead += mat.trailing_work * cpi;
    flush_run!();
    events.push(Ev {
        lead,
        kind: EvKind::Exit,
    });

    // Fold the hot cache back into the view for write-back.
    for (line, state) in hot {
        if line != CacheLineId(u64::MAX) {
            *view.get_mut(&line).expect("hot lines come from the view") =
                LineClass::Private(Some(state));
        }
    }
    let last_line = mat
        .accesses
        .last()
        .map(|a| a.addr.line(line_size))
        .or(last_line);
    WorkerPlan {
        events,
        instructions,
        reads,
        writes,
        view,
        llc_new,
        last_line,
        stats,
    }
}

/// Merge frontier state of one worker.
struct MergeWorker<'a> {
    id: ThreadId,
    core: CoreId,
    clock: Cycles,
    events: std::slice::Iter<'a, Ev>,
    pending: Option<&'a Ev>,
    /// Non-zero when `pending` is a hit run resumed at this read index.
    run_cursor: usize,
}

impl<'a> MergeWorker<'a> {
    /// Global time of the worker's next event.
    fn next_time(&self) -> Cycles {
        let ev = self.pending.expect("live worker has a pending event");
        if self.run_cursor > 0 {
            match &ev.kind {
                EvKind::HitRun { reads } => self.clock + reads[self.run_cursor].lead,
                _ => unreachable!("run cursor only on hit runs"),
            }
        } else {
            self.clock + ev.lead
        }
    }
}

/// Merges the precomputed event streams in exact global order, performing
/// every shared-directory access and observer callback; returns each
/// worker's end time.
#[allow(clippy::too_many_arguments)]
fn merge(
    directory: &mut Directory,
    observer: &mut dyn ExecObserver,
    workers: &[ThreadCtx],
    plans: &[WorkerPlan],
    settle: &mut Settle,
    phase_index: u32,
    latency: &LatencyModel,
    line_size: u64,
) -> Vec<Cycles> {
    let l1_cost = latency.l1_hit;
    let mut ends = vec![0; workers.len()];
    let mut merge_workers: Vec<MergeWorker<'_>> = workers
        .iter()
        .zip(plans)
        .map(|(ctx, plan)| {
            let mut events = plan.events.iter();
            let pending = events.next();
            MergeWorker {
                id: ctx.id,
                core: ctx.core,
                clock: ctx.clock,
                events,
                pending,
                run_cursor: 0,
            }
        })
        .collect();

    // Min-heap on (next event time, slot): identical ordering to the
    // classic loop's (clock, slot) heap with FIFO events per worker.
    let mut heap: BinaryHeap<Reverse<(Cycles, usize)>> = merge_workers
        .iter()
        .enumerate()
        .map(|(slot, w)| Reverse((w.next_time(), slot)))
        .collect();

    while let Some(Reverse((_, slot))) = heap.pop() {
        // Process this worker's events while no other worker could possibly
        // have an earlier one (the classic loop's burst, in event units).
        let horizon = heap.peek().map(|Reverse((t, _))| *t);
        'burst: loop {
            let w = &mut merge_workers[slot];
            let ev = w.pending.take().expect("popped worker has an event");
            match &ev.kind {
                EvKind::Exit => {
                    w.clock += ev.lead;
                    ends[slot] = w.clock;
                    observer.on_thread_exit(w.id, w.clock);
                    break 'burst;
                }
                EvKind::Dir {
                    addr,
                    kind,
                    instrs_before,
                    sequential,
                    settles,
                    surfaced,
                    perturbation,
                } => {
                    w.clock += ev.lead;
                    let line = addr.line(line_size);
                    let result = directory.access_hinted(w.core, line, *kind, w.clock, *sequential);
                    let latency_cycles = result.latency();
                    let perturb = surface(
                        observer,
                        w,
                        *addr,
                        *kind,
                        result.outcome,
                        latency_cycles,
                        *instrs_before,
                        phase_index,
                        *surfaced,
                        *perturbation,
                    );
                    w.clock += latency_cycles + perturb;
                    if *settles {
                        let remaining = settle
                            .outstanding
                            .get_mut(&line)
                            .expect("settling line is tracked");
                        *remaining -= 1;
                        if *remaining == 0 {
                            settle.unsettled_lines -= 1;
                            settle.horizon = settle.horizon.max(directory.busy_until_of(line));
                        }
                    }
                }
                EvKind::SharedHit {
                    addr,
                    instrs_before,
                    perturbation,
                } => {
                    w.clock += ev.lead;
                    let line = addr.line(line_size);
                    let wait = directory.busy_wait(line, w.clock);
                    directory.record_precomputed(AccessOutcome::L1Hit, wait);
                    let latency_cycles = wait + l1_cost;
                    let perturb = surface(
                        observer,
                        w,
                        *addr,
                        AccessKind::Read,
                        AccessOutcome::L1Hit,
                        latency_cycles,
                        *instrs_before,
                        phase_index,
                        true,
                        *perturbation,
                    );
                    w.clock += latency_cycles + perturb;
                }
                EvKind::HitRun { reads } => {
                    let mut cursor = w.run_cursor;
                    if cursor == 0 {
                        w.clock += ev.lead;
                    }
                    if settle.all_settled(w.clock + reads[cursor].lead) {
                        // Settled: no read can wait, nothing global is
                        // touched — fold the whole run atomically.
                        for read in &reads[cursor..] {
                            w.clock += read.lead + l1_cost;
                        }
                        directory.record_hit_batch((reads.len() - cursor) as u64);
                        w.run_cursor = 0;
                    } else {
                        // Unsettled: walk read by read against the real
                        // busy windows, yielding at the horizon like the
                        // classic loop (the first read of this visit is
                        // unconditional: it was the heap minimum).
                        let mut first = true;
                        loop {
                            if cursor >= reads.len() {
                                w.run_cursor = 0;
                                break;
                            }
                            let read = &reads[cursor];
                            let start = w.clock + read.lead;
                            if !first {
                                if let Some(h) = horizon {
                                    if start >= h {
                                        w.run_cursor = cursor;
                                        w.pending = Some(ev);
                                        heap.push(Reverse((start, slot)));
                                        break 'burst;
                                    }
                                }
                            }
                            first = false;
                            w.clock = start;
                            let wait = directory.busy_wait(read.addr.line(line_size), w.clock);
                            directory.record_precomputed(AccessOutcome::L1Hit, wait);
                            w.clock += wait + l1_cost;
                            cursor += 1;
                        }
                    }
                }
                EvKind::Private {
                    addr,
                    kind,
                    instrs_before,
                    outcome,
                    cost,
                    perturbation,
                } => {
                    w.clock += ev.lead;
                    // Stats were already counted by the precompute pass.
                    let perturb = surface(
                        observer,
                        w,
                        *addr,
                        *kind,
                        *outcome,
                        *cost,
                        *instrs_before,
                        phase_index,
                        true,
                        *perturbation,
                    );
                    w.clock += cost + perturb;
                }
            }
            let w = &mut merge_workers[slot];
            let next = w.events.next().expect("Exit terminates the stream");
            w.pending = Some(next);
            let next_time = w.clock + next.lead;
            if let Some(h) = horizon {
                if next_time >= h {
                    heap.push(Reverse((next_time, slot)));
                    break 'burst;
                }
            }
        }
    }
    ends
}

/// Builds the access record and invokes the observer for a surfaced access;
/// returns the perturbation to charge (the replica's when one was forked,
/// otherwise the observer's).
#[allow(clippy::too_many_arguments)]
fn surface(
    observer: &mut dyn ExecObserver,
    w: &MergeWorker<'_>,
    addr: Addr,
    kind: AccessKind,
    outcome: AccessOutcome,
    latency: Cycles,
    instrs_before: u64,
    phase_index: u32,
    surfaced: bool,
    perturbation: Option<Cycles>,
) -> Cycles {
    if surfaced {
        let record = AccessRecord {
            thread: w.id,
            core: w.core,
            addr,
            kind,
            outcome,
            latency,
            start: w.clock,
            instrs_before,
            phase_index,
            phase_kind: PhaseKind::Parallel,
        };
        let returned = observer.on_access(&record);
        perturbation.unwrap_or(returned)
    } else {
        perturbation.expect("unsurfaced access carries its judgement")
    }
}

/// Applies `f` to every item on up to `threads` scoped host threads,
/// preserving index order. Items are distributed round-robin; the result is
/// independent of the distribution because `f` is pure per item.
fn parallel_map<T: Send, R: Send>(
    items: Vec<T>,
    threads: usize,
    f: &(dyn Fn(usize, T) -> R + Sync),
) -> Vec<R> {
    let count = items.len();
    let threads = threads.min(count).max(1);
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let mut buckets: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % threads].push((i, item));
    }
    let mut out: Vec<Option<R>> = (0..count).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, item)| (i, f(i, item)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("shard host thread panicked") {
                out[i] = Some(result);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("every index produced"))
        .collect()
}
