//! Sharded deterministic execution of parallel phases.
//!
//! The classic engine ([`crate::exec`]) interleaves every thread of a
//! parallel phase through one discrete-event loop: each memory access takes
//! a heap scheduling step, a shared-directory lookup and an observer
//! callback, all on one host thread. This module executes the same phase in
//! two passes whose result is **bit-identical** to the classic loop:
//!
//! 1. **Precompute** (fanned out over host threads): each worker's access
//!    stream is replayed *locally*. Three facts make most of the work
//!    timing-independent and therefore precomputable before any global
//!    interleaving is known:
//!    * streams are deterministic state machines — the op sequence never
//!      depends on timing;
//!    * MESI transitions (`coherence::transition`) depend only on
//!      the line's state and the issuing core, never on the clock; the
//!      clock matters solely for busy-window queueing, and a line touched
//!      by a single core can never queue (each thread's clock advances past
//!      its own transactions, and pre-phase transactions complete before
//!      the phase starts);
//!    * sampling decisions ([`crate::observer::ThreadSampler`]) are pure
//!      functions of the thread's retired-instruction index.
//!
//! ## Extent-based classification
//!
//! Lines are classified by who touches them in the phase — **private**
//! (one worker, simulated entirely in precompute), **read-shared**
//! (several workers, no writes: one directory access per worker, every
//! later read a provable L1 hit) or **write-shared** (the false-sharing
//! traffic itself, fully ordered). PR 3 discovered the classes per *line*,
//! paying several hash-map operations for every distinct line — the
//! dominant cost of streaming phases that touch tens of thousands of
//! one-shot private lines. Classification is now per **extent**: each
//! stream declares its footprint as a few contiguous byte ranges
//! ([`crate::footprint`]), a single boundary sweep classifies the union
//! (`extent::ClassTable`), and the per-access hot loop resolves a
//! line's class with one cached range comparison. Streams without a
//! declared footprint fall back to materialisation, and their touched
//! lines enter the sweep as coalesced one-line extents — interleaved
//! footprints degrade to exactly the per-line behaviour of PR 3, never to
//! an incorrect classification.
//!
//! ## Write-private folding
//!
//! A private line's whole phase history is computed in precompute; only
//! *sampled* private accesses become events, everything else folds into
//! the next event's `lead` cycles. The per-line residue PR 3 still paid —
//! a map entry per line for the final MESI state, a directory insert per
//! line at write-back — is now folded too: completed private lines
//! accumulate into uniform-state **runs** (`extent::RangeList`)
//! and are written back as whole extents
//! (`Directory::restore_extent`), so a streaming
//! worker's million-access private-write sweep costs the directory a
//! handful of range splices instead of thousands of per-line events. Lines
//! whose state diverges from their run (or that were seeded from a
//! per-line directory entry, which would shadow a range restore) spill
//! into a per-line exception map — correctness never depends on the
//! folding succeeding.
//!
//! 2. **Merge** (single-threaded): the per-worker event streams are merged
//!    on a min-heap keyed by `(timestamp, worker, seq)` — the exact order
//!    the classic loop produces (its heap is keyed the same way and each
//!    worker's ops are FIFO). Shared-directory accesses, busy-window waits,
//!    observer callbacks and sample delivery all happen here, in merged
//!    global order, so coherence state, detector samples and reports come
//!    out bit-identical to the classic loop. The phase's join barrier
//!    becomes a merge barrier: the main thread resumes at the merged
//!    maximum end time, exactly as it would have at the classic join.
//!
//! ## The hit-run settling argument, per line
//!
//! A read-shared line's busy windows can only be created by *first-touch*
//! accesses (its hits never occupy the line). Once a line can provably
//! never be occupied again, a run of hits on it has no observable effect
//! other than advancing its own worker's clock and counting L1 hits — so
//! the merge folds the entire run in O(1) using its precomputed lead sum.
//! PR 3 waited for *every* read-shared line's first touches globally; the
//! settling condition is now per line, and earlier: after a line's first
//! two first-touches merge it is in `Shared` state, where further first
//! touches are LLC hits that do not occupy the line — except
//! prefetch-substituted sequential fills, which the precompute pass counts
//! per line in advance (`seq_pending`). A line is *settled* once all its
//! first touches merged, or two merged and no sequential fills remain
//! outstanding; its busy window is then final, and every hit run over
//! settled lines whose windows have passed folds without touching the heap
//! or the directory. Before that point the merge walks runs read by read
//! against the real busy windows, yielding at the horizon exactly like the
//! classic loop.
//!
//! Determinism is structural: the precompute pass is per-worker (the
//! partitioning of workers onto host threads cannot affect its output) and
//! the merge order is a pure function of worker clocks, so *any* shard
//! count — including the classic path at `shards = 1` — yields the same
//! [`crate::RunReport`]. The property tests in `tests/shard_props.rs` and
//! the `sim_throughput` bench gate assert exactly that; the
//! [`crate::metrics`] counters expose how much was merged vs folded.

use crate::coherence::{prefetchable, transition, Directory, LineState};
use crate::exec::{MachineConfig, ThreadCtx, OBS_LANE_ENGINE};
use crate::extent::{extents_from_touched, ClassTable, ExtClass, LineExtent, RangeList};
use crate::footprint::Footprint;
use crate::latency::{AccessOutcome, LatencyModel};
use crate::metrics::SimCounters;
use crate::observer::{AccessRecord, ExecObserver, SamplerFork};
use crate::program::{AccessStream, Op, OpsStream};
use crate::schedule::{SchedulePolicy, ScheduleRng};
use crate::types::{AccessKind, Addr, CacheLineId, CoreId, Cycles, PhaseKind, ThreadId};
use crate::util::{FastMap, FastSet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ways of the private hot-line cache (direct-mapped).
const HOT_WAYS: usize = 4;
/// Once a uniform-state run list fragments this far, further non-extending
/// lines spill to the per-line exception map instead of `Vec::insert`.
const FRAG_CAP: usize = 512;
/// Widest hit-run line span checked line by line for early folding; wider
/// runs wait for global settling as in PR 3.
const MAX_FOLD_SPAN: u64 = 16;

/// One read inside a hit-run: `cum_lead` is the folded local work since the
/// run started, *inclusive* of the gap before this read (the first read's
/// gap is 0 — the event's own lead covers it). Cumulative form makes both
/// the per-read walk (adjacent differences) and the O(1) fold from any
/// resume cursor (suffix = total − prefix) cheap. Unsampled by
/// construction, so no observer fields are needed.
struct HitRead {
    cum_lead: Cycles,
    addr: Addr,
}

/// One precomputed worker event, preceded by `lead` cycles of local work
/// (compute ops, unsampled private accesses and their perturbation).
struct Ev {
    lead: Cycles,
    kind: EvKind,
}

enum EvKind {
    /// An access that needs the shared directory (write-shared line, or a
    /// core's first touch of a read-shared line).
    Dir {
        addr: Addr,
        kind: AccessKind,
        instrs_before: u64,
        /// Precomputed next-line-prefetch condition (the worker's own
        /// access sequence determines it).
        sequential: bool,
        /// First touch of a read-shared line: updates the line's settling
        /// state when merged.
        settles: bool,
        surfaced: bool,
        perturbation: Option<Cycles>,
    },
    /// A *sampled* read of a read-shared line after this core's first
    /// touch: a proven L1 hit surfaced to the observer; only the
    /// busy-window wait needs global time.
    SharedHit {
        addr: Addr,
        instrs_before: u64,
        perturbation: Option<Cycles>,
    },
    /// A run of unsampled read-shared hits (see the module docs). The line
    /// span and lead sum let the merge fold the run in O(1) once every
    /// line in the span has settled.
    HitRun {
        reads: Box<[HitRead]>,
        min_line: u64,
        max_line: u64,
    },
    /// A private access that must be surfaced to the observer (sampled, or
    /// the observer demanded every access); outcome and cost precomputed.
    Private {
        addr: Addr,
        kind: AccessKind,
        instrs_before: u64,
        outcome: AccessOutcome,
        cost: Cycles,
        perturbation: Option<Cycles>,
    },
    /// End of the worker's stream; `lead` holds trailing compute cycles.
    Exit,
}

/// One materialised memory access: `work_before` compute instructions since
/// the previous access, then the access itself.
struct MatAccess {
    work_before: u64,
    addr: Addr,
    write: bool,
}

/// Materialisation output of one worker stream (the fallback for streams
/// without a declared footprint).
struct Mat {
    accesses: Vec<MatAccess>,
    /// Compute instructions after the last access.
    trailing_work: u64,
    /// Lines this worker touches, with a "did it write" flag.
    touched: FastMap<CacheLineId, bool>,
}

/// Feeds accesses to the precompute pass: either a live stream (footprint
/// known in advance, no materialisation) or a materialised trace
/// (fallback).
enum OpFeed {
    Stream {
        stream: Box<dyn AccessStream>,
        trailing: u64,
    },
    Mat(Mat, usize),
}

impl OpFeed {
    /// Next access, folding compute ops into `work_before`.
    fn next_access(&mut self) -> Option<MatAccess> {
        match self {
            OpFeed::Stream { stream, trailing } => {
                let mut work = 0u64;
                loop {
                    match stream.next_op() {
                        Some(Op::Work(n)) => work += n,
                        Some(Op::Read(addr)) => {
                            return Some(MatAccess {
                                work_before: work,
                                addr,
                                write: false,
                            })
                        }
                        Some(Op::Write(addr)) => {
                            return Some(MatAccess {
                                work_before: work,
                                addr,
                                write: true,
                            })
                        }
                        None => {
                            *trailing = work;
                            return None;
                        }
                    }
                }
            }
            OpFeed::Mat(mat, cursor) => {
                let access = mat.accesses.get(*cursor)?;
                *cursor += 1;
                Some(MatAccess {
                    work_before: access.work_before,
                    addr: access.addr,
                    write: access.write,
                })
            }
        }
    }

    /// Compute instructions after the last access (valid once exhausted).
    fn trailing_work(&self) -> u64 {
        match self {
            OpFeed::Stream { trailing, .. } => *trailing,
            OpFeed::Mat(mat, _) => mat.trailing_work,
        }
    }
}

/// Worker-local simulation of private lines, shared by the fused serial
/// path and the parallel precompute pass: a direct-mapped hot cache in
/// front of uniform-state run accumulators, with a per-line exception map
/// as the always-correct spill path.
struct PrivateSim {
    hot: [(CacheLineId, LineState, bool); HOT_WAYS],
    /// Lines that must be restored per line: seeded from a per-line
    /// directory entry (which would shadow a range restore) or diverged
    /// from their run's uniform state.
    exceptions: FastMap<CacheLineId, LineState>,
    /// Completed lines grouped by final state, coalesced into ranges.
    buckets: Vec<(LineState, RangeList)>,
    /// Lines that became LLC-resident during the phase, coalesced; spills
    /// to `llc_lines` once fragmented.
    llc_ranges: RangeList,
    llc_lines: Vec<CacheLineId>,
    stats: crate::stats::CoherenceStats,
}

const NO_LINE: CacheLineId = CacheLineId(u64::MAX);

impl PrivateSim {
    fn new(core: CoreId) -> Self {
        PrivateSim {
            hot: [(NO_LINE, LineState::Exclusive(core), false); HOT_WAYS],
            exceptions: FastMap::default(),
            buckets: Vec::new(),
            llc_ranges: RangeList::default(),
            llc_lines: Vec::new(),
            stats: crate::stats::CoherenceStats::default(),
        }
    }

    /// Final state of a line already touched this phase (not in the hot
    /// cache); `pinned` marks per-line-restore lines.
    fn lookup(&mut self, line: CacheLineId) -> Option<(LineState, bool)> {
        if !self.exceptions.is_empty() {
            if let Some(&state) = self.exceptions.get(&line) {
                return Some((state, true));
            }
        }
        for (state, ranges) in &mut self.buckets {
            if ranges.contains(line.0) {
                return Some((*state, false));
            }
        }
        None
    }

    /// Records a line's final-so-far state after it leaves the hot cache.
    fn deposit(&mut self, line: CacheLineId, state: LineState, pinned: bool) {
        if pinned {
            self.exceptions.insert(line, state);
            return;
        }
        for (bucket_state, ranges) in &mut self.buckets {
            if ranges.contains(line.0) {
                if *bucket_state != state {
                    // Diverged from its run: shadow the stale range entry.
                    self.exceptions.insert(line, state);
                }
                return;
            }
        }
        let bucket = match self
            .buckets
            .iter_mut()
            .position(|(bucket_state, _)| *bucket_state == state)
        {
            Some(idx) => &mut self.buckets[idx].1,
            None => {
                self.buckets.push((state, RangeList::default()));
                &mut self.buckets.last_mut().expect("just pushed").1
            }
        };
        if bucket.fragments() >= FRAG_CAP {
            self.exceptions.insert(line, state);
        } else {
            bucket.insert(line.0);
        }
    }

    /// Records LLC residency.
    fn llc_insert(&mut self, line: CacheLineId) {
        if self.llc_ranges.fragments() >= FRAG_CAP {
            self.llc_lines.push(line);
        } else {
            self.llc_ranges.insert(line.0);
        }
    }

    /// Simulates one private access; returns its outcome and cost.
    ///
    /// `sequential` is the precomputed next-line-prefetch condition.
    #[inline]
    fn access(
        &mut self,
        directory: &Directory,
        latency: &LatencyModel,
        core: CoreId,
        line: CacheLineId,
        write: bool,
        sequential: bool,
    ) -> (AccessOutcome, Cycles) {
        let way = (line.0 as usize) & (HOT_WAYS - 1);
        let (prev, pinned) = if self.hot[way].0 == line {
            let prev = self.hot[way].1;
            // The overwhelmingly common case: the line is already owned.
            let owned_hit = match prev {
                LineState::Modified(owner) => owner == core,
                LineState::Exclusive(owner) if !write => owner == core,
                LineState::Exclusive(owner) if owner == core => {
                    self.hot[way].1 = LineState::Modified(core);
                    true
                }
                _ => false,
            };
            if owned_hit {
                self.stats.record(AccessOutcome::L1Hit);
                return (AccessOutcome::L1Hit, latency.l1_hit);
            }
            (Some(prev), self.hot[way].2)
        } else {
            // Promote into the hot cache, depositing the evicted line.
            let seeded = match self.lookup(line) {
                Some((state, pinned)) => (Some(state), pinned),
                None => directory.seed_of(line),
            };
            if self.hot[way].0 != NO_LINE {
                let (old_line, old_state, old_pinned) = self.hot[way];
                self.deposit(old_line, old_state, old_pinned);
            }
            self.hot[way] = (
                line,
                seeded.0.unwrap_or(LineState::Exclusive(core)),
                seeded.1,
            );
            seeded
        };
        // `in_llc` only matters for cold lines.
        let in_llc = prev.is_none() && directory.llc_resident(line);
        let t = transition(
            prev,
            in_llc,
            core,
            if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        );
        self.hot[way] = (line, t.state, pinned);
        if t.llc_insert {
            self.llc_insert(line);
        }
        self.stats.invalidations += t.invalidated;
        let outcome = if sequential && prefetchable(t.outcome) {
            AccessOutcome::Prefetched
        } else {
            t.outcome
        };
        self.stats.record(outcome);
        (outcome, latency.cost(outcome))
    }

    /// Folds every completed line back into the shared directory: uniform
    /// runs as extent restores, exceptions per line (after the ranges, so
    /// their per-line entries shadow any stale range membership).
    fn write_back(mut self, directory: &mut Directory) {
        for (line, state, pinned) in self.hot {
            if line != NO_LINE {
                self.deposit(line, state, pinned);
            }
        }
        for (state, ranges) in &self.buckets {
            for (start, end) in ranges.iter() {
                directory.restore_extent(start, end, *state);
            }
        }
        for (&line, &state) in &self.exceptions {
            directory.restore_line_state(line, state);
        }
        for (start, end) in self.llc_ranges.iter() {
            directory.llc_insert_range(start, end);
        }
        for &line in &self.llc_lines {
            directory.llc_insert(line);
        }
        directory.absorb_stats(&self.stats);
    }
}

/// Precompute output of one worker.
struct WorkerPlan {
    events: Vec<Ev>,
    instructions: u64,
    reads: u64,
    writes: u64,
    /// The worker's private-line simulation state, for write-back.
    sim: PrivateSim,
    /// The worker's read-shared first touches with their prefetch flags;
    /// seeds the merge's per-line settling state.
    rs_first_touches: Vec<(CacheLineId, bool)>,
    /// Final last-touched line of the worker's core (prefetch tracker).
    last_line: Option<CacheLineId>,
    /// Footprint contract violations: accesses whose declared class did
    /// not admit them (uncovered line, foreign private line, or a write to
    /// a read-shared line). Each fell back to the fully-ordered directory
    /// path; aggregated into [`crate::metrics::FOOTPRINT_VIOLATIONS`].
    violations: u64,
    /// Metrics: accesses folded into event leads during precompute.
    folded: u64,
}

/// Per-line settling state of one read-shared line (see module docs).
struct SettleLine {
    /// First touches not yet merged.
    outstanding: u32,
    /// Unmerged first touches with the sequential-prefetch flag (the only
    /// post-`Shared` accesses that can occupy the line).
    seq_pending: u32,
    /// First touches merged so far.
    merged: u32,
    /// The line's busy window is final and folded into the horizon.
    settled: bool,
}

impl SettleLine {
    fn can_settle(&self) -> bool {
        self.outstanding == 0 || (self.merged >= 2 && self.seq_pending == 0)
    }
}

/// Merge-side settling bookkeeping.
struct Settle {
    lines: FastMap<CacheLineId, SettleLine>,
    /// Read-shared lines whose busy window is not final yet.
    unsettled_lines: usize,
    /// Latest busy-window end among settled lines.
    horizon: Cycles,
}

impl Settle {
    fn new(plans: &[WorkerPlan]) -> Settle {
        let mut lines: FastMap<CacheLineId, SettleLine> = FastMap::default();
        for plan in plans {
            for &(line, sequential) in &plan.rs_first_touches {
                let entry = lines.entry(line).or_insert(SettleLine {
                    outstanding: 0,
                    seq_pending: 0,
                    merged: 0,
                    settled: false,
                });
                entry.outstanding += 1;
                entry.seq_pending += u32::from(sequential);
            }
        }
        Settle {
            unsettled_lines: lines.len(),
            lines,
            horizon: 0,
        }
    }

    /// Whether every read-shared line is settled and quiet at `now`.
    fn all_settled(&self, now: Cycles) -> bool {
        self.unsettled_lines == 0 && self.horizon <= now
    }

    /// Records one merged first touch; folds the line's (now possibly
    /// final) busy window into the horizon.
    fn merge_first_touch(&mut self, directory: &Directory, line: CacheLineId, sequential: bool) {
        let entry = self
            .lines
            .get_mut(&line)
            .expect("settling line was announced by precompute");
        entry.outstanding -= 1;
        entry.merged += 1;
        if sequential {
            entry.seq_pending -= 1;
        }
        if !entry.settled && entry.can_settle() {
            entry.settled = true;
            self.unsettled_lines -= 1;
            self.horizon = self.horizon.max(directory.busy_until_of(line));
        }
    }

    /// Whether a hit run spanning `[min_line, max_line]` starting at
    /// `start` is provably wait-free: either everything settled globally,
    /// or every read-shared line in the (narrow) span individually settled
    /// with its final window expired.
    fn run_foldable(
        &self,
        directory: &Directory,
        min_line: u64,
        max_line: u64,
        start: Cycles,
    ) -> bool {
        if self.all_settled(start) {
            return true;
        }
        if max_line - min_line >= MAX_FOLD_SPAN {
            return false;
        }
        for line in min_line..=max_line {
            let line = CacheLineId(line);
            if let Some(entry) = self.lines.get(&line) {
                if !entry.settled || directory.busy_until_of(line) > start {
                    return false;
                }
            }
        }
        true
    }
}

/// Runs one serial phase with the sharded engine's fast local access path;
/// drop-in replacement for the classic `Execution::run_serial`.
///
/// A serial phase is the degenerate sharded phase: one thread, no other
/// actor, so *every* line is private and no classification or merge is
/// needed at all. The stream executes in a single fused pass over the same
/// [`PrivateSim`] machinery as the parallel precompute — hot-line cache,
/// uniform-run write-back, sampling replica skipping the per-access
/// observer callback. The replica forks from the main thread's *current*
/// sampling state, so repeated serial phases chain exactly.
pub(crate) fn run_serial_sharded(
    config: &MachineConfig,
    directory: &mut Directory,
    observer: &mut dyn ExecObserver,
    main: &mut ThreadCtx,
    phase_index: u32,
) {
    let mut span = config.obs.span("shard.serial", OBS_LANE_ENGINE);
    span.attr_u64("phase", u64::from(phase_index));
    let line_size = config.cache_line_size;
    let latency = &config.latency;
    let cpi = latency.cycles_per_instruction;
    let core = main.core;
    let mut fork = observer.fork_sampler(main.id);
    let mut next_tag: u64 = match &fork {
        SamplerFork::Replica(replica) => replica.next_tag(),
        _ => 0,
    };
    let mut sim = PrivateSim::new(core);
    let mut next_sequential: u64 = directory
        .last_line_for(core)
        .map_or(u64::MAX, |l| l.0.wrapping_add(1));
    let mut last_line = directory.last_line_for(core);
    let mut clock = main.clock;
    let (mut folded, mut surfaced_count) = (0u64, 0u64);

    while let Some(op) = main.stream.next_op() {
        match op {
            Op::Work(n) => {
                main.instructions += n;
                clock += n * cpi;
            }
            Op::Read(addr) | Op::Write(addr) => {
                let write = matches!(op, Op::Write(_));
                let line = addr.line(line_size);
                let (perturbation, surfaced) = match &mut fork {
                    SamplerFork::Transparent => (Some(0), false),
                    SamplerFork::EveryAccess => (None, true),
                    SamplerFork::Replica(replica) => {
                        if main.instructions >= next_tag {
                            let judgement = replica.judge(main.instructions);
                            next_tag = replica.next_tag();
                            (Some(judgement.perturbation), judgement.sampled)
                        } else {
                            (Some(0), false)
                        }
                    }
                };
                let sequential = next_sequential == line.0;
                next_sequential = line.0.wrapping_add(1);
                let (outcome, cost) = sim.access(directory, latency, core, line, write, sequential);
                let perturb = if surfaced {
                    surfaced_count += 1;
                    let record = AccessRecord {
                        thread: main.id,
                        core,
                        addr,
                        kind: if write {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        },
                        outcome,
                        latency: cost,
                        start: clock,
                        instrs_before: main.instructions,
                        phase_index,
                        phase_kind: PhaseKind::Serial,
                    };
                    let returned = observer.on_access(&record);
                    perturbation.unwrap_or(returned)
                } else {
                    folded += 1;
                    perturbation.expect("unsurfaced access has judgement")
                };
                clock += cost + perturb;
                main.instructions += 1;
                if write {
                    main.writes += 1;
                } else {
                    main.reads += 1;
                }
                last_line = Some(line);
            }
        }
    }

    sim.write_back(directory);
    directory.set_last_line(core, last_line);
    main.clock = clock;
    let counters = SimCounters::of(&config.obs);
    counters.count_folded(folded);
    counters.count_merged(surfaced_count);
    counters.count_surfaced(surfaced_count);
    span.attr_u64("folded", folded);
    span.attr_u64("surfaced", surfaced_count);
    span.finish();
}

/// Runs one parallel phase sharded; drop-in replacement for the classic
/// `Execution::run_parallel` (same inputs, same outputs, same observer
/// callback sequence). Workers must sit on pairwise-distinct cores.
pub(crate) fn run_parallel_sharded(
    config: &MachineConfig,
    directory: &mut Directory,
    observer: &mut dyn ExecObserver,
    workers: &mut [ThreadCtx],
    phase_index: u32,
    shards: usize,
) -> Vec<Cycles> {
    let line_size = config.cache_line_size;
    let latency = config.latency.clone();
    let debug_timing = std::env::var_os("CHEETAH_SHARD_TIMING").is_some();
    let t0 = std::time::Instant::now();
    let mut span_classify = config.obs.span("shard.classify", OBS_LANE_ENGINE);
    span_classify.attr_u64("phase", u64::from(phase_index));
    span_classify.attr_u64("workers", workers.len() as u64);

    // Sampling replicas, handed out after every member's on_thread_start
    // (the engine called those while spawning, before this function).
    let forks: Vec<SamplerFork> = workers
        .iter()
        .map(|w| observer.fork_sampler(w.id))
        .collect();

    // Pass 1a: footprints. Streams that declare one skip materialisation
    // entirely; the rest are drained into a trace whose touched lines
    // coalesce into exact extents.
    let streams: Vec<Box<dyn AccessStream>> = workers
        .iter_mut()
        .map(|w| std::mem::replace(&mut w.stream, Box::new(OpsStream::new(Vec::new()))))
        .collect();
    let footprints: Vec<Footprint> = streams.iter().map(|s| s.footprint()).collect();
    let feeds: Vec<OpFeed> = parallel_map(
        streams.into_iter().zip(&footprints).collect(),
        shards,
        &|_slot, (stream, footprint)| match footprint {
            Footprint::Bounded(_) => OpFeed::Stream {
                stream,
                trailing: 0,
            },
            Footprint::Unknown => OpFeed::Mat(materialize(stream, line_size), 0),
        },
    );
    let per_worker_extents: Vec<Vec<LineExtent>> = feeds
        .iter()
        .zip(&footprints)
        .map(|(feed, footprint)| match (feed, footprint) {
            (_, Footprint::Bounded(extents)) => byte_to_line_extents(extents, line_size),
            (OpFeed::Mat(mat, _), _) => extents_from_touched(&mat.touched),
            (OpFeed::Stream { .. }, Footprint::Unknown) => {
                unreachable!("unhinted stream materialised")
            }
        })
        .collect();
    let table = ClassTable::build(&per_worker_extents);
    let t_class = t0.elapsed();
    span_classify.finish();
    let mut span_precompute = config.obs.span("shard.precompute", OBS_LANE_ENGINE);
    span_precompute.attr_u64("phase", u64::from(phase_index));
    span_precompute.attr_u64("shards", shards as u64);

    // Pass 1b: per-worker event precomputation, fanned out on host threads.
    let inputs: Vec<(OpFeed, SamplerFork, u32, CoreId, Option<CacheLineId>)> = {
        let mut inputs = Vec::with_capacity(workers.len());
        let mut forks = forks.into_iter();
        for (slot, (feed, worker)) in feeds.into_iter().zip(workers.iter()).enumerate() {
            inputs.push((
                feed,
                forks.next().expect("fork per worker"),
                slot as u32,
                worker.core,
                directory.last_line_for(worker.core),
            ));
        }
        inputs
    };
    let latency_ref = &latency;
    let table_ref = &table;
    let directory_ref: &Directory = directory;
    let mut plans: Vec<WorkerPlan> = parallel_map(inputs, shards, &|_slot, input| {
        let (feed, fork, me, core, last_line) = input;
        precompute_worker(
            me,
            core,
            feed,
            fork,
            last_line,
            table_ref,
            directory_ref,
            latency_ref,
            line_size,
        )
    });
    let t_pre = t0.elapsed();
    span_precompute.finish();
    let mut span_merge = config.obs.span("shard.merge", OBS_LANE_ENGINE);
    span_merge.attr_u64("phase", u64::from(phase_index));

    // Pass 2: deterministic merge — in observed (timestamp) order, or in
    // the perturbed order a schedule policy draws from the same plans.
    let counters = SimCounters::of(&config.obs);
    let mut settle = Settle::new(&plans);
    let ends = match config.schedule {
        SchedulePolicy::Observed => merge(
            directory,
            observer,
            workers,
            &plans,
            &mut settle,
            phase_index,
            &latency,
            line_size,
            &counters,
            &mut span_merge,
        ),
        policy => merge_perturbed(
            directory,
            observer,
            workers,
            &plans,
            &mut settle,
            phase_index,
            &latency,
            line_size,
            &counters,
            &mut span_merge,
            policy,
        ),
    };
    let t_merge = t0.elapsed();
    span_merge.finish();

    // Write-back: private-line runs, LLC residency, prefetch trackers and
    // local statistics fold into the shared directory; worker totals into
    // the thread contexts.
    let mut folded = 0u64;
    let mut violations = 0u64;
    for (slot, plan) in plans.drain(..).enumerate() {
        folded += plan.folded;
        violations += plan.violations;
        plan.sim.write_back(directory);
        directory.set_last_line(workers[slot].core, plan.last_line);
        let ctx = &mut workers[slot];
        ctx.instructions = plan.instructions;
        ctx.reads = plan.reads;
        ctx.writes = plan.writes;
        ctx.clock = ends[slot];
    }
    counters.count_folded(folded);
    if violations > 0 {
        counters.count_violations(violations);
    }
    counters.add_pass_timings(
        t_class.as_nanos() as u64,
        (t_pre - t_class).as_nanos() as u64,
        (t_merge - t_pre).as_nanos() as u64,
    );
    if debug_timing {
        let t_all = t0.elapsed();
        eprintln!(
            "shard phase {phase_index}: class={:?} pre={:?} merge={:?} total={:?}",
            t_class,
            t_pre - t_class,
            t_merge - t_pre,
            t_all
        );
    }
    ends
}

/// Converts a stream's byte-extent footprint to line extents, merging
/// line-granularity overlaps (with OR'd write flags — a sound widening).
fn byte_to_line_extents(
    extents: &[crate::footprint::ByteExtent],
    line_size: u64,
) -> Vec<LineExtent> {
    let mut out: Vec<LineExtent> = Vec::with_capacity(extents.len());
    for extent in extents {
        // Empty extents claim nothing (and would underflow the line
        // conversion below); hand-built footprints may contain them.
        if extent.start >= extent.end {
            continue;
        }
        let start = extent.start / line_size;
        let end = (extent.end - 1) / line_size + 1;
        match out.last_mut() {
            Some(last) if start < last.end => {
                // Same or overlapping line(s): widen.
                last.end = last.end.max(end);
                last.wrote |= extent.wrote;
            }
            Some(last) if start == last.end && last.wrote == extent.wrote => {
                last.end = end;
            }
            _ => out.push(LineExtent {
                start,
                end,
                wrote: extent.wrote,
            }),
        }
    }
    out
}

/// Drains a stream into a compact access vector and records which lines it
/// touches.
///
/// A small direct-mapped cache of recently seen lines keeps the hot loop
/// out of the hash map: workload inner loops cycle over a handful of lines,
/// so nearly every access hits the cache.
fn materialize(mut stream: Box<dyn AccessStream>, line_size: u64) -> Mat {
    const CACHE_WAYS: usize = 8;
    let mut accesses = Vec::new();
    let mut work: u64 = 0;
    let mut touched: FastMap<CacheLineId, bool> = FastMap::default();
    let mut cache: [(CacheLineId, bool); CACHE_WAYS] = [(NO_LINE, false); CACHE_WAYS];
    while let Some(op) = stream.next_op() {
        match op {
            Op::Work(n) => work += n,
            Op::Read(addr) | Op::Write(addr) => {
                let write = matches!(op, Op::Write(_));
                let line = addr.line(line_size);
                let way = &mut cache[(line.0 as usize) & (CACHE_WAYS - 1)];
                if way.0 != line || (write && !way.1) {
                    let entry = touched.entry(line).or_insert(false);
                    *entry |= write;
                    *way = (line, *entry);
                }
                accesses.push(MatAccess {
                    work_before: std::mem::take(&mut work),
                    addr,
                    write,
                });
            }
        }
    }
    Mat {
        accesses,
        trailing_work: work,
        touched,
    }
}

/// Replays one worker's accesses locally: simulates private lines, judges
/// every access through the sampling replica, and folds everything that
/// needs no global time into event leads.
///
/// A line's class is resolved through the phase's extent table with one
/// cached range comparison in the common case; private lines run through
/// [`PrivateSim`]. (Serial phases do not come through here — they use the
/// fused loop in [`run_serial_sharded`].)
#[allow(clippy::too_many_arguments)]
fn precompute_worker(
    me: u32,
    core: CoreId,
    mut feed: OpFeed,
    mut fork: SamplerFork,
    last_line: Option<CacheLineId>,
    table: &ClassTable,
    directory: &Directory,
    latency: &LatencyModel,
    line_size: u64,
) -> WorkerPlan {
    let mut events: Vec<Ev> = Vec::new();
    let mut lead: Cycles = 0;
    let (mut instructions, mut reads, mut writes) = (0u64, 0u64, 0u64);
    let mut sim = PrivateSim::new(core);
    let cpi = latency.cycles_per_instruction;
    let mut folded = 0u64;
    let mut violations = 0u64;
    // `last.0 + 1` of the previously touched line; u64::MAX when none.
    let mut next_sequential: u64 = last_line.map_or(u64::MAX, |l| l.0.wrapping_add(1));
    let mut final_line = last_line;
    // Cached classified extent (the extent table's hot path).
    let extents = table.extents();
    let (mut cur_start, mut cur_end, mut cur_class) = (1u64, 0u64, ExtClass::WriteShared);
    // Read-shared lines this worker has first-touched.
    let mut rs_touched: RangeList = RangeList::default();
    let mut rs_touched_spill: FastSet<CacheLineId> = FastSet::default();
    let mut rs_first_touches: Vec<(CacheLineId, bool)> = Vec::new();
    // Pending sampling judgement threshold (see ThreadSampler::next_tag).
    let mut next_tag: u64 = match &fork {
        SamplerFork::Replica(replica) => replica.next_tag(),
        _ => 0,
    };
    // Open hit run (unsampled read-shared hits) plus the lead before it.
    let mut run: Vec<HitRead> = Vec::new();
    let mut run_lead: Cycles = 0;
    let mut run_cum: Cycles = 0;
    let (mut run_min, mut run_max) = (u64::MAX, 0u64);

    macro_rules! flush_run {
        () => {
            if !run.is_empty() {
                events.push(Ev {
                    lead: run_lead,
                    kind: EvKind::HitRun {
                        reads: std::mem::take(&mut run).into_boxed_slice(),
                        min_line: run_min,
                        max_line: run_max,
                    },
                });
                #[allow(unused_assignments)]
                {
                    run_cum = 0;
                    run_min = u64::MAX;
                    run_max = 0;
                }
            }
        };
    }

    while let Some(access) = feed.next_access() {
        let MatAccess {
            work_before,
            addr,
            write,
        } = access;
        instructions += work_before;
        lead += work_before * cpi;
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let line = addr.line(line_size);
        let (perturbation, surfaced) = match &mut fork {
            SamplerFork::Transparent => (Some(0), false),
            SamplerFork::EveryAccess => (None, true),
            SamplerFork::Replica(replica) => {
                if instructions >= next_tag {
                    let judgement = replica.judge(instructions);
                    next_tag = replica.next_tag();
                    (Some(judgement.perturbation), judgement.sampled)
                } else {
                    (Some(0), false)
                }
            }
        };
        let sequential = next_sequential == line.0;
        next_sequential = line.0.wrapping_add(1);
        final_line = Some(line);
        instructions += 1;
        if write {
            writes += 1;
        } else {
            reads += 1;
        }

        if !(cur_start <= line.0 && line.0 < cur_end) {
            match table.find(line) {
                Some(idx) => {
                    let extent = extents[idx];
                    (cur_start, cur_end, cur_class) = (extent.start, extent.end, extent.class);
                }
                None => {
                    // Contract violation: the line lies outside every
                    // declared footprint, so some stream's
                    // Footprint::Bounded under-approximated its accesses.
                    // Treat the line as write-shared — the fully-ordered
                    // directory path, correct for any sharing pattern —
                    // and count it so the lint can surface the workload
                    // bug instead of the run dying here.
                    (cur_start, cur_end, cur_class) = (line.0, line.0 + 1, ExtClass::WriteShared);
                    violations += 1;
                }
            }
        }
        // Per-access contract checks the extent cache cannot express: a
        // line classified private to a *different* worker, or a write to a
        // line every footprint declared read-only. Both mean some footprint
        // under-declared this worker's traffic; demote the access to the
        // write-shared path and count the violation.
        let class = match cur_class {
            ExtClass::Private(owner) if owner != me => {
                violations += 1;
                ExtClass::WriteShared
            }
            ExtClass::ReadShared if write => {
                violations += 1;
                ExtClass::WriteShared
            }
            class => class,
        };
        match class {
            ExtClass::Private(_) => {
                let (outcome, cost) = sim.access(directory, latency, core, line, write, sequential);
                if surfaced {
                    flush_run!();
                    events.push(Ev {
                        lead: std::mem::take(&mut lead),
                        kind: EvKind::Private {
                            addr,
                            kind,
                            instrs_before: instructions - 1,
                            outcome,
                            cost,
                            perturbation,
                        },
                    });
                } else {
                    folded += 1;
                    lead += cost + perturbation.expect("unsurfaced access has judgement");
                }
            }
            ExtClass::ReadShared => {
                let touched = rs_touched.contains(line.0)
                    || (!rs_touched_spill.is_empty() && rs_touched_spill.contains(&line));
                if !touched {
                    if rs_touched.fragments() >= FRAG_CAP {
                        rs_touched_spill.insert(line);
                    } else {
                        rs_touched.insert(line.0);
                    }
                    rs_first_touches.push((line, sequential));
                    flush_run!();
                    events.push(Ev {
                        lead: std::mem::take(&mut lead),
                        kind: EvKind::Dir {
                            addr,
                            kind,
                            instrs_before: instructions - 1,
                            sequential,
                            settles: true,
                            surfaced,
                            perturbation,
                        },
                    });
                } else if surfaced {
                    flush_run!();
                    events.push(Ev {
                        lead: std::mem::take(&mut lead),
                        kind: EvKind::SharedHit {
                            addr,
                            instrs_before: instructions - 1,
                            perturbation,
                        },
                    });
                } else {
                    // Join (or open) the hit run; perturbation lands after
                    // the hit, i.e. in the next lead.
                    if run.is_empty() {
                        run_lead = std::mem::take(&mut lead);
                    } else {
                        run_cum += std::mem::take(&mut lead);
                    }
                    run.push(HitRead {
                        cum_lead: run_cum,
                        addr,
                    });
                    run_min = run_min.min(line.0);
                    run_max = run_max.max(line.0);
                    lead += perturbation.expect("unsurfaced access has judgement");
                }
            }
            ExtClass::WriteShared => {
                flush_run!();
                events.push(Ev {
                    lead: std::mem::take(&mut lead),
                    kind: EvKind::Dir {
                        addr,
                        kind,
                        instrs_before: instructions - 1,
                        sequential,
                        settles: false,
                        surfaced,
                        perturbation,
                    },
                });
            }
        }
    }
    instructions += feed.trailing_work();
    lead += feed.trailing_work() * cpi;
    flush_run!();
    events.push(Ev {
        lead,
        kind: EvKind::Exit,
    });

    WorkerPlan {
        events,
        instructions,
        reads,
        writes,
        sim,
        rs_first_touches,
        last_line: final_line,
        violations,
        folded,
    }
}

/// Merge frontier state of one worker.
struct MergeWorker<'a> {
    id: ThreadId,
    core: CoreId,
    clock: Cycles,
    events: std::slice::Iter<'a, Ev>,
    pending: Option<&'a Ev>,
    /// Non-zero when `pending` is a hit run resumed at this read index.
    run_cursor: usize,
}

impl<'a> MergeWorker<'a> {
    /// Global time of the worker's next event.
    fn next_time(&self) -> Cycles {
        let ev = self.pending.expect("live worker has a pending event");
        if self.run_cursor > 0 {
            match &ev.kind {
                EvKind::HitRun { reads, .. } => self.clock + run_lead_at(reads, self.run_cursor),
                _ => unreachable!("run cursor only on hit runs"),
            }
        } else {
            self.clock + ev.lead
        }
    }
}

/// Folded local work between read `cursor - 1` and read `cursor` of a run
/// (for `cursor = 0`, the event's own lead already covered it).
#[inline]
fn run_lead_at(reads: &[HitRead], cursor: usize) -> Cycles {
    if cursor == 0 {
        reads[0].cum_lead
    } else {
        reads[cursor].cum_lead - reads[cursor - 1].cum_lead
    }
}

/// Merges the precomputed event streams in exact global order, performing
/// every shared-directory access and observer callback; returns each
/// worker's end time.
#[allow(clippy::too_many_arguments)]
fn merge(
    directory: &mut Directory,
    observer: &mut dyn ExecObserver,
    workers: &[ThreadCtx],
    plans: &[WorkerPlan],
    settle: &mut Settle,
    phase_index: u32,
    latency: &LatencyModel,
    line_size: u64,
    counters: &SimCounters,
    span: &mut cheetah_obs::SpanGuard,
) -> Vec<Cycles> {
    let l1_cost = latency.l1_hit;
    let mut ends = vec![0; workers.len()];
    let (mut merged_count, mut folded_count, mut surfaced_count) = (0u64, 0u64, 0u64);
    let mut merge_workers: Vec<MergeWorker<'_>> = workers
        .iter()
        .zip(plans)
        .map(|(ctx, plan)| {
            let mut events = plan.events.iter();
            let pending = events.next();
            MergeWorker {
                id: ctx.id,
                core: ctx.core,
                clock: ctx.clock,
                events,
                pending,
                run_cursor: 0,
            }
        })
        .collect();

    // Min-heap on (next event time, slot): identical ordering to the
    // classic loop's (clock, slot) heap with FIFO events per worker.
    let mut heap: BinaryHeap<Reverse<(Cycles, usize)>> = merge_workers
        .iter()
        .enumerate()
        .map(|(slot, w)| Reverse((w.next_time(), slot)))
        .collect();

    while let Some(Reverse((_, slot))) = heap.pop() {
        // Process this worker's events while no other worker could possibly
        // have an earlier one (the classic loop's burst, in event units).
        let horizon = heap.peek().map(|Reverse((t, _))| *t);
        'burst: loop {
            let w = &mut merge_workers[slot];
            let ev = w.pending.take().expect("popped worker has an event");
            match &ev.kind {
                EvKind::Exit => {
                    w.clock += ev.lead;
                    ends[slot] = w.clock;
                    observer.on_thread_exit(w.id, w.clock);
                    break 'burst;
                }
                EvKind::Dir {
                    addr,
                    kind,
                    instrs_before,
                    sequential,
                    settles,
                    surfaced,
                    perturbation,
                } => {
                    merged_count += 1;
                    w.clock += ev.lead;
                    let line = addr.line(line_size);
                    let result = directory.access_hinted(w.core, line, *kind, w.clock, *sequential);
                    let latency_cycles = result.latency();
                    if *surfaced {
                        surfaced_count += 1;
                    }
                    let perturb = surface(
                        observer,
                        w,
                        *addr,
                        *kind,
                        result.outcome,
                        latency_cycles,
                        *instrs_before,
                        phase_index,
                        *surfaced,
                        *perturbation,
                    );
                    w.clock += latency_cycles + perturb;
                    if *settles {
                        settle.merge_first_touch(directory, line, *sequential);
                    }
                }
                EvKind::SharedHit {
                    addr,
                    instrs_before,
                    perturbation,
                } => {
                    merged_count += 1;
                    surfaced_count += 1;
                    w.clock += ev.lead;
                    let line = addr.line(line_size);
                    let wait = directory.busy_wait(line, w.clock);
                    directory.record_precomputed(AccessOutcome::L1Hit, wait);
                    let latency_cycles = wait + l1_cost;
                    let perturb = surface(
                        observer,
                        w,
                        *addr,
                        AccessKind::Read,
                        AccessOutcome::L1Hit,
                        latency_cycles,
                        *instrs_before,
                        phase_index,
                        true,
                        *perturbation,
                    );
                    w.clock += latency_cycles + perturb;
                }
                EvKind::HitRun {
                    reads,
                    min_line,
                    max_line,
                } => {
                    let mut cursor = w.run_cursor;
                    if cursor == 0 {
                        w.clock += ev.lead;
                    }
                    // Walk read by read against the real busy windows while
                    // any line in the span could still be occupied, folding
                    // the remainder the moment it settles; yield at the
                    // horizon exactly like the classic loop (the first read
                    // of this visit is unconditional: it was the heap
                    // minimum).
                    let mut first = true;
                    loop {
                        if cursor >= reads.len() {
                            w.run_cursor = 0;
                            break;
                        }
                        let start = w.clock + run_lead_at(reads, cursor);
                        if settle.run_foldable(directory, *min_line, *max_line, start) {
                            // Settled: no read can wait, nothing global is
                            // touched — fold the rest atomically.
                            let n = (reads.len() - cursor) as u64;
                            let prefix = if cursor == 0 {
                                0
                            } else {
                                reads[cursor - 1].cum_lead
                            };
                            let total = reads[reads.len() - 1].cum_lead;
                            w.clock += (total - prefix) + n * l1_cost;
                            directory.record_hit_batch(n);
                            folded_count += n;
                            w.run_cursor = 0;
                            break;
                        }
                        if !first {
                            if let Some(h) = horizon {
                                if start >= h {
                                    w.run_cursor = cursor;
                                    w.pending = Some(ev);
                                    heap.push(Reverse((start, slot)));
                                    break 'burst;
                                }
                            }
                        }
                        first = false;
                        merged_count += 1;
                        w.clock = start;
                        let wait = directory.busy_wait(reads[cursor].addr.line(line_size), w.clock);
                        directory.record_precomputed(AccessOutcome::L1Hit, wait);
                        w.clock += wait + l1_cost;
                        cursor += 1;
                    }
                }
                EvKind::Private {
                    addr,
                    kind,
                    instrs_before,
                    outcome,
                    cost,
                    perturbation,
                } => {
                    merged_count += 1;
                    surfaced_count += 1;
                    w.clock += ev.lead;
                    // Stats were already counted by the precompute pass.
                    let perturb = surface(
                        observer,
                        w,
                        *addr,
                        *kind,
                        *outcome,
                        *cost,
                        *instrs_before,
                        phase_index,
                        true,
                        *perturbation,
                    );
                    w.clock += cost + perturb;
                }
            }
            let w = &mut merge_workers[slot];
            let next = w.events.next().expect("Exit terminates the stream");
            w.pending = Some(next);
            let next_time = w.clock + next.lead;
            if let Some(h) = horizon {
                if next_time >= h {
                    heap.push(Reverse((next_time, slot)));
                    break 'burst;
                }
            }
        }
    }
    counters.count_merged(merged_count);
    counters.count_folded(folded_count);
    counters.count_surfaced(surfaced_count);
    span.attr_u64("merged", merged_count);
    span.attr_u64("folded", folded_count);
    span.attr_u64("surfaced", surfaced_count);
    ends
}

/// Merges the precomputed event streams in a *perturbed* global order
/// drawn by `policy` (never [`SchedulePolicy::Observed`] — the caller
/// routes that to [`merge`]): at every step one live worker is selected
/// and its next residue event is replayed in full, so per-worker program
/// order is preserved by construction while the cross-worker interleaving
/// explores a different feasible schedule.
///
/// Worker clocks still advance through each worker's own leads and
/// latencies, but the *directory* sees events in selection order: a
/// write-shared line whose observed schedule kept its writers apart is
/// driven through the MESI ping-pong a different scheduler could have
/// produced. Busy-window waits saturate (`busy_until − now` at the
/// worker's own, possibly earlier, clock), so non-monotonic arrival times
/// are safe. Selection is a pure function of the policy seed, the phase
/// index and the per-worker plans — deterministic given `(seed, shards)`,
/// and in fact identical at every shard count.
#[allow(clippy::too_many_arguments)]
fn merge_perturbed(
    directory: &mut Directory,
    observer: &mut dyn ExecObserver,
    workers: &[ThreadCtx],
    plans: &[WorkerPlan],
    settle: &mut Settle,
    phase_index: u32,
    latency: &LatencyModel,
    line_size: u64,
    counters: &SimCounters,
    span: &mut cheetah_obs::SpanGuard,
    policy: SchedulePolicy,
) -> Vec<Cycles> {
    let (contend, seed) = match policy {
        SchedulePolicy::SeededShuffle { seed } => (false, seed),
        SchedulePolicy::ContentionMax { seed } => (true, seed),
        SchedulePolicy::Observed => unreachable!("observed schedules use the ordered merge"),
    };
    let mut rng = ScheduleRng::for_phase(seed, phase_index);
    let l1_cost = latency.l1_hit;
    let mut ends = vec![0; workers.len()];
    let (mut merged_count, mut folded_count, mut surfaced_count) = (0u64, 0u64, 0u64);
    let (mut selections, mut reordered) = (0u64, 0u64);
    // Last core to *merge* a write per line — the contention heuristic's
    // view of who owns each line right now.
    let mut last_writer: FastMap<CacheLineId, CoreId> = FastMap::default();
    let mut merge_workers: Vec<MergeWorker<'_>> = workers
        .iter()
        .zip(plans)
        .map(|(ctx, plan)| {
            let mut events = plan.events.iter();
            let pending = events.next();
            MergeWorker {
                id: ctx.id,
                core: ctx.core,
                clock: ctx.clock,
                events,
                pending,
                run_cursor: 0,
            }
        })
        .collect();
    let mut live: Vec<usize> = (0..merge_workers.len()).collect();

    while !live.is_empty() {
        // Select the next worker. The contention heuristic prefers
        // directory writes that land on a line a *different* core wrote
        // last (each such merge is an invalidation); the shuffle — and
        // the heuristic's fallback — draws uniformly among live workers.
        let choice = if live.len() == 1 {
            0
        } else if contend {
            let mut contending: Vec<usize> = Vec::new();
            for (i, &slot) in live.iter().enumerate() {
                let w = &merge_workers[slot];
                if let Some(Ev {
                    kind: EvKind::Dir { addr, kind, .. },
                    ..
                }) = w.pending
                {
                    if *kind == AccessKind::Write
                        && last_writer
                            .get(&addr.line(line_size))
                            .is_some_and(|&owner| owner != w.core)
                    {
                        contending.push(i);
                    }
                }
            }
            if contending.is_empty() {
                rng.pick(live.len())
            } else {
                contending[rng.pick(contending.len())]
            }
        } else {
            rng.pick(live.len())
        };
        let slot = live[choice];
        selections += 1;
        let earliest = live
            .iter()
            .map(|&s| merge_workers[s].next_time())
            .min()
            .expect("live set is nonempty");
        if merge_workers[slot].next_time() > earliest {
            reordered += 1;
        }

        let w = &mut merge_workers[slot];
        let ev = w.pending.take().expect("live worker has a pending event");
        match &ev.kind {
            EvKind::Exit => {
                w.clock += ev.lead;
                ends[slot] = w.clock;
                observer.on_thread_exit(w.id, w.clock);
                live.swap_remove(choice);
                continue;
            }
            EvKind::Dir {
                addr,
                kind,
                instrs_before,
                sequential,
                settles,
                surfaced,
                perturbation,
            } => {
                merged_count += 1;
                w.clock += ev.lead;
                let line = addr.line(line_size);
                let result = directory.access_hinted(w.core, line, *kind, w.clock, *sequential);
                let latency_cycles = result.latency();
                if *surfaced {
                    surfaced_count += 1;
                }
                let perturb = surface(
                    observer,
                    w,
                    *addr,
                    *kind,
                    result.outcome,
                    latency_cycles,
                    *instrs_before,
                    phase_index,
                    *surfaced,
                    *perturbation,
                );
                w.clock += latency_cycles + perturb;
                if *settles {
                    settle.merge_first_touch(directory, line, *sequential);
                }
                if contend && *kind == AccessKind::Write {
                    last_writer.insert(line, w.core);
                }
            }
            EvKind::SharedHit {
                addr,
                instrs_before,
                perturbation,
            } => {
                merged_count += 1;
                surfaced_count += 1;
                w.clock += ev.lead;
                let line = addr.line(line_size);
                let wait = directory.busy_wait(line, w.clock);
                directory.record_precomputed(AccessOutcome::L1Hit, wait);
                let latency_cycles = wait + l1_cost;
                let perturb = surface(
                    observer,
                    w,
                    *addr,
                    AccessKind::Read,
                    AccessOutcome::L1Hit,
                    latency_cycles,
                    *instrs_before,
                    phase_index,
                    true,
                    *perturbation,
                );
                w.clock += latency_cycles + perturb;
            }
            EvKind::HitRun {
                reads,
                min_line,
                max_line,
            } => {
                // One selection replays the whole run (hit runs touch
                // nothing another worker can contend on, so splitting
                // them across selections would not change any outcome).
                w.clock += ev.lead;
                let mut cursor = 0;
                while cursor < reads.len() {
                    let start = w.clock + run_lead_at(reads, cursor);
                    if settle.run_foldable(directory, *min_line, *max_line, start) {
                        let n = (reads.len() - cursor) as u64;
                        let prefix = if cursor == 0 {
                            0
                        } else {
                            reads[cursor - 1].cum_lead
                        };
                        let total = reads[reads.len() - 1].cum_lead;
                        w.clock += (total - prefix) + n * l1_cost;
                        directory.record_hit_batch(n);
                        folded_count += n;
                        break;
                    }
                    merged_count += 1;
                    w.clock = start;
                    let wait = directory.busy_wait(reads[cursor].addr.line(line_size), w.clock);
                    directory.record_precomputed(AccessOutcome::L1Hit, wait);
                    w.clock += wait + l1_cost;
                    cursor += 1;
                }
            }
            EvKind::Private {
                addr,
                kind,
                instrs_before,
                outcome,
                cost,
                perturbation,
            } => {
                merged_count += 1;
                surfaced_count += 1;
                w.clock += ev.lead;
                let perturb = surface(
                    observer,
                    w,
                    *addr,
                    *kind,
                    *outcome,
                    *cost,
                    *instrs_before,
                    phase_index,
                    true,
                    *perturbation,
                );
                w.clock += cost + perturb;
            }
        }
        let w = &mut merge_workers[slot];
        w.pending = Some(w.events.next().expect("Exit terminates the stream"));
    }
    counters.count_merged(merged_count);
    counters.count_folded(folded_count);
    counters.count_surfaced(surfaced_count);
    counters.count_schedule(selections, reordered);
    span.attr_str("policy", policy.to_string());
    span.attr_u64("seed", seed);
    span.attr_u64("merged", merged_count);
    span.attr_u64("folded", folded_count);
    span.attr_u64("surfaced", surfaced_count);
    span.attr_u64("selections", selections);
    span.attr_u64("reordered", reordered);
    ends
}

/// Builds the access record and invokes the observer for a surfaced access;
/// returns the perturbation to charge (the replica's when one was forked,
/// otherwise the observer's).
#[allow(clippy::too_many_arguments)]
fn surface(
    observer: &mut dyn ExecObserver,
    w: &MergeWorker<'_>,
    addr: Addr,
    kind: AccessKind,
    outcome: AccessOutcome,
    latency: Cycles,
    instrs_before: u64,
    phase_index: u32,
    surfaced: bool,
    perturbation: Option<Cycles>,
) -> Cycles {
    if surfaced {
        let record = AccessRecord {
            thread: w.id,
            core: w.core,
            addr,
            kind,
            outcome,
            latency,
            start: w.clock,
            instrs_before,
            phase_index,
            phase_kind: PhaseKind::Parallel,
        };
        let returned = observer.on_access(&record);
        perturbation.unwrap_or(returned)
    } else {
        perturbation.expect("unsurfaced access carries its judgement")
    }
}

/// Applies `f` to every item on up to `threads` scoped host threads,
/// preserving index order. Items are distributed round-robin; the result is
/// independent of the distribution because `f` is pure per item.
fn parallel_map<T: Send, R: Send>(
    items: Vec<T>,
    threads: usize,
    f: &(dyn Fn(usize, T) -> R + Sync),
) -> Vec<R> {
    let count = items.len();
    let threads = threads.min(count).max(1);
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let mut buckets: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % threads].push((i, item));
    }
    let mut out: Vec<Option<R>> = (0..count).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, item)| (i, f(i, item)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("shard host thread panicked") {
                out[i] = Some(result);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("every index produced"))
        .collect()
}
