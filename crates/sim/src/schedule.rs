//! Schedule-space perturbation policies for the sharded merge.
//!
//! The sharded executor (see [`crate::shard`]) splits a parallel phase
//! into order-independent per-worker precompute and a small *ordered
//! residue* — directory events, shared-hit waits and hit-run walks — that
//! the merge replays in exact global time order. SmartTrack-style
//! predictive analyses observe that the residue's order is exactly the
//! part of an execution the scheduler could have chosen differently: a
//! fork-join phase has no intra-phase synchronisation, so *any*
//! interleaving of the residue that respects each worker's program order
//! is a feasible execution of the program.
//!
//! A [`SchedulePolicy`] picks one of those feasible interleavings:
//!
//! * [`SchedulePolicy::Observed`] — the timestamp order the hardware
//!   would produce; byte-identical to a run without a policy.
//! * [`SchedulePolicy::SeededShuffle`] — a seeded uniform shuffle of the
//!   ready residue events, exploring interleavings the observed timing
//!   happened to exclude.
//! * [`SchedulePolicy::ContentionMax`] — a heuristic that prefers
//!   directory writes landing on a line another core wrote last, driving
//!   write-shared lines into worst-case ping-pong.
//!
//! Every perturbed run is **deterministic given `(seed, shards)`** — in
//! fact independent of the shard count entirely: the per-worker event
//! plans are pure functions of the program, and the policy's choices are
//! a pure function of the seed and those plans. Per-worker program order
//! and footprint contracts are preserved by construction (events are
//! consumed from each worker's FIFO plan; classification happens before
//! any ordering decision), so `sim.footprint_violations` is identical
//! between observed and perturbed runs of the same program.

use std::fmt;

/// How the merge orders the ordered residue of each parallel phase.
///
/// Set on [`crate::MachineConfig::schedule`]; see the module docs for the
/// determinism and feasibility arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulePolicy {
    /// Merge in observed (timestamp) order — the default, bit-identical
    /// to the classic discrete-event loop.
    Observed,
    /// At each step, pick the next worker uniformly at random among live
    /// workers, from a deterministic generator seeded with `seed`.
    SeededShuffle {
        /// Seed of the per-phase deterministic generator.
        seed: u64,
    },
    /// At each step, prefer workers whose next event is a directory write
    /// to a line last written by a *different* core (maximising
    /// invalidation ping-pong); ties and contention-free steps fall back
    /// to the seeded uniform choice.
    ContentionMax {
        /// Seed of the per-phase deterministic generator.
        seed: u64,
    },
}

impl SchedulePolicy {
    /// Whether this is the observed (unperturbed) schedule.
    pub fn is_observed(&self) -> bool {
        matches!(self, SchedulePolicy::Observed)
    }

    /// The policy's seed, if it has one.
    pub fn seed(&self) -> Option<u64> {
        match self {
            SchedulePolicy::Observed => None,
            SchedulePolicy::SeededShuffle { seed } | SchedulePolicy::ContentionMax { seed } => {
                Some(*seed)
            }
        }
    }
}

impl fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulePolicy::Observed => f.write_str("observed"),
            SchedulePolicy::SeededShuffle { seed } => write!(f, "shuffle:{seed}"),
            SchedulePolicy::ContentionMax { seed } => write!(f, "contend:{seed}"),
        }
    }
}

/// The perturbed merge's deterministic generator: xorshift64 over a
/// splitmix-scrambled seed (adjacent seeds diverge immediately; the
/// scramble is forced odd so the state is never zero).
#[derive(Debug, Clone)]
pub(crate) struct ScheduleRng {
    state: u64,
}

impl ScheduleRng {
    /// Generator for one parallel phase: the policy seed and phase index
    /// are mixed so repeated phases of one program draw distinct
    /// schedules while staying reproducible.
    pub(crate) fn for_phase(seed: u64, phase_index: u32) -> ScheduleRng {
        let mut z =
            seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(phase_index) + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ScheduleRng { state: z | 1 }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform index in `0..n` (`n` must be nonzero).
    pub(crate) fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_are_stable() {
        assert_eq!(SchedulePolicy::Observed.to_string(), "observed");
        assert_eq!(
            SchedulePolicy::SeededShuffle { seed: 7 }.to_string(),
            "shuffle:7"
        );
        assert_eq!(
            SchedulePolicy::ContentionMax { seed: 3 }.to_string(),
            "contend:3"
        );
    }

    #[test]
    fn seeds_and_observedness() {
        assert!(SchedulePolicy::Observed.is_observed());
        assert_eq!(SchedulePolicy::Observed.seed(), None);
        assert_eq!(SchedulePolicy::SeededShuffle { seed: 9 }.seed(), Some(9));
        assert!(!SchedulePolicy::ContentionMax { seed: 0 }.is_observed());
    }

    #[test]
    fn rng_is_deterministic_and_phase_dependent() {
        let draw = |seed, phase| {
            let mut rng = ScheduleRng::for_phase(seed, phase);
            (0..8).map(|_| rng.pick(5)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42, 0), draw(42, 0));
        assert_ne!(draw(42, 0), draw(42, 1), "phases draw distinct schedules");
        assert_ne!(draw(42, 0), draw(43, 0), "seeds draw distinct schedules");
    }

    #[test]
    fn picks_cover_the_range() {
        let mut rng = ScheduleRng::for_phase(0, 0);
        let mut seen = [false; 7];
        for _ in 0..256 {
            seen[rng.pick(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform pick reaches every slot");
    }
}
