//! Address-space conventions shared by the workspace, plus the layout
//! remapping API used by automated repair.
//!
//! The simulator itself treats addresses as opaque numbers; the allocator,
//! workloads and detector agree on this segmentation so that a profiler can
//! classify an address as heap, global or other in O(1) — the role the
//! paper's "driver" module plays when it filters sampled addresses.
//!
//! [`LayoutMap`] expresses a *layout transformation*: an ordered set of
//! disjoint source byte ranges, each redirected to a new base address.
//! Applying a map to a [`crate::Program`] (via
//! [`crate::Program::with_layout`]) rewrites only the addresses of its
//! memory operations — op streams, op counts, compute work and the
//! fork-join phase structure are untouched, so the transformed program is
//! semantically the same program with a different data layout. This is the
//! substrate `cheetah-repair` builds padding/alignment/splitting fixes on.

use crate::types::Addr;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// First byte of the global-variable segment.
pub const GLOBALS_BASE: Addr = Addr(0x1000_0000);
/// One past the last byte of the global-variable segment (256 MiB).
pub const GLOBALS_END: Addr = Addr(0x2000_0000);
/// First byte of the modelled heap segment.
pub const HEAP_BASE: Addr = Addr(0x4000_0000);
/// One past the last byte of the modelled heap segment (1 GiB).
pub const HEAP_END: Addr = Addr(0x8000_0000);

/// Segment classification of an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Statically allocated globals.
    Globals,
    /// The modelled heap.
    Heap,
    /// Anything else (stack, kernel, libraries) — filtered out by the
    /// profiler, as in the paper.
    Other,
}

/// Classifies an address into its segment.
///
/// ```
/// use cheetah_sim::layout::{classify, Segment, HEAP_BASE};
/// use cheetah_sim::Addr;
/// assert_eq!(classify(HEAP_BASE), Segment::Heap);
/// assert_eq!(classify(Addr(0x10)), Segment::Other);
/// ```
pub fn classify(addr: Addr) -> Segment {
    if (GLOBALS_BASE..GLOBALS_END).contains(&addr) {
        Segment::Globals
    } else if (HEAP_BASE..HEAP_END).contains(&addr) {
        Segment::Heap
    } else {
        Segment::Other
    }
}

/// One rule of a [`LayoutMap`]: redirect `[from, from + len)` to
/// `[to, to + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Remapping {
    /// First source byte.
    pub from: Addr,
    /// Length of the range in bytes.
    pub len: u64,
    /// First target byte.
    pub to: Addr,
}

impl Remapping {
    /// Creates a rule.
    pub fn new(from: Addr, len: u64, to: Addr) -> Self {
        Remapping { from, len, to }
    }

    /// One past the last source byte.
    pub fn from_end(&self) -> Addr {
        Addr(self.from.0 + self.len)
    }

    /// One past the last target byte.
    pub fn to_end(&self) -> Addr {
        Addr(self.to.0 + self.len)
    }

    fn contains(&self, addr: Addr) -> bool {
        (self.from..self.from_end()).contains(&addr)
    }
}

impl fmt::Display for Remapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}) -> {}", self.from, self.from_end(), self.to)
    }
}

/// Errors from [`LayoutMap::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A rule has zero length.
    EmptyRange(Remapping),
    /// Two rules' source ranges overlap — the translation would be
    /// ambiguous.
    OverlappingSources(Remapping, Remapping),
    /// Two rules' target ranges overlap — two distinct source bytes would
    /// alias, changing program semantics.
    OverlappingTargets(Remapping, Remapping),
    /// A rule's target range overlaps the source ranges only partially, so
    /// the vacated part and the left-in-place part of the target would
    /// alias distinct pre-rewrite addresses.
    TargetPartiallyCoversSource(Remapping),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::EmptyRange(rule) => write!(f, "empty remapping {rule}"),
            LayoutError::OverlappingSources(a, b) => {
                write!(f, "source ranges overlap: {a} and {b}")
            }
            LayoutError::OverlappingTargets(a, b) => {
                write!(f, "target ranges overlap: {a} and {b}")
            }
            LayoutError::TargetPartiallyCoversSource(rule) => {
                write!(
                    f,
                    "target range of {rule} partially overlaps a source range; \
                     translation would alias distinct addresses"
                )
            }
        }
    }
}

impl Error for LayoutError {}

/// An address-space transformation: disjoint source ranges redirected to
/// disjoint target ranges; every other address translates to itself.
///
/// ```
/// use cheetah_sim::layout::{LayoutMap, Remapping};
/// use cheetah_sim::Addr;
///
/// let map = LayoutMap::new(vec![
///     Remapping::new(Addr(0x100), 16, Addr(0x1000)),
///     Remapping::new(Addr(0x200), 16, Addr(0x2000)),
/// ])?;
/// assert_eq!(map.translate(Addr(0x104)), Addr(0x1004));
/// assert_eq!(map.translate(Addr(0x300)), Addr(0x300)); // unmapped
/// # Ok::<(), cheetah_sim::layout::LayoutError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LayoutMap {
    /// Rules sorted by source start.
    rules: Vec<Remapping>,
}

impl LayoutMap {
    /// Builds a map from rules, validating disjointness.
    ///
    /// A target range may coincide with source ranges *exactly* (swaps:
    /// the rewrite is applied in one step, so sources vacate their bytes)
    /// or avoid them entirely (fresh storage), but must not overlap them
    /// partially — the uncovered part of such a target would alias an
    /// address that still translates to itself.
    ///
    /// Translation is then injective over every address the map was built
    /// for, with one caveat no constructor can check: a target range must
    /// not collide with addresses the program uses *unmapped*. Allocating
    /// targets from fresh storage (as `cheetah-repair` does via the heap)
    /// guarantees this.
    ///
    /// # Errors
    ///
    /// [`LayoutError`] if any rule is empty, source or target ranges
    /// overlap each other, or a target partially covers a source.
    pub fn new(mut rules: Vec<Remapping>) -> Result<Self, LayoutError> {
        for rule in &rules {
            if rule.len == 0 {
                return Err(LayoutError::EmptyRange(*rule));
            }
        }
        rules.sort_by_key(|rule| rule.from);
        for pair in rules.windows(2) {
            if pair[1].from < pair[0].from_end() {
                return Err(LayoutError::OverlappingSources(pair[0], pair[1]));
            }
        }
        let mut by_target = rules.clone();
        by_target.sort_by_key(|rule| rule.to);
        for pair in by_target.windows(2) {
            if pair[1].to < pair[0].to_end() {
                return Err(LayoutError::OverlappingTargets(pair[0], pair[1]));
            }
        }
        for rule in &by_target {
            // Bytes of this target that fall inside some source range are
            // vacated by the rewrite; the rest stay identity-mapped. A mix
            // of the two would alias, so require all or nothing.
            let covered: u64 = rules
                .iter()
                .map(|source| {
                    let start = rule.to.0.max(source.from.0);
                    let end = rule.to_end().0.min(source.from_end().0);
                    end.saturating_sub(start)
                })
                .sum();
            if covered != 0 && covered != rule.len {
                return Err(LayoutError::TargetPartiallyCoversSource(*rule));
            }
        }
        Ok(LayoutMap { rules })
    }

    /// The identity transformation.
    pub fn identity() -> Self {
        LayoutMap::default()
    }

    /// Whether the map changes nothing.
    pub fn is_identity(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules, sorted by source start.
    pub fn rules(&self) -> &[Remapping] {
        &self.rules
    }

    /// Translates one address.
    pub fn translate(&self, addr: Addr) -> Addr {
        // Binary search for the last rule starting at or before `addr`.
        let index = self.rules.partition_point(|rule| rule.from <= addr);
        if index == 0 {
            return addr;
        }
        let rule = &self.rules[index - 1];
        if rule.contains(addr) {
            Addr(rule.to.0 + (addr.0 - rule.from.0))
        } else {
            addr
        }
    }

    /// Translates the byte range `[start, end)`, splitting it at remapping
    /// boundaries; returns the translated pieces (unsorted, possibly
    /// touching). Used to push [`crate::footprint`] extents through a
    /// layout rewrite without enumerating addresses.
    ///
    /// ```
    /// use cheetah_sim::layout::{LayoutMap, Remapping};
    /// use cheetah_sim::Addr;
    /// let map = LayoutMap::new(vec![Remapping::new(Addr(0x120), 0x20, Addr(0x1000))])?;
    /// let mut pieces = map.translate_range(0x100, 0x180);
    /// pieces.sort_unstable();
    /// assert_eq!(pieces, vec![(0x100, 0x120), (0x140, 0x180), (0x1000, 0x1020)]);
    /// # Ok::<(), cheetah_sim::layout::LayoutError>(())
    /// ```
    pub fn translate_range(&self, start: u64, end: u64) -> Vec<(u64, u64)> {
        let mut pieces = Vec::new();
        let mut cursor = start;
        // Rules are sorted by source start; walk the ones overlapping the
        // range, emitting identity gaps between them.
        let mut idx = self
            .rules
            .partition_point(|rule| rule.from_end().0 <= start);
        while cursor < end && idx < self.rules.len() {
            let rule = &self.rules[idx];
            if rule.from.0 >= end {
                break;
            }
            if cursor < rule.from.0 {
                pieces.push((cursor, rule.from.0));
                cursor = rule.from.0;
            }
            let stop = end.min(rule.from_end().0);
            let offset = cursor - rule.from.0;
            pieces.push((rule.to.0 + offset, rule.to.0 + (stop - rule.from.0)));
            cursor = stop;
            idx += 1;
        }
        if cursor < end {
            pieces.push((cursor, end));
        }
        pieces
    }

    /// Merges two maps whose rules must remain disjoint (e.g. the plans of
    /// two different sharing instances).
    ///
    /// # Errors
    ///
    /// [`LayoutError`] under the same conditions as [`LayoutMap::new`].
    pub fn merge(&self, other: &LayoutMap) -> Result<LayoutMap, LayoutError> {
        let mut rules = self.rules.clone();
        rules.extend_from_slice(&other.rules);
        LayoutMap::new(rules)
    }

    /// Wraps the map for sharing across the per-thread streams of a
    /// rewritten program.
    pub fn shared(self) -> Arc<LayoutMap> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_do_not_overlap() {
        assert!(GLOBALS_END <= HEAP_BASE);
        assert!(GLOBALS_BASE < GLOBALS_END);
        assert!(HEAP_BASE < HEAP_END);
    }

    #[test]
    fn translate_inside_and_outside_ranges() {
        let map = LayoutMap::new(vec![
            Remapping::new(Addr(0x100), 8, Addr(0x1000)),
            Remapping::new(Addr(0x140), 8, Addr(0x2000)),
        ])
        .unwrap();
        assert_eq!(map.translate(Addr(0x100)), Addr(0x1000));
        assert_eq!(map.translate(Addr(0x107)), Addr(0x1007));
        assert_eq!(map.translate(Addr(0x108)), Addr(0x108));
        assert_eq!(map.translate(Addr(0x141)), Addr(0x2001));
        assert_eq!(map.translate(Addr(0xff)), Addr(0xff));
        assert!(!map.is_identity());
        assert!(LayoutMap::identity().is_identity());
        assert_eq!(LayoutMap::identity().translate(Addr(0x100)), Addr(0x100));
    }

    #[test]
    fn rejects_overlaps_and_empty_rules() {
        assert!(matches!(
            LayoutMap::new(vec![Remapping::new(Addr(0x100), 0, Addr(0x1000))]),
            Err(LayoutError::EmptyRange(_))
        ));
        assert!(matches!(
            LayoutMap::new(vec![
                Remapping::new(Addr(0x100), 16, Addr(0x1000)),
                Remapping::new(Addr(0x108), 16, Addr(0x2000)),
            ]),
            Err(LayoutError::OverlappingSources(_, _))
        ));
        assert!(matches!(
            LayoutMap::new(vec![
                Remapping::new(Addr(0x100), 16, Addr(0x1000)),
                Remapping::new(Addr(0x200), 16, Addr(0x1008)),
            ]),
            Err(LayoutError::OverlappingTargets(_, _))
        ));
    }

    #[test]
    fn rejects_target_partially_covering_a_source() {
        // Target [0x108, 0x118) half-covers source [0x100, 0x110): the
        // vacated half and the identity half would alias.
        assert!(matches!(
            LayoutMap::new(vec![Remapping::new(Addr(0x100), 16, Addr(0x108))]),
            Err(LayoutError::TargetPartiallyCoversSource(_))
        ));
        // Exact coverage (a swap) is fine and stays injective.
        let swap = LayoutMap::new(vec![
            Remapping::new(Addr(0x100), 16, Addr(0x200)),
            Remapping::new(Addr(0x200), 16, Addr(0x100)),
        ])
        .unwrap();
        assert_eq!(swap.translate(Addr(0x104)), Addr(0x204));
        assert_eq!(swap.translate(Addr(0x204)), Addr(0x104));
    }

    #[test]
    fn merge_combines_disjoint_maps() {
        let a = LayoutMap::new(vec![Remapping::new(Addr(0x100), 8, Addr(0x1000))]).unwrap();
        let b = LayoutMap::new(vec![Remapping::new(Addr(0x200), 8, Addr(0x2000))]).unwrap();
        let merged = a.merge(&b).unwrap();
        assert_eq!(merged.translate(Addr(0x100)), Addr(0x1000));
        assert_eq!(merged.translate(Addr(0x200)), Addr(0x2000));
        assert!(a.merge(&a).is_err(), "duplicate sources must be rejected");
    }

    #[test]
    fn translate_is_injective_over_mapped_and_unmapped_space() {
        let map = LayoutMap::new(vec![
            Remapping::new(Addr(0x100), 64, Addr(0x5000)),
            Remapping::new(Addr(0x180), 64, Addr(0x6000)),
        ])
        .unwrap();
        let mut seen = std::collections::HashSet::new();
        for raw in 0x0u64..0x400 {
            assert!(seen.insert(map.translate(Addr(raw))), "alias at {raw:#x}");
        }
    }

    #[test]
    fn classify_boundaries() {
        assert_eq!(classify(GLOBALS_BASE), Segment::Globals);
        assert_eq!(classify(Addr(GLOBALS_END.0 - 1)), Segment::Globals);
        assert_eq!(classify(GLOBALS_END), Segment::Other);
        assert_eq!(classify(HEAP_BASE), Segment::Heap);
        assert_eq!(classify(Addr(HEAP_END.0 - 1)), Segment::Heap);
        assert_eq!(classify(HEAP_END), Segment::Other);
        assert_eq!(classify(Addr(0)), Segment::Other);
    }
}
