//! Address-space conventions shared by the workspace.
//!
//! The simulator itself treats addresses as opaque numbers; the allocator,
//! workloads and detector agree on this segmentation so that a profiler can
//! classify an address as heap, global or other in O(1) — the role the
//! paper's "driver" module plays when it filters sampled addresses.

use crate::types::Addr;

/// First byte of the global-variable segment.
pub const GLOBALS_BASE: Addr = Addr(0x1000_0000);
/// One past the last byte of the global-variable segment (256 MiB).
pub const GLOBALS_END: Addr = Addr(0x2000_0000);
/// First byte of the modelled heap segment.
pub const HEAP_BASE: Addr = Addr(0x4000_0000);
/// One past the last byte of the modelled heap segment (1 GiB).
pub const HEAP_END: Addr = Addr(0x8000_0000);

/// Segment classification of an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Statically allocated globals.
    Globals,
    /// The modelled heap.
    Heap,
    /// Anything else (stack, kernel, libraries) — filtered out by the
    /// profiler, as in the paper.
    Other,
}

/// Classifies an address into its segment.
///
/// ```
/// use cheetah_sim::layout::{classify, Segment, HEAP_BASE};
/// use cheetah_sim::Addr;
/// assert_eq!(classify(HEAP_BASE), Segment::Heap);
/// assert_eq!(classify(Addr(0x10)), Segment::Other);
/// ```
pub fn classify(addr: Addr) -> Segment {
    if (GLOBALS_BASE..GLOBALS_END).contains(&addr) {
        Segment::Globals
    } else if (HEAP_BASE..HEAP_END).contains(&addr) {
        Segment::Heap
    } else {
        Segment::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_do_not_overlap() {
        assert!(GLOBALS_END <= HEAP_BASE);
        assert!(GLOBALS_BASE < GLOBALS_END);
        assert!(HEAP_BASE < HEAP_END);
    }

    #[test]
    fn classify_boundaries() {
        assert_eq!(classify(GLOBALS_BASE), Segment::Globals);
        assert_eq!(classify(Addr(GLOBALS_END.0 - 1)), Segment::Globals);
        assert_eq!(classify(GLOBALS_END), Segment::Other);
        assert_eq!(classify(HEAP_BASE), Segment::Heap);
        assert_eq!(classify(Addr(HEAP_END.0 - 1)), Segment::Heap);
        assert_eq!(classify(HEAP_END), Segment::Other);
        assert_eq!(classify(Addr(0)), Segment::Other);
    }
}
