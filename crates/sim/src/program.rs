//! Describing simulated programs: operations, access streams, phases.
//!
//! A [`Program`] is an ordered list of fork-join [`Phase`]s (the model of
//! Fig. 3 in the paper). A serial phase is executed by the main thread; a
//! parallel phase spawns one simulated thread per [`ThreadSpec`], runs them
//! to completion, and joins. Each thread executes an [`AccessStream`]: a
//! pull-based iterator of [`Op`]s (compute work and memory accesses).
//!
//! Streams are consumed destructively — running a program uses it up, so
//! workload generators hand out a fresh `Program` per run.

use crate::footprint::{ByteExtent, Footprint, FootprintBuilder};
use crate::layout::LayoutMap;
use crate::types::{AccessKind, Addr};
use std::sync::Arc;

/// One operation of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Retire `n` pure-compute instructions (no memory traffic).
    Work(u64),
    /// Load from an address.
    Read(Addr),
    /// Store to an address.
    Write(Addr),
}

impl Op {
    /// The memory reference of this op, if any.
    pub fn mem_ref(self) -> Option<(Addr, AccessKind)> {
        match self {
            Op::Work(_) => None,
            Op::Read(addr) => Some((addr, AccessKind::Read)),
            Op::Write(addr) => Some((addr, AccessKind::Write)),
        }
    }

    /// Instructions retired by this op (memory accesses retire one).
    pub fn instructions(self) -> u64 {
        match self {
            Op::Work(n) => n,
            Op::Read(_) | Op::Write(_) => 1,
        }
    }
}

/// A pull-based stream of operations executed by one simulated thread.
///
/// Implementors are typically tiny state machines so that multi-million
/// access workloads need no materialised trace.
pub trait AccessStream: Send {
    /// Produces the next operation, or `None` when the thread finishes.
    fn next_op(&mut self) -> Option<Op>;

    /// A byte-range superset of everything the stream will touch, queried
    /// by the sharded executor *before* the first [`AccessStream::next_op`]
    /// call (see [`crate::footprint`] for the soundness contract). Streams
    /// that cannot bound their accesses keep the default
    /// [`Footprint::Unknown`] and are classified per touched line instead.
    fn footprint(&self) -> Footprint {
        Footprint::Unknown
    }
}

/// Exact footprint of a slice of materialised ops.
fn ops_footprint(ops: &[Op]) -> Footprint {
    let mut builder = FootprintBuilder::default();
    for op in ops {
        if let Some((addr, kind)) = op.mem_ref() {
            builder.push(ByteExtent::word(addr, kind.is_write()));
        }
    }
    builder.finish()
}

/// An [`AccessStream`] over a pre-built vector of ops; convenient in tests.
///
/// ```
/// use cheetah_sim::{Addr, Op, OpsStream, AccessStream};
/// let mut s = OpsStream::new(vec![Op::Work(3), Op::Read(Addr(0x40))]);
/// assert_eq!(s.next_op(), Some(Op::Work(3)));
/// assert_eq!(s.next_op(), Some(Op::Read(Addr(0x40))));
/// assert_eq!(s.next_op(), None);
/// ```
#[derive(Debug)]
pub struct OpsStream {
    ops: std::vec::IntoIter<Op>,
}

impl OpsStream {
    /// Wraps a vector of operations.
    pub fn new(ops: Vec<Op>) -> Self {
        OpsStream {
            ops: ops.into_iter(),
        }
    }
}

impl AccessStream for OpsStream {
    fn next_op(&mut self) -> Option<Op> {
        self.ops.next()
    }

    fn footprint(&self) -> Footprint {
        ops_footprint(self.ops.as_slice())
    }
}

/// Adapts any `Iterator<Item = Op>` into an [`AccessStream`].
pub struct IterStream<I> {
    iter: I,
}

impl<I> IterStream<I>
where
    I: Iterator<Item = Op> + Send,
{
    /// Wraps an iterator of operations.
    pub fn new(iter: I) -> Self {
        IterStream { iter }
    }
}

impl<I> std::fmt::Debug for IterStream<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("IterStream(..)")
    }
}

impl<I> AccessStream for IterStream<I>
where
    I: Iterator<Item = Op> + Send,
{
    fn next_op(&mut self) -> Option<Op> {
        self.iter.next()
    }
}

/// A repeating loop over a fixed body of ops; the cheapest way to express
/// "hammer these addresses `n` times".
#[derive(Debug)]
pub struct LoopStream {
    body: Vec<Op>,
    iterations: u64,
    done_iterations: u64,
    cursor: usize,
}

impl LoopStream {
    /// A stream that yields `body` in order, `iterations` times.
    ///
    /// An empty body or zero iterations yields an empty stream.
    pub fn new(body: Vec<Op>, iterations: u64) -> Self {
        LoopStream {
            body,
            iterations,
            done_iterations: 0,
            cursor: 0,
        }
    }
}

impl AccessStream for LoopStream {
    fn next_op(&mut self) -> Option<Op> {
        if self.body.is_empty() || self.done_iterations >= self.iterations {
            return None;
        }
        let op = self.body[self.cursor];
        self.cursor += 1;
        if self.cursor == self.body.len() {
            self.cursor = 0;
            self.done_iterations += 1;
        }
        Some(op)
    }

    fn footprint(&self) -> Footprint {
        if self.done_iterations >= self.iterations {
            return Footprint::Bounded(Vec::new());
        }
        ops_footprint(&self.body)
    }
}

/// Specification of one simulated thread: a name (for reports) and its
/// instruction stream.
pub struct ThreadSpec {
    name: String,
    body: Box<dyn AccessStream>,
}

impl ThreadSpec {
    /// Creates a thread spec from any access stream.
    pub fn new(name: impl Into<String>, body: impl AccessStream + 'static) -> Self {
        ThreadSpec {
            name: name.into(),
            body: Box::new(body),
        }
    }

    /// The thread's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared byte-range footprint of the thread's access stream —
    /// the static summary ahead-of-execution analyses work from. For
    /// layout-rewritten programs ([`Program::with_layout`]) the extents
    /// come back already translated to post-repair addresses.
    pub fn footprint(&self) -> Footprint {
        self.body.footprint()
    }

    pub(crate) fn into_parts(self) -> (String, Box<dyn AccessStream>) {
        (self.name, self.body)
    }

    /// Wraps the thread's stream so its addresses go through `map`.
    pub fn with_layout(self, map: Arc<LayoutMap>) -> ThreadSpec {
        ThreadSpec {
            name: self.name,
            body: Box::new(RemappedStream {
                inner: self.body,
                map,
            }),
        }
    }
}

impl std::fmt::Debug for ThreadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadSpec")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// One fork-join phase of a program.
#[derive(Debug)]
pub enum Phase {
    /// Work executed by the main thread alone.
    Serial(ThreadSpec),
    /// Threads spawned together and joined together.
    Parallel(Vec<ThreadSpec>),
}

impl Phase {
    /// Number of threads this phase runs (1 for serial phases).
    pub fn thread_count(&self) -> usize {
        match self {
            Phase::Serial(_) => 1,
            Phase::Parallel(specs) => specs.len(),
        }
    }

    /// The phase kind.
    pub fn kind(&self) -> crate::types::PhaseKind {
        match self {
            Phase::Serial(_) => crate::types::PhaseKind::Serial,
            Phase::Parallel(_) => crate::types::PhaseKind::Parallel,
        }
    }
}

/// A complete simulated program: named, phased, single-shot.
#[derive(Debug)]
pub struct Program {
    name: String,
    phases: Vec<Phase>,
}

impl Program {
    /// Creates a program from its phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any parallel phase has no threads: an
    /// empty program has no meaningful runtime and would silently produce
    /// degenerate reports.
    pub fn new(name: impl Into<String>, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "program must have at least one phase");
        for (i, phase) in phases.iter().enumerate() {
            if let Phase::Parallel(specs) = phase {
                assert!(
                    !specs.is_empty(),
                    "parallel phase {i} must spawn at least one thread"
                );
            }
        }
        Program {
            name: name.into(),
            phases,
        }
    }

    /// The program's name (used in reports and experiment tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phases, in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total number of simulated threads, including the main thread.
    pub fn total_threads(&self) -> usize {
        1 + self
            .phases
            .iter()
            .map(|p| match p {
                Phase::Serial(_) => 0,
                Phase::Parallel(specs) => specs.len(),
            })
            .sum::<usize>()
    }

    pub(crate) fn into_parts(self) -> (String, Vec<Phase>) {
        (self.name, self.phases)
    }

    /// Rewrites the program's data layout: every memory operation's address
    /// is translated through `map`; op order, op counts, compute work and
    /// the phase structure are preserved exactly. This is how synthesized
    /// false-sharing repairs (padding, alignment, per-thread splits) are
    /// applied without touching workload source.
    ///
    /// An identity map returns the program unchanged (no wrapper overhead).
    ///
    /// ```
    /// use cheetah_sim::layout::{LayoutMap, Remapping};
    /// use cheetah_sim::{Addr, Op, OpsStream, ProgramBuilder, ThreadSpec};
    ///
    /// let program = ProgramBuilder::new("p")
    ///     .serial(ThreadSpec::new("s", OpsStream::new(vec![Op::Write(Addr(0x100))])))
    ///     .build();
    /// let map = LayoutMap::new(vec![Remapping::new(Addr(0x100), 4, Addr(0x4000))])?;
    /// let repaired = program.with_layout(map.shared());
    /// assert_eq!(repaired.total_threads(), 1);
    /// # Ok::<(), cheetah_sim::layout::LayoutError>(())
    /// ```
    pub fn with_layout(self, map: Arc<LayoutMap>) -> Program {
        if map.is_identity() {
            return self;
        }
        let (name, phases) = self.into_parts();
        let phases = phases
            .into_iter()
            .map(|phase| match phase {
                Phase::Serial(spec) => Phase::Serial(spec.with_layout(Arc::clone(&map))),
                Phase::Parallel(specs) => Phase::Parallel(
                    specs
                        .into_iter()
                        .map(|spec| spec.with_layout(Arc::clone(&map)))
                        .collect(),
                ),
            })
            .collect();
        Program::new(name, phases)
    }
}

/// Stream adapter that translates every memory address through a
/// [`LayoutMap`]; see [`Program::with_layout`].
struct RemappedStream {
    inner: Box<dyn AccessStream>,
    map: Arc<LayoutMap>,
}

impl std::fmt::Debug for RemappedStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemappedStream")
            .field("map", &self.map)
            .finish_non_exhaustive()
    }
}

impl AccessStream for RemappedStream {
    fn next_op(&mut self) -> Option<Op> {
        self.inner.next_op().map(|op| match op {
            Op::Work(n) => Op::Work(n),
            Op::Read(addr) => Op::Read(self.map.translate(addr)),
            Op::Write(addr) => Op::Write(self.map.translate(addr)),
        })
    }

    fn footprint(&self) -> Footprint {
        // Translate the inner footprint range by range, splitting at
        // remapping boundaries so relocated slices keep extent hints.
        match self.inner.footprint() {
            Footprint::Unknown => Footprint::Unknown,
            Footprint::Bounded(extents) => {
                let mut builder = FootprintBuilder::default();
                for extent in extents {
                    for (start, end) in self.map.translate_range(extent.start, extent.end) {
                        builder.push(ByteExtent::new(start, end, extent.wrote));
                    }
                }
                builder.finish()
            }
        }
    }
}

/// Fluent builder for [`Program`]s; the main entry point for workloads.
///
/// ```
/// use cheetah_sim::{Addr, Op, OpsStream, ProgramBuilder, ThreadSpec};
/// let program = ProgramBuilder::new("demo")
///     .serial(ThreadSpec::new("init", OpsStream::new(vec![Op::Write(Addr(0x100))])))
///     .parallel(vec![
///         ThreadSpec::new("worker-0", OpsStream::new(vec![Op::Read(Addr(0x100))])),
///         ThreadSpec::new("worker-1", OpsStream::new(vec![Op::Read(Addr(0x100))])),
///     ])
///     .build();
/// assert_eq!(program.total_threads(), 3);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    phases: Vec<Phase>,
}

impl ProgramBuilder {
    /// Starts building a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            phases: Vec::new(),
        }
    }

    /// Appends a serial phase run by the main thread.
    pub fn serial(mut self, spec: ThreadSpec) -> Self {
        self.phases.push(Phase::Serial(spec));
        self
    }

    /// Appends a parallel phase spawning one thread per spec.
    pub fn parallel(mut self, specs: Vec<ThreadSpec>) -> Self {
        self.phases.push(Phase::Parallel(specs));
        self
    }

    /// Finishes the program.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Program::new`].
    pub fn build(self) -> Program {
        Program::new(self.name, self.phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_properties() {
        assert_eq!(Op::Work(5).instructions(), 5);
        assert_eq!(Op::Read(Addr(8)).instructions(), 1);
        assert_eq!(Op::Write(Addr(8)).instructions(), 1);
        assert_eq!(Op::Work(5).mem_ref(), None);
        assert_eq!(
            Op::Read(Addr(8)).mem_ref(),
            Some((Addr(8), AccessKind::Read))
        );
        assert_eq!(
            Op::Write(Addr(8)).mem_ref(),
            Some((Addr(8), AccessKind::Write))
        );
    }

    #[test]
    fn loop_stream_repeats_body() {
        let mut s = LoopStream::new(vec![Op::Read(Addr(0)), Op::Work(2)], 3);
        let mut ops = Vec::new();
        while let Some(op) = s.next_op() {
            ops.push(op);
        }
        assert_eq!(ops.len(), 6);
        assert_eq!(ops[0], Op::Read(Addr(0)));
        assert_eq!(ops[5], Op::Work(2));
    }

    #[test]
    fn loop_stream_empty_cases() {
        assert_eq!(LoopStream::new(vec![], 10).next_op(), None);
        assert_eq!(LoopStream::new(vec![Op::Work(1)], 0).next_op(), None);
    }

    #[test]
    fn iter_stream_adapts_iterators() {
        let mut s = IterStream::new((0..3).map(|i| Op::Read(Addr(i * 4))));
        assert_eq!(s.next_op(), Some(Op::Read(Addr(0))));
        assert_eq!(s.next_op(), Some(Op::Read(Addr(4))));
        assert_eq!(s.next_op(), Some(Op::Read(Addr(8))));
        assert_eq!(s.next_op(), None);
    }

    #[test]
    fn program_counts_threads() {
        let program = ProgramBuilder::new("p")
            .serial(ThreadSpec::new("s", OpsStream::new(vec![Op::Work(1)])))
            .parallel(vec![
                ThreadSpec::new("a", OpsStream::new(vec![])),
                ThreadSpec::new("b", OpsStream::new(vec![])),
            ])
            .parallel(vec![ThreadSpec::new("c", OpsStream::new(vec![]))])
            .build();
        assert_eq!(program.total_threads(), 4);
        assert_eq!(program.phases().len(), 3);
        assert_eq!(program.phases()[0].thread_count(), 1);
        assert_eq!(program.phases()[1].thread_count(), 2);
    }

    #[test]
    fn with_layout_translates_only_mapped_addresses() {
        use crate::layout::{LayoutMap, Remapping};
        let program = ProgramBuilder::new("p")
            .serial(ThreadSpec::new(
                "s",
                OpsStream::new(vec![
                    Op::Read(Addr(0x100)),
                    Op::Write(Addr(0x104)),
                    Op::Work(7),
                    Op::Write(Addr(0x200)),
                ]),
            ))
            .build();
        let map = LayoutMap::new(vec![Remapping::new(Addr(0x100), 8, Addr(0x9000))])
            .unwrap()
            .shared();
        let (_, phases) = program.with_layout(map).into_parts();
        let Phase::Serial(spec) = phases.into_iter().next().unwrap() else {
            panic!("expected serial phase");
        };
        let (_, mut stream) = spec.into_parts();
        let mut ops = Vec::new();
        while let Some(op) = stream.next_op() {
            ops.push(op);
        }
        assert_eq!(
            ops,
            vec![
                Op::Read(Addr(0x9000)),
                Op::Write(Addr(0x9004)),
                Op::Work(7),
                Op::Write(Addr(0x200)),
            ]
        );
    }

    #[test]
    fn with_layout_preserves_phase_structure() {
        use crate::layout::{LayoutMap, Remapping};
        let build = || {
            ProgramBuilder::new("p")
                .serial(ThreadSpec::new("s", OpsStream::new(vec![Op::Work(1)])))
                .parallel(vec![
                    ThreadSpec::new("a", OpsStream::new(vec![Op::Read(Addr(0x40))])),
                    ThreadSpec::new("b", OpsStream::new(vec![Op::Read(Addr(0x80))])),
                ])
                .build()
        };
        let map = LayoutMap::new(vec![Remapping::new(Addr(0x40), 4, Addr(0x7000))])
            .unwrap()
            .shared();
        let repaired = build().with_layout(map);
        let original = build();
        assert_eq!(repaired.total_threads(), original.total_threads());
        assert_eq!(repaired.phases().len(), original.phases().len());
        for (a, b) in repaired.phases().iter().zip(original.phases()) {
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.thread_count(), b.thread_count());
        }
    }

    #[test]
    fn identity_layout_is_free() {
        use crate::layout::LayoutMap;
        let program = ProgramBuilder::new("p")
            .serial(ThreadSpec::new("s", OpsStream::new(vec![Op::Work(1)])))
            .build();
        let same = program.with_layout(LayoutMap::identity().shared());
        assert_eq!(same.name(), "p");
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_program_panics() {
        let _ = Program::new("p", vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_parallel_phase_panics() {
        let _ = Program::new("p", vec![Phase::Parallel(vec![])]);
    }
}
