//! Execution-path event counters, for benchmarks and CI gates.
//!
//! The sharded executor's value proposition is that the single-threaded
//! merge replays only *order-dependent* events, with everything else
//! batch-folded in the parallel precompute passes. These counters make
//! that claim measurable: `sim_throughput` snapshots them around each run
//! and emits merged/folded/surfaced counts next to wall-clock, and the CI
//! gate fails if a streaming workload starts replaying per-line again.
//!
//! The counters are process-global atomics, deliberately **outside**
//! [`crate::RunReport`]: reports are bit-identical across shard counts,
//! while these counts describe the execution *strategy* and legitimately
//! differ between the classic loop and sharded runs.

use std::sync::atomic::{AtomicU64, Ordering};

static MERGED: AtomicU64 = AtomicU64::new(0);
static FOLDED: AtomicU64 = AtomicU64::new(0);
static SURFACED: AtomicU64 = AtomicU64::new(0);
static CLASSIFY_NS: AtomicU64 = AtomicU64::new(0);
static PRECOMPUTE_NS: AtomicU64 = AtomicU64::new(0);
static MERGE_NS: AtomicU64 = AtomicU64::new(0);

/// Counter snapshot; see [`snapshot`] for field meanings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecMetrics {
    /// Events processed *individually* in global order: every classic-loop
    /// access, and in sharded runs each directory event, each walked
    /// hit-run read, each heap pop and each surfaced access the merge
    /// replays one by one.
    pub merged_events: u64,
    /// Accesses folded in batches without individual global-order
    /// processing: precomputed private accesses absorbed into event leads
    /// and settled hit-run reads folded in O(1) per run.
    pub folded_events: u64,
    /// Accesses surfaced to the observer (sample delivery and
    /// every-access observers); a subset of the work counted in
    /// `merged_events` for sharded runs.
    pub surfaced_events: u64,
    /// Wall-clock nanoseconds spent in sharded phases' footprint /
    /// materialisation / classification pass.
    pub classify_ns: u64,
    /// Wall-clock nanoseconds spent in sharded phases' parallel
    /// precompute-and-fold pass.
    pub precompute_ns: u64,
    /// Wall-clock nanoseconds spent in sharded phases' deterministic merge.
    pub merge_ns: u64,
}

impl ExecMetrics {
    /// Element-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &ExecMetrics) -> ExecMetrics {
        ExecMetrics {
            merged_events: self.merged_events - earlier.merged_events,
            folded_events: self.folded_events - earlier.folded_events,
            surfaced_events: self.surfaced_events - earlier.surfaced_events,
            classify_ns: self.classify_ns - earlier.classify_ns,
            precompute_ns: self.precompute_ns - earlier.precompute_ns,
            merge_ns: self.merge_ns - earlier.merge_ns,
        }
    }
}

/// Reads the current counter values.
pub fn snapshot() -> ExecMetrics {
    ExecMetrics {
        merged_events: MERGED.load(Ordering::Relaxed),
        folded_events: FOLDED.load(Ordering::Relaxed),
        surfaced_events: SURFACED.load(Ordering::Relaxed),
        classify_ns: CLASSIFY_NS.load(Ordering::Relaxed),
        precompute_ns: PRECOMPUTE_NS.load(Ordering::Relaxed),
        merge_ns: MERGE_NS.load(Ordering::Relaxed),
    }
}

/// Resets all counters to zero.
pub fn reset() {
    MERGED.store(0, Ordering::Relaxed);
    FOLDED.store(0, Ordering::Relaxed);
    SURFACED.store(0, Ordering::Relaxed);
    CLASSIFY_NS.store(0, Ordering::Relaxed);
    PRECOMPUTE_NS.store(0, Ordering::Relaxed);
    MERGE_NS.store(0, Ordering::Relaxed);
}

/// Adds one sharded phase's pass timings.
#[inline]
pub(crate) fn add_pass_timings(classify_ns: u64, precompute_ns: u64, merge_ns: u64) {
    CLASSIFY_NS.fetch_add(classify_ns, Ordering::Relaxed);
    PRECOMPUTE_NS.fetch_add(precompute_ns, Ordering::Relaxed);
    MERGE_NS.fetch_add(merge_ns, Ordering::Relaxed);
}

/// Adds `n` individually merge-ordered events.
#[inline]
pub(crate) fn count_merged(n: u64) {
    MERGED.fetch_add(n, Ordering::Relaxed);
}

/// Adds `n` batch-folded accesses.
#[inline]
pub(crate) fn count_folded(n: u64) {
    FOLDED.fetch_add(n, Ordering::Relaxed);
}

/// Adds `n` observer-surfaced accesses.
#[inline]
pub(crate) fn count_surfaced(n: u64) {
    SURFACED.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = ExecMetrics {
            merged_events: 10,
            folded_events: 20,
            surfaced_events: 5,
            ..ExecMetrics::default()
        };
        let b = ExecMetrics {
            merged_events: 4,
            folded_events: 8,
            surfaced_events: 1,
            ..ExecMetrics::default()
        };
        assert_eq!(b.since(&b), ExecMetrics::default());
        let d = a.since(&b);
        assert_eq!(
            (d.merged_events, d.folded_events, d.surfaced_events),
            (6, 12, 4)
        );
    }
}
