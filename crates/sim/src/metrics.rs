//! Execution-path event counters, for benchmarks and CI gates.
//!
//! The sharded executor's value proposition is that the single-threaded
//! merge replays only *order-dependent* events, with everything else
//! batch-folded in the parallel precompute passes. These counters make
//! that claim measurable: `sim_throughput` snapshots them around each run
//! and emits merged/folded/surfaced counts next to wall-clock, and the CI
//! gate fails if a streaming workload starts replaying per-line again.
//!
//! Since the `cheetah-obs` integration the counters live in an
//! [`ObsRegistry`](cheetah_obs::ObsRegistry) — by default the process-wide
//! global one, preserving the historical `snapshot()`/`reset()` behaviour,
//! but a run that carries its own registry in
//! [`MachineConfig::obs`](crate::MachineConfig) gets fully independent
//! counts (read them with [`snapshot_of`]). Counters stay deliberately
//! **outside** [`crate::RunReport`]: reports are bit-identical across
//! shard counts, while these counts describe the execution *strategy* and
//! legitimately differ between the classic loop and sharded runs.

use cheetah_obs::{Counter, ObsHandle};

/// Counter name for individually merge-ordered events.
pub const MERGED_EVENTS: &str = "sim.merged_events";
/// Counter name for batch-folded accesses.
pub const FOLDED_EVENTS: &str = "sim.folded_events";
/// Counter name for observer-surfaced accesses.
pub const SURFACED_EVENTS: &str = "sim.surfaced_events";
/// Counter name for sharded classify-pass wall nanoseconds.
pub const CLASSIFY_NS: &str = "sim.classify_ns";
/// Counter name for sharded precompute-pass wall nanoseconds.
pub const PRECOMPUTE_NS: &str = "sim.precompute_ns";
/// Counter name for sharded merge-pass wall nanoseconds.
pub const MERGE_NS: &str = "sim.merge_ns";
/// Counter name for footprint contract violations: accesses a sharded
/// phase classified outside every declared extent (or against the declared
/// owner/write mode). Each one falls back to the fully-ordered directory
/// path, so reports stay correct — but a non-zero count means some
/// stream's [`Footprint::Bounded`](crate::Footprint) under-approximated
/// its accesses and `cheetah-analyze --lint` will flag the workload.
pub const FOOTPRINT_VIOLATIONS: &str = "sim.footprint_violations";
/// Counter name for schedule-policy selections: residue events ordered by
/// a perturbed [`SchedulePolicy`](crate::SchedulePolicy) instead of the
/// observed timestamp order. Zero for observed-schedule runs.
pub const SCHED_SELECTIONS: &str = "sched.selections";
/// Counter name for residue events a perturbed schedule actually
/// *reordered*: the chosen worker's event was not the globally earliest
/// ready event. `reordered / selections` measures how far a seed strays
/// from the observed interleaving.
pub const SCHED_REORDERED: &str = "sched.reordered_events";

/// Counter snapshot; see [`snapshot`] for field meanings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecMetrics {
    /// Events processed *individually* in global order: every classic-loop
    /// access, and in sharded runs each directory event, each walked
    /// hit-run read, each heap pop and each surfaced access the merge
    /// replays one by one.
    pub merged_events: u64,
    /// Accesses folded in batches without individual global-order
    /// processing: precomputed private accesses absorbed into event leads
    /// and settled hit-run reads folded in O(1) per run.
    pub folded_events: u64,
    /// Accesses surfaced to the observer (sample delivery and
    /// every-access observers); a subset of the work counted in
    /// `merged_events` for sharded runs.
    pub surfaced_events: u64,
    /// Wall-clock nanoseconds spent in sharded phases' footprint /
    /// materialisation / classification pass.
    pub classify_ns: u64,
    /// Wall-clock nanoseconds spent in sharded phases' parallel
    /// precompute-and-fold pass.
    pub precompute_ns: u64,
    /// Wall-clock nanoseconds spent in sharded phases' deterministic merge.
    pub merge_ns: u64,
    /// Accesses that violated their stream's declared footprint contract
    /// during sharded classification (see [`FOOTPRINT_VIOLATIONS`]).
    pub footprint_violations: u64,
    /// Residue events ordered by a perturbed schedule policy (see
    /// [`SCHED_SELECTIONS`]).
    pub sched_selections: u64,
    /// Residue events a perturbed schedule moved off the observed order
    /// (see [`SCHED_REORDERED`]).
    pub sched_reordered: u64,
}

impl ExecMetrics {
    /// Element-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &ExecMetrics) -> ExecMetrics {
        ExecMetrics {
            merged_events: self.merged_events - earlier.merged_events,
            folded_events: self.folded_events - earlier.folded_events,
            surfaced_events: self.surfaced_events - earlier.surfaced_events,
            classify_ns: self.classify_ns - earlier.classify_ns,
            precompute_ns: self.precompute_ns - earlier.precompute_ns,
            merge_ns: self.merge_ns - earlier.merge_ns,
            footprint_violations: self.footprint_violations - earlier.footprint_violations,
            sched_selections: self.sched_selections - earlier.sched_selections,
            sched_reordered: self.sched_reordered - earlier.sched_reordered,
        }
    }
}

/// Reads the current counter values from `obs`'s registry.
pub fn snapshot_of(obs: &ObsHandle) -> ExecMetrics {
    ExecMetrics {
        merged_events: obs.counter(MERGED_EVENTS).get(),
        folded_events: obs.counter(FOLDED_EVENTS).get(),
        surfaced_events: obs.counter(SURFACED_EVENTS).get(),
        classify_ns: obs.counter(CLASSIFY_NS).get(),
        precompute_ns: obs.counter(PRECOMPUTE_NS).get(),
        merge_ns: obs.counter(MERGE_NS).get(),
        footprint_violations: obs.counter(FOOTPRINT_VIOLATIONS).get(),
        sched_selections: obs.counter(SCHED_SELECTIONS).get(),
        sched_reordered: obs.counter(SCHED_REORDERED).get(),
    }
}

/// Reads the current counter values from the global registry.
pub fn snapshot() -> ExecMetrics {
    snapshot_of(&ObsHandle::global())
}

/// Resets the global registry's counters to zero.
pub fn reset() {
    let obs = ObsHandle::global();
    for name in [
        MERGED_EVENTS,
        FOLDED_EVENTS,
        SURFACED_EVENTS,
        CLASSIFY_NS,
        PRECOMPUTE_NS,
        MERGE_NS,
        FOOTPRINT_VIOLATIONS,
        SCHED_SELECTIONS,
        SCHED_REORDERED,
    ] {
        obs.counter(name).reset();
    }
}

/// Pre-resolved counter handles for one run's registry: the execution
/// paths look the handles up once per run/phase instead of taking the
/// registry lock per event batch.
#[derive(Debug, Clone)]
pub(crate) struct SimCounters {
    merged: Counter,
    folded: Counter,
    surfaced: Counter,
    classify_ns: Counter,
    precompute_ns: Counter,
    merge_ns: Counter,
    violations: Counter,
    sched_selections: Counter,
    sched_reordered: Counter,
}

impl SimCounters {
    pub(crate) fn of(obs: &ObsHandle) -> SimCounters {
        SimCounters {
            merged: obs.counter(MERGED_EVENTS),
            folded: obs.counter(FOLDED_EVENTS),
            surfaced: obs.counter(SURFACED_EVENTS),
            classify_ns: obs.counter(CLASSIFY_NS),
            precompute_ns: obs.counter(PRECOMPUTE_NS),
            merge_ns: obs.counter(MERGE_NS),
            violations: obs.counter(FOOTPRINT_VIOLATIONS),
            sched_selections: obs.counter(SCHED_SELECTIONS),
            sched_reordered: obs.counter(SCHED_REORDERED),
        }
    }

    /// Adds one sharded phase's pass timings.
    #[inline]
    pub(crate) fn add_pass_timings(&self, classify_ns: u64, precompute_ns: u64, merge_ns: u64) {
        self.classify_ns.add(classify_ns);
        self.precompute_ns.add(precompute_ns);
        self.merge_ns.add(merge_ns);
    }

    /// Adds `n` individually merge-ordered events.
    #[inline]
    pub(crate) fn count_merged(&self, n: u64) {
        self.merged.add(n);
    }

    /// Adds `n` batch-folded accesses.
    #[inline]
    pub(crate) fn count_folded(&self, n: u64) {
        self.folded.add(n);
    }

    /// Adds `n` observer-surfaced accesses.
    #[inline]
    pub(crate) fn count_surfaced(&self, n: u64) {
        self.surfaced.add(n);
    }

    /// Adds `n` footprint contract violations.
    #[inline]
    pub(crate) fn count_violations(&self, n: u64) {
        self.violations.add(n);
    }

    /// Adds one perturbed phase's schedule-policy decision counts.
    #[inline]
    pub(crate) fn count_schedule(&self, selections: u64, reordered: u64) {
        self.sched_selections.add(selections);
        self.sched_reordered.add(reordered);
    }

    /// A clone of the violations counter handle, for the footprint
    /// auditor's per-stream wrappers.
    pub(crate) fn violations_handle(&self) -> Counter {
        self.violations.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = ExecMetrics {
            merged_events: 10,
            folded_events: 20,
            surfaced_events: 5,
            ..ExecMetrics::default()
        };
        let b = ExecMetrics {
            merged_events: 4,
            folded_events: 8,
            surfaced_events: 1,
            ..ExecMetrics::default()
        };
        assert_eq!(b.since(&b), ExecMetrics::default());
        let d = a.since(&b);
        assert_eq!(
            (d.merged_events, d.folded_events, d.surfaced_events),
            (6, 12, 4)
        );
    }

    #[test]
    fn scoped_snapshot_is_independent_of_global() {
        let scoped = ObsHandle::fresh();
        SimCounters::of(&scoped).count_merged(17);
        assert_eq!(snapshot_of(&scoped).merged_events, 17);
        // A second fresh registry sees none of it.
        assert_eq!(snapshot_of(&ObsHandle::fresh()), ExecMetrics::default());
    }
}
