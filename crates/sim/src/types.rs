//! Fundamental identifiers and units shared by the whole workspace.
//!
//! These are deliberately small newtypes ([`ThreadId`], [`CoreId`], [`Addr`],
//! [`CacheLineId`]) so that thread ids, core ids and raw addresses cannot be
//! confused at compile time.

use std::fmt;

/// Virtual time and latency unit: CPU cycles.
///
/// Kept as a plain alias because cycle arithmetic is pervasive; the newtypes
/// below guard the values that are easy to mix up.
pub type Cycles = u64;

/// Identifier of a simulated thread.
///
/// Thread 0 is always the main thread; child threads receive monotonically
/// increasing ids in spawn order, across all phases (an application that
/// spawns 16 threads in each of two phases uses ids 1..=32, mirroring how a
/// real profiler sees distinct pthread ids per creation).
///
/// ```
/// use cheetah_sim::ThreadId;
/// assert!(ThreadId::MAIN.is_main());
/// assert!(!ThreadId(3).is_main());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The main (initial) thread of the application.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Returns `true` for the main thread.
    pub fn is_main(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a physical core of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u32);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A virtual byte address in the simulated address space.
///
/// The workspace uses a conventional layout (see [`crate::layout`]): globals
/// live in a low segment, the modelled heap in a high segment. Addresses are
/// plain numbers to the simulator; segmentation is a convention of the
/// allocator and workload crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address for a given line size.
    ///
    /// `line_size` must be a power of two; this is validated by
    /// [`crate::MachineConfig`] at machine construction.
    ///
    /// ```
    /// use cheetah_sim::Addr;
    /// assert_eq!(Addr(0x1040).line(64).0, 0x41);
    /// assert_eq!(Addr(0x107f).line(64).0, 0x41);
    /// ```
    pub fn line(self, line_size: u64) -> CacheLineId {
        debug_assert!(line_size.is_power_of_two());
        CacheLineId(self.0 / line_size)
    }

    /// Byte offset of this address within its cache line.
    pub fn line_offset(self, line_size: u64) -> u64 {
        debug_assert!(line_size.is_power_of_two());
        self.0 & (line_size - 1)
    }

    /// Index of the 4-byte word within the cache line, as used by Cheetah's
    /// word-granularity sharing classification (§2.4 of the paper).
    pub fn word_in_line(self, line_size: u64) -> usize {
        (self.line_offset(line_size) / WORD_BYTES) as usize
    }

    /// Returns the address advanced by `bytes`.
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Size in bytes of the word granularity used for true/false sharing
/// classification. The paper tracks "word-based (four byte) memory accesses".
pub const WORD_BYTES: u64 = 4;

/// Identifier of a cache line (address divided by the line size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CacheLineId(pub u64);

impl CacheLineId {
    /// First byte address of this line.
    pub fn base(self, line_size: u64) -> Addr {
        Addr(self.0 * line_size)
    }
}

impl fmt::Display for CacheLineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// Kind of an execution phase in the fork-join model (Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Only the main thread runs.
    Serial,
    /// Child threads created at the phase start run concurrently until all
    /// are joined.
    Parallel,
}

impl fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseKind::Serial => f.write_str("serial"),
            PhaseKind::Parallel => f.write_str("parallel"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping_is_floor_division() {
        assert_eq!(Addr(0).line(64), CacheLineId(0));
        assert_eq!(Addr(63).line(64), CacheLineId(0));
        assert_eq!(Addr(64).line(64), CacheLineId(1));
        assert_eq!(Addr(0xffff_ffff).line(64), CacheLineId(0xffff_ffff / 64));
    }

    #[test]
    fn line_offset_and_word_index() {
        assert_eq!(Addr(0x40).line_offset(64), 0);
        assert_eq!(Addr(0x44).word_in_line(64), 1);
        assert_eq!(Addr(0x47).word_in_line(64), 1);
        assert_eq!(Addr(0x7c).word_in_line(64), 15);
    }

    #[test]
    fn line_base_round_trips() {
        let line = Addr(0x1234).line(64);
        assert_eq!(line.base(64), Addr(0x1200));
        assert_eq!(line.base(64).line(64), line);
    }

    #[test]
    fn main_thread_is_zero() {
        assert_eq!(ThreadId::MAIN, ThreadId(0));
        assert!(ThreadId::MAIN.is_main());
        assert!(!ThreadId(1).is_main());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ThreadId(7).to_string(), "T7");
        assert_eq!(CoreId(3).to_string(), "C3");
        assert_eq!(Addr(0x40).to_string(), "0x40");
        assert_eq!(CacheLineId(0x10).to_string(), "L0x10");
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(PhaseKind::Parallel.to_string(), "parallel");
    }

    #[test]
    fn access_kind_is_write() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }
}
