//! The execution engine: runs a [`Program`] on a simulated machine.
//!
//! Threads in a parallel phase are interleaved by a discrete-event loop
//! keyed on per-thread virtual clocks, so memory accesses reach the
//! coherence [`Directory`] in global time order and write ping-pong between
//! cores unfolds exactly as on a real machine. The engine is fully
//! deterministic: identical programs produce identical reports.

use crate::coherence::{Directory, MAX_CORES};
use crate::latency::LatencyModel;
use crate::metrics::SimCounters;
use crate::observer::{AccessRecord, ExecObserver};
use crate::program::{AccessStream, Op, Phase, Program};
use crate::report::{PhaseReport, RunReport, ThreadReport};
use crate::schedule::SchedulePolicy;
use crate::types::{AccessKind, CoreId, Cycles, PhaseKind, ThreadId};
use cheetah_obs::{Fnv64, ObsHandle};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Lane (Chrome-trace `tid`) used by the execution engine's spans.
pub const OBS_LANE_ENGINE: u32 = 0;

/// Configuration of the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of physical cores (1..=64). Threads are bound round-robin:
    /// the main thread to core 0, workers of each parallel phase to cores
    /// `1, 2, ...` wrapping around — mirroring the paper's thread-to-core
    /// binding on its 48-core evaluation machine.
    pub num_cores: u32,
    /// Cache line size in bytes; must be a power of two. Default 64.
    pub cache_line_size: u64,
    /// Latency model for memory accesses.
    pub latency: LatencyModel,
    /// Main-thread cycles consumed by each `pthread_create`.
    pub thread_spawn_cost: Cycles,
    /// Host threads used to *shard* parallel phases (the `--shards N` knob
    /// of the bench harnesses). `1` (the default) runs the classic
    /// single-threaded discrete-event loop; `0` means "auto" (the host's
    /// available parallelism); `>= 2` executes each parallel phase in two
    /// passes — per-worker event precomputation fanned out over this many
    /// host threads, then a deterministic merge ordered by
    /// `(timestamp, worker, seq)` (see [`crate::shard`]). Reports are
    /// bit-identical for every value; only wall-clock time changes.
    pub shards: u32,
    /// Telemetry registry the run reports into: execution counters
    /// ([`crate::metrics`]), per-phase spans and, when [`witness`] is set,
    /// determinism state hashes. Defaults to the process-wide global
    /// registry (span tracing disabled); transparent to config equality.
    ///
    /// [`witness`]: MachineConfig::witness
    pub obs: ObsHandle,
    /// When `true`, every phase records an FNV-1a hash of the logical
    /// machine state (directory + thread cursors + coherence stats) as a
    /// `witness` attribute on its phase span — the determinism divergence
    /// locator's raw material. Off by default: hashing enumerates the
    /// whole directory each phase, and the hash is diagnostic, never part
    /// of [`RunReport`].
    pub witness: bool,
    /// When `true`, every thread's stream is wrapped in a byte-granular
    /// footprint auditor: each executed memory access is checked against
    /// the stream's declared [`crate::Footprint`] (reads must lie inside
    /// some extent, writes inside a `wrote` extent). A violating access
    /// bumps [`crate::metrics::FOOTPRINT_VIOLATIONS`] and, in debug
    /// builds, aborts with the thread name and offending address. Off by
    /// default: the check costs a binary search per access.
    pub audit_footprints: bool,
    /// How parallel phases order the sharded merge's residue events.
    /// [`SchedulePolicy::Observed`] (the default) replays the observed
    /// timestamp order — bit-identical to the classic loop at every shard
    /// count. A perturbed policy replays a different feasible
    /// interleaving of the same per-worker event streams, deterministic
    /// given the policy's seed (see [`crate::schedule`]). Perturbed
    /// policies route parallel phases through the sharded executor even
    /// at `shards = 1`; oversubscribed phases (more workers than cores)
    /// fall back to the classic loop and ignore the policy.
    pub schedule: SchedulePolicy,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            num_cores: 48,
            cache_line_size: 64,
            latency: LatencyModel::default(),
            thread_spawn_cost: 3_000,
            shards: 1,
            obs: ObsHandle::global(),
            witness: false,
            audit_footprints: false,
            schedule: SchedulePolicy::Observed,
        }
    }
}

impl MachineConfig {
    /// A machine with the given core count and defaults elsewhere.
    pub fn with_cores(num_cores: u32) -> Self {
        MachineConfig {
            num_cores,
            ..MachineConfig::default()
        }
    }

    /// Returns the configuration with the shard count replaced (builder
    /// style): `0` = auto, `1` = classic serial loop, `>= 2` = sharded.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Returns the configuration reporting into `obs` (builder style).
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Returns the configuration with per-phase state-hash witnesses
    /// enabled (builder style). Pair with a tracing registry
    /// ([`ObsHandle::fresh`]) so the hashes are actually recorded.
    pub fn with_witness(mut self, witness: bool) -> Self {
        self.witness = witness;
        self
    }

    /// Returns the configuration with footprint auditing enabled or
    /// disabled (builder style); see
    /// [`audit_footprints`](MachineConfig::audit_footprints).
    pub fn with_footprint_audit(mut self, audit: bool) -> Self {
        self.audit_footprints = audit;
        self
    }

    /// Returns the configuration with the given merge schedule policy
    /// (builder style); see [`schedule`](MachineConfig::schedule).
    pub fn with_schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }

    /// The shard count actually used: `shards`, with `0` resolved to the
    /// host's available parallelism.
    pub fn resolved_shards(&self) -> u32 {
        match self.shards {
            0 => std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Error for invalid [`MachineConfig`] values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `num_cores` outside `1..=64`.
    InvalidCoreCount(u32),
    /// `cache_line_size` zero or not a power of two.
    InvalidLineSize(u64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidCoreCount(n) => {
                write!(f, "core count {n} outside supported range 1..={MAX_CORES}")
            }
            ConfigError::InvalidLineSize(n) => {
                write!(f, "cache line size {n} is not a nonzero power of two")
            }
        }
    }
}

impl Error for ConfigError {}

/// The simulated machine; construct once, run many programs.
///
/// ```
/// use cheetah_sim::{Machine, MachineConfig, NullObserver, Op, OpsStream,
///                   ProgramBuilder, ThreadSpec, Addr};
/// let machine = Machine::new(MachineConfig::with_cores(8));
/// let program = ProgramBuilder::new("tiny")
///     .serial(ThreadSpec::new("init", OpsStream::new(vec![Op::Write(Addr(0x1000))])))
///     .build();
/// let report = machine.run(program, &mut NullObserver);
/// assert!(report.total_cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
}

impl Machine {
    /// Creates a machine, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the core count or line size is invalid.
    pub fn try_new(config: MachineConfig) -> Result<Machine, ConfigError> {
        if config.num_cores == 0 || config.num_cores > MAX_CORES {
            return Err(ConfigError::InvalidCoreCount(config.num_cores));
        }
        if !config.cache_line_size.is_power_of_two() {
            return Err(ConfigError::InvalidLineSize(config.cache_line_size));
        }
        Ok(Machine { config })
    }

    /// Creates a machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; see [`Machine::try_new`] for
    /// the fallible variant.
    pub fn new(config: MachineConfig) -> Machine {
        Machine::try_new(config).expect("invalid machine configuration")
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Runs `program` to completion under `observer` and reports timings.
    ///
    /// The program is consumed: streams are stateful and single-shot.
    pub fn run(&self, program: Program, observer: &mut dyn ExecObserver) -> RunReport {
        Execution::new(&self.config, observer).run(program)
    }
}

/// Byte-granular footprint auditor
/// ([`MachineConfig::audit_footprints`]): forwards the wrapped stream's
/// ops, checking every memory access against the stream's declared
/// footprint. Reads must land inside some extent; writes inside an extent
/// declared `wrote`. Streams with [`Footprint::Unknown`] declare nothing,
/// so nothing is audited.
struct AuditStream {
    thread_name: String,
    inner: Box<dyn AccessStream>,
    /// Normalized extents of the declared footprint; `None` = `Unknown`.
    extents: Option<Vec<crate::footprint::ByteExtent>>,
    violations: cheetah_obs::Counter,
}

impl AuditStream {
    fn wrap(
        thread_name: &str,
        inner: Box<dyn AccessStream>,
        violations: cheetah_obs::Counter,
    ) -> Box<dyn AccessStream> {
        let extents = match inner.footprint() {
            crate::Footprint::Bounded(extents) => Some(extents),
            crate::Footprint::Unknown => None,
        };
        Box::new(AuditStream {
            thread_name: thread_name.to_string(),
            inner,
            extents,
            violations,
        })
    }
}

impl AccessStream for AuditStream {
    fn next_op(&mut self) -> Option<Op> {
        let op = self.inner.next_op()?;
        if let (Some((addr, kind)), Some(extents)) = (op.mem_ref(), self.extents.as_deref()) {
            // Normalized extents are sorted and byte-disjoint: the only
            // candidate is the first extent ending past the address.
            let idx = extents.partition_point(|e| e.end <= addr.0);
            let covered = extents
                .get(idx)
                .is_some_and(|e| e.start <= addr.0 && (kind != AccessKind::Write || e.wrote));
            if !covered {
                self.violations.add(1);
                debug_assert!(
                    false,
                    "footprint audit: thread '{}' {} {:#x} outside its declared \
                     footprint — the stream's Footprint::Bounded under-approximates \
                     its accesses",
                    self.thread_name,
                    match kind {
                        AccessKind::Read => "reads",
                        AccessKind::Write => "writes",
                    },
                    addr.0
                );
            }
        }
        Some(op)
    }

    fn footprint(&self) -> crate::Footprint {
        self.inner.footprint()
    }
}

/// Per-thread execution state.
pub(crate) struct ThreadCtx {
    pub(crate) id: ThreadId,
    pub(crate) name: String,
    pub(crate) core: CoreId,
    /// Global virtual time of the thread's next instruction.
    pub(crate) clock: Cycles,
    pub(crate) start: Cycles,
    pub(crate) instructions: u64,
    pub(crate) reads: u64,
    pub(crate) writes: u64,
    pub(crate) stream: Box<dyn AccessStream>,
}

struct Execution<'a> {
    config: &'a MachineConfig,
    observer: &'a mut dyn ExecObserver,
    directory: Directory,
    latency: LatencyModel,
    /// Resolved shard count; `>= 2` enables the sharded parallel-phase path.
    shards: u32,
    /// Accesses replayed individually by the classic loop (flushed into
    /// the run's counters once per run to keep atomics off the hot path).
    classic_ops: u64,
    /// The run's counter handles, resolved once from `config.obs`.
    counters: SimCounters,
}

impl<'a> Execution<'a> {
    fn new(config: &'a MachineConfig, observer: &'a mut dyn ExecObserver) -> Self {
        if config.obs.tracing_enabled() {
            config.obs.name_lane(OBS_LANE_ENGINE, "engine");
        }
        Execution {
            config,
            observer,
            directory: Directory::new(config.latency.clone()),
            latency: config.latency.clone(),
            shards: config.resolved_shards(),
            classic_ops: 0,
            counters: SimCounters::of(&config.obs),
        }
    }

    /// FNV-1a digest of the logical machine state at a phase boundary:
    /// phase identity, the main thread's cursor, every worker cursor the
    /// phase retired, and the directory's logical contents. Thread cursors
    /// capture "report deltas" (the per-thread counters the phase will
    /// publish into [`RunReport`]); the directory digest captures
    /// everything the next phase's timing depends on. Identical across
    /// shard counts by the sharded executor's bit-identity contract.
    fn phase_witness(
        &self,
        index: u32,
        kind: PhaseKind,
        main: &ThreadCtx,
        retired: &[ThreadReport],
    ) -> u64 {
        let mut hash = Fnv64::new();
        hash.write_u64(u64::from(index));
        hash.write_u8(match kind {
            PhaseKind::Serial => 0,
            PhaseKind::Parallel => 1,
        });
        hash.write_u64(main.clock);
        hash.write_u64(main.instructions);
        hash.write_u64(main.reads);
        hash.write_u64(main.writes);
        for report in retired {
            hash.write_u64(u64::from(report.id.0));
            hash.write_u64(report.start);
            hash.write_u64(report.end);
            hash.write_u64(report.instructions);
            hash.write_u64(report.reads);
            hash.write_u64(report.writes);
        }
        self.directory.witness_digest(&mut hash);
        hash.finish()
    }

    fn run(mut self, program: Program) -> RunReport {
        let (program_name, phases) = program.into_parts();
        let mut phase_reports = Vec::with_capacity(phases.len());
        let mut thread_reports: Vec<ThreadReport> = Vec::new();

        // The main thread exists for the whole run on core 0.
        let main_setup = self.observer.on_thread_start(ThreadId::MAIN, "main", 0);
        let mut main = ThreadCtx {
            id: ThreadId::MAIN,
            name: "main".to_string(),
            core: CoreId(0),
            clock: main_setup,
            start: 0,
            instructions: 0,
            reads: 0,
            writes: 0,
            stream: Box::new(crate::program::OpsStream::new(Vec::new())),
        };
        let mut next_tid: u32 = 1;

        for (index, phase) in phases.into_iter().enumerate() {
            let index = index as u32;
            let kind = phase.kind();
            let phase_start = main.clock;
            let retired_from = thread_reports.len();
            let mut span = self.config.obs.span("phase", OBS_LANE_ENGINE);
            span.attr_u64("index", u64::from(index));
            span.attr_str(
                "kind",
                match kind {
                    PhaseKind::Serial => "serial",
                    PhaseKind::Parallel => "parallel",
                },
            );
            span.attr_u64("start_cycles", phase_start);
            self.observer.on_phase_start(index, kind, phase_start);
            match phase {
                Phase::Serial(spec) => {
                    let (name, stream) = spec.into_parts();
                    main.stream = if self.config.audit_footprints {
                        AuditStream::wrap(&name, stream, self.counters.violations_handle())
                    } else {
                        stream
                    };
                    if self.shards >= 2 {
                        crate::shard::run_serial_sharded(
                            self.config,
                            &mut self.directory,
                            self.observer,
                            &mut main,
                            index,
                        );
                    } else {
                        self.run_serial(&mut main, index);
                    }
                    phase_reports.push(PhaseReport {
                        index,
                        kind,
                        start: phase_start,
                        end: main.clock,
                        threads: vec![ThreadId::MAIN],
                    });
                }
                Phase::Parallel(specs) => {
                    let mut workers = Vec::with_capacity(specs.len());
                    for (slot, spec) in specs.into_iter().enumerate() {
                        let (name, stream) = spec.into_parts();
                        let stream = if self.config.audit_footprints {
                            AuditStream::wrap(&name, stream, self.counters.violations_handle())
                        } else {
                            stream
                        };
                        let id = ThreadId(next_tid);
                        next_tid += 1;
                        // pthread_create runs on the main thread.
                        main.clock += self.config.thread_spawn_cost;
                        let core = CoreId((1 + slot as u32) % self.config.num_cores);
                        let setup = self.observer.on_thread_start(id, &name, main.clock);
                        workers.push(ThreadCtx {
                            id,
                            name,
                            core,
                            clock: main.clock + setup,
                            start: main.clock,
                            instructions: 0,
                            reads: 0,
                            writes: 0,
                            stream,
                        });
                    }
                    // Sharded execution requires each phase member to own a
                    // distinct core: workers sharing a core interleave
                    // through one private cache, which only the classic
                    // per-op loop models. Slot-to-core binding is
                    // `(1 + slot) % num_cores`, so cores are distinct
                    // exactly when the phase has at most `num_cores`
                    // workers.
                    // A perturbed schedule policy also routes through the
                    // sharded executor (the residue reordering lives in
                    // its merge), even at `shards = 1`.
                    let sharded_route = self.shards >= 2 || !self.config.schedule.is_observed();
                    let ends = if sharded_route && workers.len() as u32 <= self.config.num_cores {
                        crate::shard::run_parallel_sharded(
                            self.config,
                            &mut self.directory,
                            self.observer,
                            &mut workers,
                            index,
                            self.shards as usize,
                        )
                    } else {
                        self.run_parallel(&mut workers, index)
                    };
                    let mut phase_threads = Vec::with_capacity(workers.len());
                    let mut phase_end = main.clock;
                    for (worker, end) in workers.into_iter().zip(ends) {
                        phase_end = phase_end.max(end);
                        phase_threads.push(worker.id);
                        thread_reports.push(ThreadReport {
                            id: worker.id,
                            name: worker.name,
                            phase_index: index,
                            start: worker.start,
                            end,
                            instructions: worker.instructions,
                            reads: worker.reads,
                            writes: worker.writes,
                        });
                    }
                    // Main blocks in join until the slowest child finishes.
                    main.clock = phase_end;
                    phase_reports.push(PhaseReport {
                        index,
                        kind,
                        start: phase_start,
                        end: phase_end,
                        threads: phase_threads,
                    });
                }
            }
            self.observer.on_phase_end(index, kind, main.clock);
            span.attr_u64("end_cycles", main.clock);
            if self.config.witness {
                span.attr_u64(
                    "witness",
                    self.phase_witness(index, kind, &main, &thread_reports[retired_from..]),
                );
            }
            span.finish();
        }

        let total = main.clock;
        self.observer.on_thread_exit(ThreadId::MAIN, total);
        thread_reports.insert(
            0,
            ThreadReport {
                id: ThreadId::MAIN,
                name: main.name,
                phase_index: 0,
                start: 0,
                end: total,
                instructions: main.instructions,
                reads: main.reads,
                writes: main.writes,
            },
        );

        self.counters.count_merged(self.classic_ops);
        RunReport {
            program: program_name,
            total_cycles: total,
            phases: phase_reports,
            threads: thread_reports,
            coherence: self.directory.stats().clone(),
        }
    }

    /// Runs the main thread's stream to exhaustion (serial phase).
    fn run_serial(&mut self, main: &mut ThreadCtx, phase_index: u32) {
        while let Some(op) = main.stream.next_op() {
            self.step(main, op, phase_index, PhaseKind::Serial);
        }
    }

    /// Runs all workers of a parallel phase to completion; returns each
    /// worker's end time, in the same order as `workers`.
    fn run_parallel(&mut self, workers: &mut [ThreadCtx], phase_index: u32) -> Vec<Cycles> {
        let mut ends = vec![0; workers.len()];
        // Min-heap on (clock, slot); slot as tiebreak keeps runs
        // deterministic when clocks collide.
        let mut heap: BinaryHeap<Reverse<(Cycles, usize)>> = workers
            .iter()
            .enumerate()
            .map(|(slot, w)| Reverse((w.clock, slot)))
            .collect();
        while let Some(Reverse((_, slot))) = heap.pop() {
            // Run this worker while no other worker could possibly issue an
            // earlier operation (exact event ordering, amortised heap cost).
            let horizon = heap.peek().map(|Reverse((clock, _))| *clock);
            let finished = {
                let worker = &mut workers[slot];
                loop {
                    match worker.stream.next_op() {
                        Some(op) => {
                            self.step(worker, op, phase_index, PhaseKind::Parallel);
                            if let Some(h) = horizon {
                                if worker.clock >= h {
                                    break false;
                                }
                            }
                        }
                        None => break true,
                    }
                }
            };
            if finished {
                let worker = &workers[slot];
                ends[slot] = worker.clock;
                self.observer.on_thread_exit(worker.id, worker.clock);
            } else {
                heap.push(Reverse((workers[slot].clock, slot)));
            }
        }
        ends
    }

    /// Executes one operation on behalf of `thread`, advancing its clock.
    fn step(&mut self, thread: &mut ThreadCtx, op: Op, phase_index: u32, phase_kind: PhaseKind) {
        match op {
            Op::Work(n) => {
                thread.instructions += n;
                thread.clock += n * self.latency.cycles_per_instruction;
            }
            Op::Read(addr) | Op::Write(addr) => {
                self.classic_ops += 1;
                let kind = if matches!(op, Op::Write(_)) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let line = addr.line(self.config.cache_line_size);
                let result = self.directory.access(thread.core, line, kind, thread.clock);
                let outcome = result.outcome;
                let latency = result.latency();
                let record = AccessRecord {
                    thread: thread.id,
                    core: thread.core,
                    addr,
                    kind,
                    outcome,
                    latency,
                    start: thread.clock,
                    instrs_before: thread.instructions,
                    phase_index,
                    phase_kind,
                };
                thread.instructions += 1;
                match kind {
                    AccessKind::Read => thread.reads += 1,
                    AccessKind::Write => thread.writes += 1,
                }
                thread.clock += latency;
                let perturbation = self.observer.on_access(&record);
                thread.clock += perturbation;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{CountingObserver, NullObserver};
    use crate::program::{LoopStream, OpsStream, ProgramBuilder, ThreadSpec};
    use crate::types::Addr;

    fn machine(cores: u32) -> Machine {
        Machine::new(MachineConfig::with_cores(cores))
    }

    #[test]
    fn config_validation() {
        assert!(Machine::try_new(MachineConfig::with_cores(0)).is_err());
        assert!(Machine::try_new(MachineConfig::with_cores(65)).is_err());
        let bad_line = MachineConfig {
            cache_line_size: 48,
            ..MachineConfig::default()
        };
        assert!(matches!(
            Machine::try_new(bad_line),
            Err(ConfigError::InvalidLineSize(48))
        ));
        assert!(Machine::try_new(MachineConfig::default()).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid machine configuration")]
    fn new_panics_on_bad_config() {
        let _ = Machine::new(MachineConfig::with_cores(0));
    }

    #[test]
    fn serial_program_time_is_work_plus_latency() {
        let m = machine(4);
        let lat = m.config().latency.clone();
        let program = ProgramBuilder::new("serial")
            .serial(ThreadSpec::new(
                "s",
                OpsStream::new(vec![
                    Op::Work(100),
                    Op::Write(Addr(0x1000)),
                    Op::Read(Addr(0x1000)),
                ]),
            ))
            .build();
        let report = m.run(program, &mut NullObserver);
        // 100 work + cold write (memory) + read hit.
        assert_eq!(report.total_cycles, 100 + lat.memory + lat.l1_hit);
        assert_eq!(report.threads[0].instructions, 102);
        assert_eq!(report.threads[0].reads, 1);
        assert_eq!(report.threads[0].writes, 1);
    }

    #[test]
    fn parallel_phase_ends_at_slowest_thread() {
        let m = machine(8);
        let program = ProgramBuilder::new("p")
            .parallel(vec![
                ThreadSpec::new("fast", OpsStream::new(vec![Op::Work(10)])),
                ThreadSpec::new("slow", OpsStream::new(vec![Op::Work(10_000)])),
            ])
            .build();
        let report = m.run(program, &mut NullObserver);
        let slow = report.thread(ThreadId(2)).unwrap();
        assert_eq!(report.phases[0].end, slow.end);
        assert!(report.total_cycles >= 10_000);
    }

    #[test]
    fn false_sharing_is_slower_than_padded() {
        // Two threads incrementing adjacent words (same line) vs words on
        // distinct lines: the shared-line program must be much slower.
        let m = machine(8);
        let iterations = 2_000;
        let build = |stride: u64| {
            ProgramBuilder::new("fs")
                .parallel(
                    (0..2u64)
                        .map(|t| {
                            let addr = Addr(0x10_000 + t * stride);
                            ThreadSpec::new(
                                format!("w{t}"),
                                LoopStream::new(
                                    vec![Op::Read(addr), Op::Write(addr), Op::Work(4)],
                                    iterations,
                                ),
                            )
                        })
                        .collect(),
                )
                .build()
        };
        let shared = m.run(build(4), &mut NullObserver);
        let padded = m.run(build(64), &mut NullObserver);
        assert!(
            shared.total_cycles > 3 * padded.total_cycles,
            "false sharing should dominate: shared={} padded={}",
            shared.total_cycles,
            padded.total_cycles
        );
        assert!(shared.coherence.invalidations > iterations);
        // Padded run ping-pongs nothing after warmup.
        assert!(padded.coherence.invalidations < 10);
    }

    #[test]
    fn determinism_same_program_same_report() {
        let m = machine(8);
        let build = || {
            ProgramBuilder::new("det")
                .parallel(
                    (0..4u64)
                        .map(|t| {
                            ThreadSpec::new(
                                format!("w{t}"),
                                LoopStream::new(
                                    vec![
                                        Op::Write(Addr(0x1000 + t * 8)),
                                        Op::Read(Addr(0x1000 + ((t + 1) % 4) * 8)),
                                        Op::Work(3),
                                    ],
                                    500,
                                ),
                            )
                        })
                        .collect(),
                )
                .build()
        };
        let a = m.run(build(), &mut NullObserver);
        let b = m.run(build(), &mut NullObserver);
        assert_eq!(a, b);
    }

    #[test]
    fn observer_sees_every_event() {
        let m = machine(4);
        let program = ProgramBuilder::new("events")
            .serial(ThreadSpec::new(
                "init",
                OpsStream::new(vec![Op::Write(Addr(0x40))]),
            ))
            .parallel(vec![
                ThreadSpec::new("a", OpsStream::new(vec![Op::Read(Addr(0x40))])),
                ThreadSpec::new("b", OpsStream::new(vec![Op::Read(Addr(0x80))])),
            ])
            .build();
        let mut counter = CountingObserver::default();
        let report = m.run(program, &mut counter);
        assert_eq!(counter.thread_starts, 3); // main + 2 workers
        assert_eq!(counter.thread_exits, 3);
        assert_eq!(counter.phase_starts, 2);
        assert_eq!(counter.phase_ends, 2);
        assert_eq!(counter.accesses, 3);
        assert_eq!(counter.writes, 1);
        assert_eq!(report.total_accesses(), 3);
    }

    #[test]
    fn observer_perturbation_slows_threads() {
        struct Trap;
        impl ExecObserver for Trap {
            fn on_access(&mut self, _: &AccessRecord) -> Cycles {
                1_000
            }
        }
        let m = machine(4);
        let build = || {
            ProgramBuilder::new("trap")
                .serial(ThreadSpec::new(
                    "s",
                    OpsStream::new(vec![Op::Read(Addr(0x40)), Op::Read(Addr(0x40))]),
                ))
                .build()
        };
        let clean = m.run(build(), &mut NullObserver);
        let trapped = m.run(build(), &mut Trap);
        assert_eq!(trapped.total_cycles, clean.total_cycles + 2_000);
    }

    #[test]
    fn thread_setup_cost_delays_start() {
        struct Setup;
        impl ExecObserver for Setup {
            fn on_thread_start(&mut self, thread: ThreadId, _: &str, _: Cycles) -> Cycles {
                if thread.is_main() {
                    0
                } else {
                    50_000
                }
            }
        }
        let m = machine(4);
        let build = || {
            ProgramBuilder::new("setup")
                .parallel(vec![ThreadSpec::new(
                    "w",
                    OpsStream::new(vec![Op::Work(10)]),
                )])
                .build()
        };
        let clean = m.run(build(), &mut NullObserver);
        let with_setup = m.run(build(), &mut Setup);
        assert_eq!(with_setup.total_cycles, clean.total_cycles + 50_000);
    }

    #[test]
    fn spawn_cost_serialises_thread_starts() {
        let m = machine(8);
        let program = ProgramBuilder::new("spawn")
            .parallel(
                (0..3)
                    .map(|i| ThreadSpec::new(format!("w{i}"), OpsStream::new(vec![])))
                    .collect(),
            )
            .build();
        let report = m.run(program, &mut NullObserver);
        let spawn = m.config().thread_spawn_cost;
        assert_eq!(report.thread(ThreadId(1)).unwrap().start, spawn);
        assert_eq!(report.thread(ThreadId(2)).unwrap().start, 2 * spawn);
        assert_eq!(report.thread(ThreadId(3)).unwrap().start, 3 * spawn);
    }

    #[test]
    fn thread_ids_increase_across_phases() {
        let m = machine(4);
        let mk = |n: usize| {
            (0..n)
                .map(|i| ThreadSpec::new(format!("w{i}"), OpsStream::new(vec![Op::Work(1)])))
                .collect::<Vec<_>>()
        };
        let program = ProgramBuilder::new("phases")
            .parallel(mk(2))
            .parallel(mk(2))
            .build();
        let report = m.run(program, &mut NullObserver);
        let ids: Vec<u32> = report.threads.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(report.thread(ThreadId(3)).unwrap().phase_index, 1);
    }

    #[test]
    fn workers_share_cores_when_oversubscribed() {
        // 3 cores, 4 workers: worker slots 0..4 map to cores 1,2,0,1.
        let m = machine(3);
        let program = ProgramBuilder::new("over")
            .parallel(
                (0..4u64)
                    .map(|t| {
                        ThreadSpec::new(
                            format!("w{t}"),
                            LoopStream::new(vec![Op::Write(Addr(0x9000))], 100),
                        )
                    })
                    .collect(),
            )
            .build();
        let report = m.run(program, &mut NullObserver);
        // Writes to the same line from the same core are hits, so total
        // invalidations stay below the all-distinct-cores worst case.
        assert!(report.coherence.invalidations < 400);
        assert!(report.coherence.invalidations > 0);
    }
}
