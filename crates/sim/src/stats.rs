//! Aggregate coherence statistics for a run.

use crate::latency::AccessOutcome;
use std::fmt;

/// Counters of how accesses were satisfied, accumulated by the
/// [`crate::Directory`] over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Private-cache hits.
    pub l1_hits: u64,
    /// Shared-LLC hits.
    pub llc_hits: u64,
    /// Cold misses to memory.
    pub memory: u64,
    /// Clean cache-to-cache transfers.
    pub remote_clean: u64,
    /// Dirty cache-to-cache transfers.
    pub remote_dirty: u64,
    /// Sole-sharer write upgrades.
    pub upgrade_sole: u64,
    /// Write upgrades that invalidated other sharers.
    pub upgrade_invalidate: u64,
    /// Sequential misses hidden by the prefetcher.
    pub prefetched: u64,
    /// Total remote line copies invalidated (the quantity Cheetah's
    /// two-entry tables approximate).
    pub invalidations: u64,
    /// Total cycles spent queued behind in-flight transactions on busy
    /// lines (contention delay).
    pub wait_cycles: u64,
}

impl CoherenceStats {
    /// Records one access outcome (invalidation counts are added separately
    /// by the directory, which knows the number of victims).
    pub(crate) fn record(&mut self, outcome: AccessOutcome) {
        match outcome {
            AccessOutcome::L1Hit => self.l1_hits += 1,
            AccessOutcome::LlcHit => self.llc_hits += 1,
            AccessOutcome::Memory => self.memory += 1,
            AccessOutcome::RemoteClean => self.remote_clean += 1,
            AccessOutcome::RemoteDirty => self.remote_dirty += 1,
            AccessOutcome::UpgradeSole => self.upgrade_sole += 1,
            AccessOutcome::UpgradeInvalidate => self.upgrade_invalidate += 1,
            AccessOutcome::Prefetched => self.prefetched += 1,
        }
    }

    /// Adds another set of counters into this one, field by field.
    ///
    /// Used to fold worker-local statistics (accumulated off the shared
    /// directory by sharded execution) back into a run's totals; every
    /// field is a sum, so absorption order never affects the result.
    pub fn absorb(&mut self, other: &CoherenceStats) {
        self.l1_hits += other.l1_hits;
        self.llc_hits += other.llc_hits;
        self.memory += other.memory;
        self.remote_clean += other.remote_clean;
        self.remote_dirty += other.remote_dirty;
        self.upgrade_sole += other.upgrade_sole;
        self.upgrade_invalidate += other.upgrade_invalidate;
        self.prefetched += other.prefetched;
        self.invalidations += other.invalidations;
        self.wait_cycles += other.wait_cycles;
    }

    /// Total number of accesses recorded.
    pub fn total_accesses(&self) -> u64 {
        self.l1_hits
            + self.llc_hits
            + self.memory
            + self.remote_clean
            + self.remote_dirty
            + self.upgrade_sole
            + self.upgrade_invalidate
            + self.prefetched
    }

    /// Accesses that involved a coherence transaction with another core.
    pub fn coherence_accesses(&self) -> u64 {
        self.remote_clean + self.remote_dirty + self.upgrade_invalidate
    }

    /// Fraction of accesses that were coherence traffic, in `[0, 1]`.
    pub fn coherence_ratio(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.coherence_accesses() as f64 / total as f64
        }
    }
}

impl fmt::Display for CoherenceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses {} | l1 {} llc {} mem {} prefetched {} | remote clean {} dirty {} | upgrades sole {} inval {} | invalidations {} | wait {}",
            self.total_accesses(),
            self.l1_hits,
            self.llc_hits,
            self.memory,
            self.prefetched,
            self.remote_clean,
            self.remote_dirty,
            self.upgrade_sole,
            self.upgrade_invalidate,
            self.invalidations,
            self.wait_cycles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_all_categories() {
        let mut stats = CoherenceStats::default();
        stats.record(AccessOutcome::L1Hit);
        stats.record(AccessOutcome::LlcHit);
        stats.record(AccessOutcome::Memory);
        stats.record(AccessOutcome::RemoteClean);
        stats.record(AccessOutcome::RemoteDirty);
        stats.record(AccessOutcome::UpgradeSole);
        stats.record(AccessOutcome::UpgradeInvalidate);
        stats.record(AccessOutcome::Prefetched);
        assert_eq!(stats.total_accesses(), 8);
        assert_eq!(stats.coherence_accesses(), 3);
    }

    #[test]
    fn coherence_ratio_empty_is_zero() {
        assert_eq!(CoherenceStats::default().coherence_ratio(), 0.0);
    }

    #[test]
    fn coherence_ratio_counts_remote_traffic() {
        let mut stats = CoherenceStats::default();
        stats.record(AccessOutcome::L1Hit);
        stats.record(AccessOutcome::RemoteDirty);
        assert!((stats.coherence_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let stats = CoherenceStats::default();
        assert!(!stats.to_string().is_empty());
    }
}
