//! Extent-based line classification for sharded execution.
//!
//! A parallel phase's lines are classified by who touches them: private
//! (one worker), read-shared (several workers, no writes) or write-shared.
//! PR 3 classified per line, paying hash-map traffic proportional to the
//! number of distinct lines — ruinous for streaming phases that touch tens
//! of thousands of one-shot private lines. This module classifies whole
//! **extents** instead: each worker contributes a sorted list of
//! [`LineExtent`]s (from its stream's declared [`crate::footprint`] or, as
//! a fallback, coalesced from its materialised touch set), and a single
//! boundary sweep over all workers' extents produces the phase's
//! [`ClassExtent`] table. Classification cost is proportional to the
//! number of *extents moved*, not lines touched — the cache-conscious
//! batching argument, applied to the simulator's own bookkeeping.

use crate::types::CacheLineId;
use crate::util::FastMap;

/// A contiguous run of cache lines touched by one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LineExtent {
    /// First line id.
    pub(crate) start: u64,
    /// One past the last line id.
    pub(crate) end: u64,
    /// Whether the worker may write anywhere in the run.
    pub(crate) wrote: bool,
}

/// How every line of one classified extent participates in the phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExtClass {
    /// Touched by exactly one worker (the payload slot index).
    Private(u32),
    /// Touched by several workers, none of whom writes.
    ReadShared,
    /// Touched by several workers, at least one of whom writes.
    WriteShared,
}

/// One classified extent of the phase table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ClassExtent {
    pub(crate) start: u64,
    pub(crate) end: u64,
    pub(crate) class: ExtClass,
}

/// The phase's classification table: sorted disjoint extents covering
/// every line any worker may touch.
#[derive(Debug, Default)]
pub(crate) struct ClassTable {
    extents: Vec<ClassExtent>,
}

impl ClassTable {
    /// Classifies the phase from every worker's extent list (sorted and
    /// disjoint per worker) via one boundary sweep.
    pub(crate) fn build(per_worker: &[Vec<LineExtent>]) -> ClassTable {
        // Boundary events: (position, +1 open / -1 close, worker, wrote).
        let mut events: Vec<(u64, i32, u32, bool)> = Vec::new();
        for (slot, extents) in per_worker.iter().enumerate() {
            for extent in extents {
                // An empty (or inverted) extent claims no lines; skipping it
                // keeps the sweep's open/close counts balanced even when a
                // hand-built footprint bypassed the normalising builder.
                if extent.start >= extent.end {
                    continue;
                }
                events.push((extent.start, 1, slot as u32, extent.wrote));
                events.push((extent.end, -1, slot as u32, extent.wrote));
            }
        }
        // Closes before opens at equal positions so touching extents of
        // different workers do not look concurrently active.
        events.sort_unstable_by_key(|&(pos, delta, slot, _)| (pos, delta, slot));

        // Active multiset per worker: (extent count, writing-extent count).
        let mut active: FastMap<u32, (u32, u32)> = FastMap::default();
        let mut writers: u32 = 0;
        let mut extents: Vec<ClassExtent> = Vec::new();
        let mut cursor = 0u64;
        let mut i = 0usize;
        while i < events.len() {
            let pos = events[i].0;
            if pos > cursor && !active.is_empty() {
                let class = match active.len() {
                    1 => ExtClass::Private(*active.keys().next().expect("one active worker")),
                    _ if writers > 0 => ExtClass::WriteShared,
                    _ => ExtClass::ReadShared,
                };
                match extents.last_mut() {
                    Some(last) if last.end == cursor && last.class == class => last.end = pos,
                    _ => extents.push(ClassExtent {
                        start: cursor,
                        end: pos,
                        class,
                    }),
                }
            }
            cursor = pos;
            while i < events.len() && events[i].0 == pos {
                let (_, delta, slot, wrote) = events[i];
                i += 1;
                let entry = active.entry(slot).or_insert((0, 0));
                if delta > 0 {
                    entry.0 += 1;
                    if wrote {
                        entry.1 += 1;
                        if entry.1 == 1 {
                            writers += 1;
                        }
                    }
                } else {
                    entry.0 -= 1;
                    if wrote {
                        entry.1 -= 1;
                        if entry.1 == 0 {
                            writers -= 1;
                        }
                    }
                    if entry.0 == 0 {
                        active.remove(&slot);
                    }
                }
            }
        }
        ClassTable { extents }
    }

    /// The classified extents, sorted and disjoint.
    pub(crate) fn extents(&self) -> &[ClassExtent] {
        &self.extents
    }

    /// Looks the line's extent index up by binary search; `None` when the
    /// line lies outside every declared footprint (a contract violation by
    /// some stream).
    pub(crate) fn find(&self, line: CacheLineId) -> Option<usize> {
        let idx = self.extents.partition_point(|e| e.end <= line.0);
        (idx < self.extents.len() && self.extents[idx].start <= line.0).then_some(idx)
    }
}

/// Coalesces one worker's exact per-line touch map (the materialisation
/// fallback for streams without a declared footprint) into sorted extents.
/// Adjacent lines merge only when their write flags agree, keeping the
/// read/write boundary exact.
pub(crate) fn extents_from_touched(touched: &FastMap<CacheLineId, bool>) -> Vec<LineExtent> {
    let mut lines: Vec<(u64, bool)> = touched.iter().map(|(l, &w)| (l.0, w)).collect();
    lines.sort_unstable();
    let mut extents: Vec<LineExtent> = Vec::new();
    for (line, wrote) in lines {
        match extents.last_mut() {
            Some(last) if last.end == line && last.wrote == wrote => last.end = line + 1,
            _ => extents.push(LineExtent {
                start: line,
                end: line + 1,
                wrote,
            }),
        }
    }
    extents
}

/// A sorted list of disjoint line-id ranges with cheap coalescing inserts;
/// the accumulator behind extent-granular directory write-back.
///
/// Sequential sweeps (the streaming pattern the extent table exists for)
/// always extend the last-inserted range in O(1); arbitrary insert order
/// degrades to a `Vec::insert` shift, which callers bound by spilling to a
/// per-line map once the list fragments.
#[derive(Debug, Default, Clone)]
pub(crate) struct RangeList {
    ranges: Vec<(u64, u64)>,
    /// Index of the most recently extended range (locality cursor).
    cursor: usize,
}

impl RangeList {
    /// Number of disjoint ranges.
    pub(crate) fn fragments(&self) -> usize {
        self.ranges.len()
    }

    /// The ranges, sorted and disjoint.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().copied()
    }

    /// Whether `line` is recorded.
    pub(crate) fn contains(&mut self, line: u64) -> bool {
        if let Some(&(s, e)) = self.ranges.get(self.cursor) {
            if s <= line && line < e {
                return true;
            }
        }
        let idx = self.ranges.partition_point(|&(_, e)| e <= line);
        if idx < self.ranges.len() && self.ranges[idx].0 <= line {
            self.cursor = idx;
            true
        } else {
            false
        }
    }

    /// Records `line`, coalescing with neighbours. Idempotent.
    pub(crate) fn insert(&mut self, line: u64) {
        // Fast path: extend the cursor range at either edge.
        if let Some(&(s, e)) = self.ranges.get(self.cursor) {
            if s <= line && line < e {
                return;
            }
            if line == e
                && self
                    .ranges
                    .get(self.cursor + 1)
                    .is_none_or(|n| n.0 > line + 1)
            {
                self.ranges[self.cursor].1 = line + 1;
                return;
            }
            if line + 1 == s && (self.cursor == 0 || self.ranges[self.cursor - 1].1 < line) {
                self.ranges[self.cursor].0 = line;
                return;
            }
        }
        let idx = self.ranges.partition_point(|&(_, e)| e <= line);
        if idx < self.ranges.len() && self.ranges[idx].0 <= line {
            self.cursor = idx;
            return; // already present
        }
        // Try extending the neighbours around the insertion point.
        let extends_next = idx < self.ranges.len() && self.ranges[idx].0 == line + 1;
        let extends_prev = idx > 0 && self.ranges[idx - 1].1 == line;
        match (extends_prev, extends_next) {
            (true, true) => {
                self.ranges[idx - 1].1 = self.ranges[idx].1;
                self.ranges.remove(idx);
                self.cursor = idx - 1;
            }
            (true, false) => {
                self.ranges[idx - 1].1 = line + 1;
                self.cursor = idx - 1;
            }
            (false, true) => {
                self.ranges[idx].0 = line;
                self.cursor = idx;
            }
            (false, false) => {
                self.ranges.insert(idx, (line, line + 1));
                self.cursor = idx;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(start: u64, end: u64, wrote: bool) -> LineExtent {
        LineExtent { start, end, wrote }
    }

    #[test]
    fn disjoint_extents_are_private() {
        let table = ClassTable::build(&[vec![ext(0, 10, true)], vec![ext(10, 20, false)]]);
        assert_eq!(
            table.extents(),
            &[
                ClassExtent {
                    start: 0,
                    end: 10,
                    class: ExtClass::Private(0)
                },
                ClassExtent {
                    start: 10,
                    end: 20,
                    class: ExtClass::Private(1)
                },
            ]
        );
    }

    #[test]
    fn overlap_classification_splits_at_boundaries() {
        // Worker 0 reads [0,20); worker 1 writes [10,30).
        let table = ClassTable::build(&[vec![ext(0, 20, false)], vec![ext(10, 30, true)]]);
        assert_eq!(
            table.extents(),
            &[
                ClassExtent {
                    start: 0,
                    end: 10,
                    class: ExtClass::Private(0)
                },
                ClassExtent {
                    start: 10,
                    end: 20,
                    class: ExtClass::WriteShared
                },
                ClassExtent {
                    start: 20,
                    end: 30,
                    class: ExtClass::Private(1)
                },
            ]
        );
    }

    #[test]
    fn read_only_overlap_is_read_shared() {
        let table = ClassTable::build(&[
            vec![ext(5, 15, false)],
            vec![ext(5, 15, false)],
            vec![ext(5, 15, false)],
        ]);
        assert_eq!(
            table.extents(),
            &[ClassExtent {
                start: 5,
                end: 15,
                class: ExtClass::ReadShared
            }]
        );
    }

    #[test]
    fn same_worker_overlapping_read_and_write_extents_stay_private() {
        // A worker may declare a read extent and a write extent over the
        // same lines; alone it is still private.
        let table = ClassTable::build(&[vec![ext(0, 8, false), ext(0, 8, true)]]);
        assert_eq!(
            table.extents(),
            &[ClassExtent {
                start: 0,
                end: 8,
                class: ExtClass::Private(0)
            }]
        );
    }

    #[test]
    fn find_resolves_inside_and_rejects_gaps() {
        let table = ClassTable::build(&[vec![ext(0, 4, true), ext(8, 12, true)]]);
        assert_eq!(table.find(CacheLineId(1)), Some(0));
        assert_eq!(table.find(CacheLineId(9)), Some(1));
        assert_eq!(table.find(CacheLineId(5)), None);
        assert_eq!(table.find(CacheLineId(12)), None);
    }

    #[test]
    fn touching_extents_of_different_workers_do_not_mix() {
        let table = ClassTable::build(&[vec![ext(0, 10, true)], vec![ext(10, 20, true)]]);
        assert_eq!(table.extents().len(), 2);
        assert!(matches!(table.extents()[0].class, ExtClass::Private(0)));
        assert!(matches!(table.extents()[1].class, ExtClass::Private(1)));
    }

    #[test]
    fn extents_from_touched_coalesces_runs() {
        let mut touched: FastMap<CacheLineId, bool> = FastMap::default();
        for l in 0..100u64 {
            touched.insert(CacheLineId(l), false);
        }
        touched.insert(CacheLineId(200), true);
        let extents = extents_from_touched(&touched);
        assert_eq!(extents, vec![ext(0, 100, false), ext(200, 201, true)]);
    }

    #[test]
    fn range_list_sequential_and_random() {
        let mut list = RangeList::default();
        for l in 0..1000u64 {
            list.insert(l);
        }
        assert_eq!(list.fragments(), 1);
        list.insert(2000);
        list.insert(1999);
        list.insert(2001);
        assert_eq!(list.fragments(), 2);
        assert!(list.contains(500));
        assert!(list.contains(1999));
        assert!(!list.contains(1500));
        // Bridge the gap one line at a time from both sides.
        list.insert(1000);
        list.insert(1998);
        assert_eq!(list.fragments(), 2);
        assert!(list.contains(1000));
        assert!(list.contains(1998));
        // Closing the last gap through the cursor fast path merges too.
        for l in 1001..1998 {
            list.insert(l);
        }
        assert_eq!(list.fragments(), 1);
        assert!(list.contains(1500));
        // Idempotent.
        list.insert(500);
        assert_eq!(list.fragments(), 1);
    }

    #[test]
    fn range_list_merges_when_gap_closes() {
        let mut list = RangeList::default();
        list.insert(0);
        list.insert(2);
        assert_eq!(list.fragments(), 2);
        list.insert(1);
        assert_eq!(list.fragments(), 1);
        assert!(list.contains(0) && list.contains(1) && list.contains(2));
    }
}
