//! Access footprints: byte-range summaries of everything a stream may
//! touch, declared *before* the stream is consumed.
//!
//! The sharded executor classifies cache lines by who touches them in a
//! phase. Discovering that per line — draining every stream into a trace
//! and recording each touched line in a hash map — is exactly the per-line
//! overhead that caps streaming workloads near 1x. Most workload streams
//! are tiny state machines over a few contiguous slices (a per-thread input
//! window, a scratch block, a shared table), so they can *declare* their
//! footprint as a handful of [`ByteExtent`]s up front; the executor then
//! classifies whole extents at once and skips the materialisation pass
//! entirely (see [`crate::shard`]).
//!
//! ## Soundness contract
//!
//! A [`Footprint::Bounded`] must be a **superset**: every byte the stream
//! will ever read must lie in some extent, and every byte it will ever
//! write must lie in some extent with `wrote = true`. Over-approximation is
//! safe — a line claimed but never touched at worst demotes a neighbour
//! from "private" to "shared", which is always executed correctly, just
//! without the fast path. Under-approximation is a contract violation and
//! the sharded executor aborts with a panic naming the stream's worker
//! rather than risk a silently wrong classification.

use crate::types::Addr;

/// One contiguous byte range of a footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteExtent {
    /// First byte of the range.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
    /// Whether the stream may write anywhere in the range.
    pub wrote: bool,
}

impl ByteExtent {
    /// An extent covering `[start, end)`.
    pub fn new(start: u64, end: u64, wrote: bool) -> Self {
        ByteExtent { start, end, wrote }
    }

    /// The extent of a single access.
    pub fn word(addr: Addr, wrote: bool) -> Self {
        ByteExtent {
            start: addr.0,
            end: addr.0 + 1,
            wrote,
        }
    }
}

/// A stream's declared access footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Footprint {
    /// The stream cannot (or does not) bound its accesses; the sharded
    /// executor falls back to materialising the stream and classifying its
    /// touched lines one by one.
    Unknown,
    /// A sorted, disjoint superset of every byte the stream may touch (see
    /// the module-level soundness contract).
    Bounded(Vec<ByteExtent>),
}

impl Footprint {
    /// Builds a bounded footprint from arbitrary (possibly overlapping,
    /// unsorted) extents, normalising them into the sorted disjoint form.
    pub fn bounded(extents: Vec<ByteExtent>) -> Footprint {
        let mut builder = FootprintBuilder::default();
        for extent in extents {
            builder.push(extent);
        }
        builder.finish()
    }

    /// Combines two footprints; `Unknown` absorbs everything.
    pub fn union(self, other: Footprint) -> Footprint {
        match (self, other) {
            (Footprint::Bounded(mut a), Footprint::Bounded(b)) => {
                a.extend(b);
                Footprint::bounded(a)
            }
            _ => Footprint::Unknown,
        }
    }
}

/// Accumulates extents and normalises them into a [`Footprint::Bounded`].
///
/// ```
/// use cheetah_sim::footprint::{ByteExtent, Footprint, FootprintBuilder};
/// let mut b = FootprintBuilder::default();
/// b.push(ByteExtent::new(0x100, 0x140, false));
/// b.push(ByteExtent::new(0x120, 0x180, true)); // overlaps: merged, wrote
/// b.push(ByteExtent::new(0x400, 0x440, false));
/// let Footprint::Bounded(extents) = b.finish() else { unreachable!() };
/// assert_eq!(extents.len(), 2);
/// assert_eq!((extents[0].start, extents[0].end, extents[0].wrote),
///            (0x100, 0x180, true));
/// ```
#[derive(Debug, Default)]
pub struct FootprintBuilder {
    extents: Vec<ByteExtent>,
}

impl FootprintBuilder {
    /// Adds one extent; empty ranges are ignored.
    pub fn push(&mut self, extent: ByteExtent) {
        if extent.start < extent.end {
            self.extents.push(extent);
        }
    }

    /// Normalises and returns the footprint.
    ///
    /// Overlapping or touching extents with equal `wrote` flags merge;
    /// overlapping extents with different flags merge to `wrote = true`
    /// (a sound over-approximation). Touching-but-disjoint extents with
    /// different flags stay separate so a read-only slice next to a
    /// written one keeps its finer classification.
    pub fn finish(mut self) -> Footprint {
        self.extents.sort_by_key(|e| (e.start, e.end));
        let mut merged: Vec<ByteExtent> = Vec::with_capacity(self.extents.len());
        for extent in self.extents {
            match merged.last_mut() {
                Some(last) if extent.start < last.end => {
                    // Genuine overlap: merge, widening the write flag.
                    last.end = last.end.max(extent.end);
                    last.wrote |= extent.wrote;
                }
                Some(last) if extent.start == last.end && extent.wrote == last.wrote => {
                    last.end = extent.end;
                }
                _ => merged.push(extent),
            }
        }
        Footprint::Bounded(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_unsorted_overlaps() {
        let fp = Footprint::bounded(vec![
            ByteExtent::new(0x200, 0x240, true),
            ByteExtent::new(0x100, 0x180, false),
            ByteExtent::new(0x150, 0x210, false),
        ]);
        let Footprint::Bounded(extents) = fp else {
            panic!("bounded")
        };
        // [0x100,0x210) read overlaps [0x200,0x240) write -> merged wrote.
        assert_eq!(extents.len(), 1);
        assert_eq!(extents[0], ByteExtent::new(0x100, 0x240, true));
    }

    #[test]
    fn touching_extents_with_different_flags_stay_separate() {
        let fp = Footprint::bounded(vec![
            ByteExtent::new(0x100, 0x140, false),
            ByteExtent::new(0x140, 0x180, true),
        ]);
        let Footprint::Bounded(extents) = fp else {
            panic!("bounded")
        };
        assert_eq!(extents.len(), 2);
    }

    #[test]
    fn empty_extents_dropped() {
        let fp = Footprint::bounded(vec![ByteExtent::new(0x100, 0x100, true)]);
        assert_eq!(fp, Footprint::Bounded(Vec::new()));
    }

    #[test]
    fn union_unknown_absorbs() {
        let bounded = Footprint::bounded(vec![ByteExtent::new(0, 8, false)]);
        assert_eq!(
            bounded.clone().union(Footprint::Unknown),
            Footprint::Unknown
        );
        assert_eq!(
            Footprint::Unknown.union(bounded.clone()),
            Footprint::Unknown
        );
        let other = Footprint::bounded(vec![ByteExtent::new(8, 16, false)]);
        assert_eq!(
            bounded.union(other),
            Footprint::bounded(vec![ByteExtent::new(0, 16, false)])
        );
    }
}
