//! MESI coherence directory with per-line contention queuing.
//!
//! The directory tracks, for every cache line ever touched, which cores hold
//! a copy and in which state (Modified / Exclusive / Shared; Invalid lines
//! are simply absent). Private caches are modelled as infinite — capacity
//! evictions are disabled — so every miss is either cold or a *coherence*
//! miss. That isolates exactly the effect false sharing produces and matches
//! the machine model the paper's detector assumes (its Assumption 2).
//!
//! Beyond MESI state, each line has a **busy window**: a coherence
//! transaction (cold fill, cache-to-cache transfer, invalidating upgrade)
//! occupies the line until it completes, and any access arriving meanwhile
//! queues behind it. This is what makes contended lines expensive for
//! *every* participant — the physical property behind the paper's
//! Observation 2 (accesses with false sharing have much higher latency) —
//! and what serialises throughput on a ping-ponging line.
//!
//! The directory is the single authority for access outcomes: the execution
//! engine calls [`Directory::access`] for every simulated load/store with
//! the current virtual time and charges the returned total latency to the
//! issuing thread.

use crate::latency::{AccessOutcome, LatencyModel};
use crate::stats::CoherenceStats;
use crate::types::{AccessKind, CacheLineId, CoreId, Cycles};
use crate::util::{FastMap, FastSet};

/// Maximum number of cores the sharer bitset supports.
pub const MAX_CORES: u32 = 64;

/// Set of cores sharing a line, as a 64-bit bitset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty set.
    pub fn empty() -> Self {
        SharerSet(0)
    }

    /// A singleton set.
    pub fn singleton(core: CoreId) -> Self {
        debug_assert!(core.0 < MAX_CORES);
        SharerSet(1u64 << core.0)
    }

    /// Inserts `core` into the set.
    pub fn insert(&mut self, core: CoreId) {
        debug_assert!(core.0 < MAX_CORES);
        self.0 |= 1u64 << core.0;
    }

    /// Whether `core` is in the set.
    pub fn contains(self, core: CoreId) -> bool {
        core.0 < MAX_CORES && self.0 & (1u64 << core.0) != 0
    }

    /// Number of cores in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the cores in ascending id order.
    pub fn iter(self) -> impl Iterator<Item = CoreId> {
        let bits = self.0;
        (0..MAX_CORES).filter_map(move |i| {
            if bits & (1u64 << i) != 0 {
                Some(CoreId(i))
            } else {
                None
            }
        })
    }
}

/// MESI state of a tracked line. `Invalid` is represented by absence from the
/// directory map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LineState {
    /// Exactly one core holds a clean, exclusive copy.
    Exclusive(CoreId),
    /// Exactly one core holds a dirty copy.
    Modified(CoreId),
    /// One or more cores hold clean shared copies.
    Shared(SharerSet),
}

/// Result of applying one access to a line's MESI state, independent of
/// time: the next state, how the access was satisfied, how many remote
/// copies were invalidated, and whether the line becomes LLC-resident.
///
/// This is the *pure* core of the coherence protocol. [`Directory::access`]
/// layers the busy-window queueing and prefetch substitution on top; the
/// sharded executor replays the same function against worker-local state
/// for lines it has proven private to one core (see [`crate::shard`]), so
/// both execution paths share one source of protocol truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Transition {
    pub(crate) state: LineState,
    pub(crate) outcome: AccessOutcome,
    pub(crate) invalidated: u64,
    pub(crate) llc_insert: bool,
}

/// Applies one access to a line's MESI state.
///
/// `prev` is the line's current state (`None` = Invalid / never cached) and
/// `in_llc` whether the shared LLC holds the line — consulted only when
/// `prev` is `None`, to distinguish a cold miss from an LLC refill.
pub(crate) fn transition(
    prev: Option<LineState>,
    in_llc: bool,
    core: CoreId,
    kind: AccessKind,
) -> Transition {
    match kind {
        AccessKind::Read => match prev {
            Some(LineState::Modified(owner)) => {
                if owner == core {
                    Transition {
                        state: LineState::Modified(owner),
                        outcome: AccessOutcome::L1Hit,
                        invalidated: 0,
                        llc_insert: false,
                    }
                } else {
                    // Dirty cache-to-cache transfer; owner downgrades to
                    // Shared and the dirty data reaches the LLC.
                    let mut sharers = SharerSet::singleton(owner);
                    sharers.insert(core);
                    Transition {
                        state: LineState::Shared(sharers),
                        outcome: AccessOutcome::RemoteDirty,
                        invalidated: 0,
                        llc_insert: true,
                    }
                }
            }
            Some(LineState::Exclusive(owner)) => {
                if owner == core {
                    Transition {
                        state: LineState::Exclusive(owner),
                        outcome: AccessOutcome::L1Hit,
                        invalidated: 0,
                        llc_insert: false,
                    }
                } else {
                    let mut sharers = SharerSet::singleton(owner);
                    sharers.insert(core);
                    Transition {
                        state: LineState::Shared(sharers),
                        outcome: AccessOutcome::RemoteClean,
                        invalidated: 0,
                        llc_insert: false,
                    }
                }
            }
            Some(LineState::Shared(sharers)) => {
                if sharers.contains(core) {
                    Transition {
                        state: LineState::Shared(sharers),
                        outcome: AccessOutcome::L1Hit,
                        invalidated: 0,
                        llc_insert: false,
                    }
                } else {
                    // Shared lines are (conservatively) present in the LLC.
                    let mut sharers = sharers;
                    sharers.insert(core);
                    Transition {
                        state: LineState::Shared(sharers),
                        outcome: AccessOutcome::LlcHit,
                        invalidated: 0,
                        llc_insert: true,
                    }
                }
            }
            None => Transition {
                state: LineState::Exclusive(core),
                outcome: if in_llc {
                    AccessOutcome::LlcHit
                } else {
                    AccessOutcome::Memory
                },
                invalidated: 0,
                llc_insert: true,
            },
        },
        AccessKind::Write => match prev {
            Some(LineState::Modified(owner)) => {
                if owner == core {
                    Transition {
                        state: LineState::Modified(owner),
                        outcome: AccessOutcome::L1Hit,
                        invalidated: 0,
                        llc_insert: false,
                    }
                } else {
                    // Read-for-ownership of a dirty line: invalidate owner.
                    Transition {
                        state: LineState::Modified(core),
                        outcome: AccessOutcome::RemoteDirty,
                        invalidated: 1,
                        llc_insert: false,
                    }
                }
            }
            Some(LineState::Exclusive(owner)) => {
                if owner == core {
                    // Silent E -> M upgrade.
                    Transition {
                        state: LineState::Modified(core),
                        outcome: AccessOutcome::L1Hit,
                        invalidated: 0,
                        llc_insert: false,
                    }
                } else {
                    Transition {
                        state: LineState::Modified(core),
                        outcome: AccessOutcome::RemoteClean,
                        invalidated: 1,
                        llc_insert: false,
                    }
                }
            }
            Some(LineState::Shared(sharers)) => {
                let holds_copy = sharers.contains(core);
                let victims = sharers.len() - u32::from(holds_copy);
                Transition {
                    state: LineState::Modified(core),
                    outcome: if victims == 0 {
                        AccessOutcome::UpgradeSole
                    } else {
                        AccessOutcome::UpgradeInvalidate
                    },
                    invalidated: u64::from(victims),
                    llc_insert: false,
                }
            }
            None => Transition {
                state: LineState::Modified(core),
                outcome: if in_llc {
                    AccessOutcome::LlcHit
                } else {
                    AccessOutcome::Memory
                },
                invalidated: 0,
                llc_insert: true,
            },
        },
    }
}

#[derive(Debug, Clone, Copy)]
struct LineEntry {
    state: LineState,
    /// The line is occupied by an in-flight coherence transaction until
    /// this time; later requests queue behind it.
    busy_until: Cycles,
}

/// Result of one directory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// How the access was satisfied.
    pub outcome: AccessOutcome,
    /// Cycles spent queued behind an in-flight transaction on the line.
    pub wait: Cycles,
    /// Cycles of the access itself.
    pub cost: Cycles,
}

impl AccessResult {
    /// Total latency charged to the issuing thread.
    pub fn latency(&self) -> Cycles {
        self.wait + self.cost
    }
}

/// The coherence directory of the simulated machine.
///
/// ```
/// use cheetah_sim::{AccessKind, AccessOutcome, CacheLineId, CoreId, Directory,
///                   LatencyModel};
/// let mut dir = Directory::new(LatencyModel::default());
/// let line = CacheLineId(7);
/// // Cold write allocates the line in Modified on core 0.
/// assert_eq!(dir.access(CoreId(0), line, AccessKind::Write, 0).outcome,
///            AccessOutcome::Memory);
/// // A write from core 1 is a dirty remote fetch that invalidates core 0.
/// let result = dir.access(CoreId(1), line, AccessKind::Write, 1_000);
/// assert_eq!(result.outcome, AccessOutcome::RemoteDirty);
/// assert_eq!(dir.stats().invalidations, 1);
/// ```
#[derive(Debug)]
pub struct Directory {
    latency: LatencyModel,
    lines: FastMap<CacheLineId, LineEntry>,
    /// Extent overlay: contiguous line ranges `[start, end)` restored with
    /// one uniform MESI state by the sharded executor's extent write-back
    /// (sorted, disjoint, busy windows cleared). Per-line entries in
    /// `lines` always shadow the overlay, so the overlay never needs
    /// splitting when a single line inside a range diverges — the merge
    /// simply materialises that line into `lines`.
    overlay: Vec<(u64, u64, LineState)>,
    /// Lines that have ever been cached: the (infinite) shared LLC contents.
    llc: FastSet<CacheLineId>,
    /// Extent form of LLC residency (union with `llc`), sorted disjoint.
    llc_ranges: Vec<(u64, u64)>,
    /// Last line touched per core, for next-line prefetch detection.
    last_line: FastMap<CoreId, CacheLineId>,
    stats: CoherenceStats,
}

impl Default for Directory {
    fn default() -> Self {
        Directory::new(LatencyModel::default())
    }
}

impl Directory {
    /// Creates an empty directory (all lines Invalid, LLC empty) using the
    /// given latency model for transaction costs.
    pub fn new(latency: LatencyModel) -> Self {
        Directory {
            latency,
            lines: FastMap::default(),
            overlay: Vec::new(),
            llc: FastSet::default(),
            llc_ranges: Vec::new(),
            last_line: FastMap::default(),
            stats: CoherenceStats::default(),
        }
    }

    /// Aggregate statistics accumulated so far.
    pub fn stats(&self) -> &CoherenceStats {
        &self.stats
    }

    /// Number of lines currently tracked in a valid state (per-line entries
    /// plus lines covered by extent-overlay ranges; lines present in both
    /// count once).
    pub fn tracked_lines(&self) -> usize {
        let overlay_lines: u64 = self
            .overlay
            .iter()
            .map(|&(start, end, _)| end - start)
            .sum();
        // One binary search per per-line key beats scanning the key set per
        // range: O(|lines| log |overlay|), not O(|overlay| x |lines|).
        let shadowed = self
            .lines
            .keys()
            .filter(|l| self.overlay_state(**l).is_some())
            .count() as u64;
        self.lines.len() + (overlay_lines - shadowed) as usize
    }

    /// Feeds the directory's *logical* contents into `hash`, for the
    /// determinism divergence witness (see
    /// [`MachineConfig::witness`](crate::MachineConfig)).
    ///
    /// "Logical" means the state the coherence protocol can observe, in a
    /// canonical order independent of representation: per-line MESI states
    /// (sorted by line id, per-line entries shadowing the extent overlay
    /// exactly as [`Directory::seed_of`] resolves them), LLC residency
    /// (the union of the per-line set and the extent ranges), per-core
    /// prefetch cursors, and the aggregate statistics. Busy windows are
    /// deliberately **excluded**: the classic loop leaves stale
    /// `busy_until` stamps on lines whose contention has already resolved,
    /// while the sharded write-back clears them — both representations
    /// mean "no pending transaction reaches into the next phase", which is
    /// the only thing busy windows are allowed to encode at a phase
    /// boundary.
    pub(crate) fn witness_digest(&self, hash: &mut cheetah_obs::Fnv64) {
        let mut ids: Vec<u64> = self.lines.keys().map(|l| l.0).collect();
        for &(start, end, _) in &self.overlay {
            for id in start..end {
                if !self.lines.contains_key(&CacheLineId(id)) {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        hash.write_u64(ids.len() as u64);
        for id in ids {
            let line = CacheLineId(id);
            let state = match self.lines.get(&line) {
                Some(entry) => entry.state,
                None => self
                    .overlay_state(line)
                    .expect("line id was collected from an overlay range"),
            };
            hash.write_u64(id);
            match state {
                LineState::Exclusive(core) => {
                    hash.write_u8(1);
                    hash.write_u64(u64::from(core.0));
                }
                LineState::Modified(core) => {
                    hash.write_u8(2);
                    hash.write_u64(u64::from(core.0));
                }
                LineState::Shared(sharers) => {
                    hash.write_u8(3);
                    hash.write_u64(sharers.0);
                }
            }
        }
        let mut llc_ids: Vec<u64> = self.llc.iter().map(|l| l.0).collect();
        for &(start, end) in &self.llc_ranges {
            for id in start..end {
                if !self.llc.contains(&CacheLineId(id)) {
                    llc_ids.push(id);
                }
            }
        }
        llc_ids.sort_unstable();
        llc_ids.dedup();
        hash.write_u64(llc_ids.len() as u64);
        for id in llc_ids {
            hash.write_u64(id);
        }
        let mut cursors: Vec<(u32, u64)> = self
            .last_line
            .iter()
            .map(|(core, line)| (core.0, line.0))
            .collect();
        cursors.sort_unstable();
        hash.write_u64(cursors.len() as u64);
        for (core, line) in cursors {
            hash.write_u64(u64::from(core));
            hash.write_u64(line);
        }
        for count in [
            self.stats.l1_hits,
            self.stats.llc_hits,
            self.stats.memory,
            self.stats.remote_clean,
            self.stats.remote_dirty,
            self.stats.upgrade_sole,
            self.stats.upgrade_invalidate,
            self.stats.prefetched,
            self.stats.invalidations,
            self.stats.wait_cycles,
        ] {
            hash.write_u64(count);
        }
    }

    /// Looks a line up in the extent overlay.
    fn overlay_state(&self, line: CacheLineId) -> Option<LineState> {
        let idx = self.overlay.partition_point(|&(_, end, _)| end <= line.0);
        match self.overlay.get(idx) {
            Some(&(start, _, state)) if start <= line.0 => Some(state),
            _ => None,
        }
    }

    /// Whether the LLC holds the line (per-line set or extent ranges).
    fn llc_contains(&self, line: CacheLineId) -> bool {
        if self.llc.contains(&line) {
            return true;
        }
        let idx = self.llc_ranges.partition_point(|&(_, end)| end <= line.0);
        matches!(self.llc_ranges.get(idx), Some(&(start, _)) if start <= line.0)
    }

    /// Simulates one access starting at time `now`; returns how it was
    /// satisfied and the full latency breakdown.
    ///
    /// Updates MESI state, the per-line busy window, the LLC presence set
    /// and the statistics counters (including `invalidations`, the number
    /// of remote line copies killed by write upgrades and
    /// read-for-ownership transfers).
    pub fn access(
        &mut self,
        core: CoreId,
        line: CacheLineId,
        kind: AccessKind,
        now: Cycles,
    ) -> AccessResult {
        let sequential = self
            .last_line
            .get(&core)
            .is_some_and(|last| last.0 + 1 == line.0);
        self.last_line.insert(core, line);
        self.access_inner(core, line, kind, now, sequential)
    }

    /// [`Directory::access`] with the next-line-prefetch condition supplied
    /// by the caller instead of the internal per-core last-line tracker.
    ///
    /// The sharded executor routes only a worker's *interacting* accesses
    /// through the shared directory; the worker's full access sequence —
    /// which is what the prefetcher observes — is known to its precompute
    /// pass, so that pass supplies `sequential` and the internal tracker is
    /// neither consulted nor updated (it is rewritten wholesale when the
    /// phase's shards merge back).
    pub(crate) fn access_hinted(
        &mut self,
        core: CoreId,
        line: CacheLineId,
        kind: AccessKind,
        now: Cycles,
        sequential: bool,
    ) -> AccessResult {
        self.access_inner(core, line, kind, now, sequential)
    }

    fn access_inner(
        &mut self,
        core: CoreId,
        line: CacheLineId,
        kind: AccessKind,
        now: Cycles,
        sequential: bool,
    ) -> AccessResult {
        // Queue behind any in-flight transaction on the line. Overlay
        // ranges carry no busy window (extent write-back happens at phase
        // joins, after every transaction completed).
        let entry = self.lines.get(&line);
        let wait = entry.map_or(0, |entry| entry.busy_until.saturating_sub(now));
        let prev = entry.map(|e| e.state).or_else(|| self.overlay_state(line));
        let in_llc = prev.is_none() && self.llc_contains(line);
        let t = transition(prev, in_llc, core, kind);
        self.set_state(line, t.state);
        if t.llc_insert {
            self.llc.insert(line);
        }
        self.stats.invalidations += t.invalidated;
        // Next-line prefetch: a sequential miss on an uncontended line is
        // hidden by the hardware prefetcher. The state transition and any
        // invalidations above still stand; only the visible cost changes.
        let outcome = if wait == 0 && prefetchable(t.outcome) && sequential {
            AccessOutcome::Prefetched
        } else {
            t.outcome
        };
        let cost = self.latency.cost(outcome);
        // Transactions that move the line occupy it until they complete.
        if occupies_line(outcome) {
            if let Some(entry) = self.lines.get_mut(&line) {
                entry.busy_until = now + wait + cost;
            }
        }
        self.stats.record(outcome);
        self.stats.wait_cycles += wait;
        AccessResult {
            outcome,
            wait,
            cost,
        }
    }

    fn set_state(&mut self, line: CacheLineId, state: LineState) {
        match self.lines.get_mut(&line) {
            Some(entry) => entry.state = state,
            None => {
                self.lines.insert(
                    line,
                    LineEntry {
                        state,
                        busy_until: 0,
                    },
                );
            }
        }
    }

    // --- Sharded-execution hooks (crate-internal; see `crate::shard`). ---

    /// A line's seed state for worker-local simulation, with provenance:
    /// `from_map` is true when the state came from a *per-line* entry. The
    /// extent write-back needs this distinction — a line whose state lives
    /// in a per-line entry must be restored per line (the entry would
    /// shadow any overlay range written for it), while overlay-seeded and
    /// cold lines may fold into a range restore.
    pub(crate) fn seed_of(&self, line: CacheLineId) -> (Option<LineState>, bool) {
        match self.lines.get(&line) {
            Some(entry) => (Some(entry.state), true),
            None => (self.overlay_state(line), false),
        }
    }

    /// Whether the LLC holds the line; seed-side companion of
    /// [`Directory::seed_of`] for cold lines.
    pub(crate) fn llc_resident(&self, line: CacheLineId) -> bool {
        self.llc_contains(line)
    }

    /// Overwrites every line of `[start, end)` with one uniform MESI state
    /// (busy windows cleared): the extent form of
    /// [`Directory::restore_line_state`], used when a sharded phase proves
    /// a whole private run of lines ended in the same state.
    ///
    /// The caller must ensure no *stale* per-line entry covers the range —
    /// per-line entries shadow the overlay, so such a line would keep its
    /// pre-phase state. The sharded write-back guarantees this by routing
    /// every line that was seeded from a per-line entry through
    /// [`Directory::restore_line_state`] instead.
    pub(crate) fn restore_extent(&mut self, start: u64, end: u64, state: LineState) {
        debug_assert!(start < end, "empty extent restore");
        // Splice the new range over whatever overlay ranges it overlaps,
        // preserving any non-overlapped head/tail pieces.
        let first = self.overlay.partition_point(|&(_, e, _)| e <= start);
        let mut replacement: Vec<(u64, u64, LineState)> = Vec::with_capacity(3);
        let mut last = first;
        if let Some(&(s, _, st)) = self.overlay.get(first) {
            if s < start {
                replacement.push((s, start, st));
            }
        }
        replacement.push((start, end, state));
        while let Some(&(s, e, st)) = self.overlay.get(last) {
            if s >= end {
                break;
            }
            if e > end {
                replacement.push((end, e, st));
            }
            last += 1;
        }
        // Merge with equal-state neighbours to keep the overlay compact.
        self.overlay.splice(first..last, replacement);
        let idx = self.overlay.partition_point(|&(_, e, _)| e < start);
        let mut i = idx.saturating_sub(1);
        while i + 1 < self.overlay.len() {
            let (s0, e0, st0) = self.overlay[i];
            let (s1, e1, st1) = self.overlay[i + 1];
            if e0 == s1 && st0 == st1 {
                self.overlay[i] = (s0, e1, st0);
                self.overlay.remove(i + 1);
            } else if s1 > end {
                break;
            } else {
                i += 1;
            }
        }
    }

    /// Marks every line of `[start, end)` LLC-resident (extent form of
    /// [`Directory::llc_insert`]; union semantics).
    pub(crate) fn llc_insert_range(&mut self, start: u64, end: u64) {
        debug_assert!(start < end, "empty LLC range");
        let first = self.llc_ranges.partition_point(|&(_, e)| e < start);
        let mut new_start = start;
        let mut new_end = end;
        let mut last = first;
        while let Some(&(s, e)) = self.llc_ranges.get(last) {
            if s > new_end {
                break;
            }
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            last += 1;
        }
        self.llc_ranges
            .splice(first..last, std::iter::once((new_start, new_end)));
    }

    /// Overwrites a line's MESI state after a sharded phase simulated it
    /// locally (busy window cleared — every pre-phase transaction
    /// completes before any phase member starts, so the reader of
    /// [`Directory::seed_of`] never needs it).
    pub(crate) fn restore_line_state(&mut self, line: CacheLineId, state: LineState) {
        self.lines.insert(
            line,
            LineEntry {
                state,
                busy_until: 0,
            },
        );
    }

    /// The last line `core` touched, as seen by the prefetch tracker.
    pub(crate) fn last_line_for(&self, core: CoreId) -> Option<CacheLineId> {
        self.last_line.get(&core).copied()
    }

    /// Overwrites the prefetch tracker's last-line entry for `core`.
    pub(crate) fn set_last_line(&mut self, core: CoreId, line: Option<CacheLineId>) {
        match line {
            Some(line) => {
                self.last_line.insert(core, line);
            }
            None => {
                self.last_line.remove(&core);
            }
        }
    }

    /// Marks a line LLC-resident (write-back from a worker-local shard).
    pub(crate) fn llc_insert(&mut self, line: CacheLineId) {
        self.llc.insert(line);
    }

    /// Cycles an access issued at `now` would queue behind the line's
    /// in-flight transaction (0 when the line is idle or untracked).
    pub(crate) fn busy_wait(&self, line: CacheLineId, now: Cycles) -> Cycles {
        self.lines
            .get(&line)
            .map_or(0, |entry| entry.busy_until.saturating_sub(now))
    }

    /// Records an access whose outcome was precomputed outside the
    /// directory (a shard-merged L1 hit that only needed the busy-window
    /// check): counts the outcome and any queueing delay into the stats.
    pub(crate) fn record_precomputed(&mut self, outcome: AccessOutcome, wait: Cycles) {
        self.stats.record(outcome);
        self.stats.wait_cycles += wait;
    }

    /// Batch form of [`Directory::record_precomputed`] for `count` L1 hits
    /// with zero wait (a settled shard-merged hit run).
    pub(crate) fn record_hit_batch(&mut self, count: u64) {
        self.stats.l1_hits += count;
    }

    /// Absolute end of the line's in-flight transaction window (0 when the
    /// line is idle or untracked).
    pub(crate) fn busy_until_of(&self, line: CacheLineId) -> Cycles {
        self.lines.get(&line).map_or(0, |entry| entry.busy_until)
    }

    /// Adds a worker-local shard's statistics (private-line traffic
    /// simulated off the shared directory) into this directory's totals.
    pub(crate) fn absorb_stats(&mut self, stats: &CoherenceStats) {
        self.stats.absorb(stats);
    }
}

/// Whether an outcome keeps the line occupied for its duration.
pub(crate) fn occupies_line(outcome: AccessOutcome) -> bool {
    matches!(
        outcome,
        AccessOutcome::Memory
            | AccessOutcome::RemoteClean
            | AccessOutcome::RemoteDirty
            | AccessOutcome::UpgradeInvalidate
            | AccessOutcome::Prefetched
    )
}

/// Which misses the next-line prefetcher can hide.
pub(crate) fn prefetchable(outcome: AccessOutcome) -> bool {
    matches!(
        outcome,
        AccessOutcome::Memory
            | AccessOutcome::LlcHit
            | AccessOutcome::RemoteClean
            | AccessOutcome::RemoteDirty
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: CacheLineId = CacheLineId(100);
    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const C2: CoreId = CoreId(2);

    /// Test helper driving the directory with a private monotonic clock so
    /// that queueing effects don't leak into outcome assertions.
    struct Driver {
        dir: Directory,
        now: Cycles,
    }

    impl Driver {
        fn new() -> Self {
            Driver {
                dir: Directory::default(),
                now: 0,
            }
        }

        fn access(&mut self, core: CoreId, line: CacheLineId, kind: AccessKind) -> AccessOutcome {
            let result = self.dir.access(core, line, kind, self.now);
            self.now += result.latency() + 1;
            result.outcome
        }
    }

    #[test]
    fn cold_read_is_memory_then_hits() {
        let mut d = Driver::new();
        assert_eq!(d.access(C0, L, AccessKind::Read), AccessOutcome::Memory);
        assert_eq!(d.access(C0, L, AccessKind::Read), AccessOutcome::L1Hit);
        assert_eq!(d.access(C0, L, AccessKind::Write), AccessOutcome::L1Hit);
        assert_eq!(d.dir.stats().invalidations, 0);
    }

    #[test]
    fn read_after_remote_write_is_dirty_transfer() {
        let mut d = Driver::new();
        d.access(C0, L, AccessKind::Write);
        assert_eq!(
            d.access(C1, L, AccessKind::Read),
            AccessOutcome::RemoteDirty
        );
        // Both now share; further reads hit locally.
        assert_eq!(d.access(C0, L, AccessKind::Read), AccessOutcome::L1Hit);
        assert_eq!(d.access(C1, L, AccessKind::Read), AccessOutcome::L1Hit);
    }

    #[test]
    fn write_ping_pong_counts_invalidations() {
        let mut d = Driver::new();
        d.access(C0, L, AccessKind::Write); // cold
        for _ in 0..10 {
            assert_eq!(
                d.access(C1, L, AccessKind::Write),
                AccessOutcome::RemoteDirty
            );
            assert_eq!(
                d.access(C0, L, AccessKind::Write),
                AccessOutcome::RemoteDirty
            );
        }
        assert_eq!(d.dir.stats().invalidations, 20);
    }

    #[test]
    fn write_to_shared_line_invalidates_all_other_sharers() {
        let mut d = Driver::new();
        d.access(C0, L, AccessKind::Read);
        d.access(C1, L, AccessKind::Read);
        d.access(C2, L, AccessKind::Read);
        let before = d.dir.stats().invalidations;
        assert_eq!(
            d.access(C0, L, AccessKind::Write),
            AccessOutcome::UpgradeInvalidate
        );
        assert_eq!(d.dir.stats().invalidations - before, 2);
    }

    #[test]
    fn sole_sharer_upgrade_is_cheap() {
        let mut d = Driver::new();
        d.access(C0, L, AccessKind::Read); // E on C0
        d.access(C1, L, AccessKind::Read); // S{0,1}
        d.access(C1, L, AccessKind::Write); // invalidate C0 -> M(C1)
        assert_eq!(d.access(C1, L, AccessKind::Write), AccessOutcome::L1Hit);
        // C1 is now the only holder; hammering it stays local.
        assert_eq!(d.access(C1, L, AccessKind::Write), AccessOutcome::L1Hit);
    }

    #[test]
    fn exclusive_read_by_other_core_is_clean_transfer() {
        let mut d = Driver::new();
        d.access(C0, L, AccessKind::Read); // E on C0
        assert_eq!(
            d.access(C1, L, AccessKind::Read),
            AccessOutcome::RemoteClean
        );
    }

    #[test]
    fn untouched_lines_miss_to_memory() {
        let mut d = Driver::new();
        d.access(C0, L, AccessKind::Read);
        d.access(C0, CacheLineId(200), AccessKind::Read);
        assert_eq!(
            d.access(C1, CacheLineId(300), AccessKind::Read),
            AccessOutcome::Memory
        );
    }

    #[test]
    fn sharer_set_operations() {
        let mut set = SharerSet::empty();
        assert!(set.is_empty());
        set.insert(CoreId(3));
        set.insert(CoreId(63));
        assert!(set.contains(CoreId(3)));
        assert!(set.contains(CoreId(63)));
        assert!(!set.contains(CoreId(4)));
        assert_eq!(set.len(), 2);
        let cores: Vec<_> = set.iter().collect();
        assert_eq!(cores, vec![CoreId(3), CoreId(63)]);
    }

    #[test]
    fn stats_outcome_counters_accumulate() {
        let mut d = Driver::new();
        d.access(C0, L, AccessKind::Write);
        d.access(C1, L, AccessKind::Write);
        d.access(C1, L, AccessKind::Write);
        let stats = d.dir.stats();
        assert_eq!(stats.total_accesses(), 3);
        assert_eq!(stats.memory, 1);
        assert_eq!(stats.remote_dirty, 1);
        assert_eq!(stats.l1_hits, 1);
    }

    #[test]
    fn same_core_threads_do_not_ping_pong() {
        // Two "threads" mapped onto the same core share the private cache:
        // no coherence traffic. This mirrors the paper's over-subscription
        // discussion (§2, Assumption 1).
        let mut d = Driver::new();
        d.access(C0, L, AccessKind::Write);
        for _ in 0..10 {
            assert_eq!(d.access(C0, L, AccessKind::Write), AccessOutcome::L1Hit);
        }
        assert_eq!(d.dir.stats().invalidations, 0);
    }

    #[test]
    fn concurrent_request_queues_behind_busy_line() {
        let mut dir = Directory::default();
        let lat = LatencyModel::default();
        dir.access(C0, L, AccessKind::Write, 0); // cold fill, busy until `memory`
                                                 // C1 requests 10 cycles in: must wait out the remaining fill.
        let result = dir.access(C1, L, AccessKind::Write, 10);
        assert_eq!(result.outcome, AccessOutcome::RemoteDirty);
        assert_eq!(result.wait, lat.memory - 10);
        assert_eq!(result.latency(), lat.memory - 10 + lat.remote_dirty);
        assert_eq!(dir.stats().wait_cycles, lat.memory - 10);
    }

    #[test]
    fn queued_transactions_serialise() {
        let mut dir = Directory::default();
        let lat = LatencyModel::default();
        dir.access(C0, L, AccessKind::Write, 0);
        let first = dir.access(C1, L, AccessKind::Write, 0);
        let second = dir.access(C2, L, AccessKind::Write, 0);
        // The second steal queues behind cold fill + first steal.
        assert_eq!(first.wait, lat.memory);
        assert_eq!(second.wait, lat.memory + lat.remote_dirty);
    }

    #[test]
    fn hits_do_not_extend_busy_window() {
        let mut dir = Directory::default();
        let lat = LatencyModel::default();
        dir.access(C0, L, AccessKind::Write, 0);
        // Hit by owner after the fill completes: no wait, no new busy.
        let hit = dir.access(C0, L, AccessKind::Write, lat.memory);
        assert_eq!(hit.outcome, AccessOutcome::L1Hit);
        assert_eq!(hit.wait, 0);
        let next = dir.access(C1, L, AccessKind::Read, lat.memory + 1);
        assert_eq!(next.wait, 0);
    }

    #[test]
    fn overlay_seeds_and_per_line_entries_shadow_it() {
        let mut dir = Directory::default();
        dir.restore_extent(10, 20, LineState::Exclusive(C0));
        // Overlay-covered lines seed without per-line provenance.
        assert_eq!(
            dir.seed_of(CacheLineId(15)),
            (Some(LineState::Exclusive(C0)), false)
        );
        assert_eq!(dir.seed_of(CacheLineId(9)), (None, false));
        assert_eq!(dir.seed_of(CacheLineId(20)), (None, false));
        // An access through the directory materialises a per-line entry,
        // which shadows the overlay from then on.
        let result = dir.access(C1, CacheLineId(15), AccessKind::Read, 0);
        assert_eq!(result.outcome, AccessOutcome::RemoteClean);
        let (state, from_map) = dir.seed_of(CacheLineId(15));
        assert!(from_map);
        assert!(matches!(state, Some(LineState::Shared(_))));
        // Untouched neighbours still read from the overlay.
        assert_eq!(
            dir.seed_of(CacheLineId(16)),
            (Some(LineState::Exclusive(C0)), false)
        );
    }

    #[test]
    fn overlay_splice_replaces_overlaps_and_keeps_tails() {
        let mut dir = Directory::default();
        dir.restore_extent(10, 30, LineState::Exclusive(C0));
        dir.restore_extent(15, 20, LineState::Modified(C1));
        for (line, expect) in [
            (10, LineState::Exclusive(C0)),
            (14, LineState::Exclusive(C0)),
            (15, LineState::Modified(C1)),
            (19, LineState::Modified(C1)),
            (20, LineState::Exclusive(C0)),
            (29, LineState::Exclusive(C0)),
        ] {
            assert_eq!(
                dir.seed_of(CacheLineId(line)),
                (Some(expect), false),
                "line {line}"
            );
        }
        // A restore spanning several existing ranges replaces them all.
        dir.restore_extent(12, 25, LineState::Exclusive(C2));
        assert_eq!(
            dir.seed_of(CacheLineId(18)),
            (Some(LineState::Exclusive(C2)), false)
        );
        assert_eq!(
            dir.seed_of(CacheLineId(25)),
            (Some(LineState::Exclusive(C0)), false)
        );
    }

    #[test]
    fn overlay_busy_window_is_clear() {
        let mut dir = Directory::default();
        dir.restore_extent(5, 8, LineState::Modified(C0));
        assert_eq!(dir.busy_wait(CacheLineId(6), 0), 0);
        assert_eq!(dir.busy_until_of(CacheLineId(6)), 0);
    }

    #[test]
    fn llc_ranges_union_with_per_line_set() {
        let mut dir = Directory::default();
        dir.llc_insert_range(100, 200);
        dir.llc_insert(CacheLineId(500));
        assert!(dir.llc_resident(CacheLineId(100)));
        assert!(dir.llc_resident(CacheLineId(199)));
        assert!(!dir.llc_resident(CacheLineId(200)));
        assert!(dir.llc_resident(CacheLineId(500)));
        // Overlapping and touching inserts merge.
        dir.llc_insert_range(150, 250);
        dir.llc_insert_range(250, 300);
        assert!(dir.llc_resident(CacheLineId(299)));
        assert_eq!(dir.llc_ranges.len(), 1);
        // A cold read of an LLC-range line is an LLC refill, not memory.
        let result = dir.access(C0, CacheLineId(120), AccessKind::Read, 0);
        assert_eq!(result.outcome, AccessOutcome::LlcHit);
    }

    #[test]
    fn tracked_lines_counts_overlay_without_double_counting() {
        let mut dir = Directory::default();
        dir.restore_extent(0, 10, LineState::Exclusive(C0));
        assert_eq!(dir.tracked_lines(), 10);
        // Materialise one overlaid line into the per-line map.
        dir.access(C1, CacheLineId(3), AccessKind::Read, 0);
        assert_eq!(dir.tracked_lines(), 10);
        dir.access(C1, CacheLineId(50), AccessKind::Read, 0);
        assert_eq!(dir.tracked_lines(), 11);
    }

    #[test]
    fn idle_line_has_no_wait() {
        let mut dir = Directory::default();
        dir.access(C0, L, AccessKind::Write, 0);
        // Long after the transaction: no queueing.
        let result = dir.access(C1, L, AccessKind::Write, 1_000_000);
        assert_eq!(result.wait, 0);
    }
}
