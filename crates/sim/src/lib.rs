//! # cheetah-sim — deterministic multicore execution simulator
//!
//! The hardware substrate for the [Cheetah (CGO 2016)] reproduction. The
//! paper evaluates on a 48-core AMD Opteron whose coherence fabric makes
//! false sharing expensive; this crate reproduces that environment as a
//! deterministic simulator:
//!
//! * a MESI coherence [`Directory`] with per-core private caches and a
//!   shared last-level cache ([`coherence`]),
//! * a flat, configurable [`LatencyModel`] in which dirty cache-to-cache
//!   transfers dominate local hits ([`latency`]),
//! * a discrete-event execution engine ([`Machine`]) that interleaves the
//!   threads of a fork-join [`Program`] in exact global time order,
//! * an [`ExecObserver`] hook through which profilers (the PMU layer)
//!   watch every access and charge measurement perturbation back into
//!   simulated time.
//!
//! Everything is deterministic: the same program yields bit-identical
//! [`RunReport`]s, which is what makes "predicted vs. real speedup"
//! experiments crisp.
//!
//! ## Example: measuring a false-sharing slowdown
//!
//! ```
//! use cheetah_sim::{Addr, LoopStream, Machine, MachineConfig, NullObserver,
//!                   Op, ProgramBuilder, ThreadSpec};
//!
//! let machine = Machine::new(MachineConfig::with_cores(8));
//! let build = |stride: u64| {
//!     ProgramBuilder::new("demo")
//!         .parallel((0..2u64).map(|t| {
//!             let addr = Addr(0x4000_0000 + t * stride);
//!             ThreadSpec::new(
//!                 format!("worker-{t}"),
//!                 LoopStream::new(vec![Op::Read(addr), Op::Write(addr)], 1_000),
//!             )
//!         }).collect())
//!         .build()
//! };
//! let shared = machine.run(build(4), &mut NullObserver);   // same line
//! let padded = machine.run(build(64), &mut NullObserver);  // separate lines
//! assert!(shared.total_cycles > padded.total_cycles);
//! ```
//!
//! [Cheetah (CGO 2016)]: https://doi.org/10.1145/2854038.2854039

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coherence;
pub mod exec;
pub(crate) mod extent;
pub mod footprint;
pub mod latency;
pub mod layout;
pub mod metrics;
pub mod observer;
pub mod program;
pub mod report;
pub mod schedule;
pub mod shard;
pub mod stats;
pub mod types;
pub mod util;

pub use cheetah_obs::ObsHandle;
pub use coherence::{Directory, SharerSet, MAX_CORES};
pub use exec::{ConfigError, Machine, MachineConfig, OBS_LANE_ENGINE};
pub use footprint::{ByteExtent, Footprint, FootprintBuilder};
pub use latency::{AccessOutcome, LatencyModel};
pub use layout::{LayoutError, LayoutMap, Remapping};
pub use metrics::ExecMetrics;
pub use observer::{
    AccessRecord, CountingObserver, ExecObserver, NullObserver, SampleJudgement, SamplerFork,
    ThreadSampler,
};
pub use program::{
    AccessStream, IterStream, LoopStream, Op, OpsStream, Phase, Program, ProgramBuilder, ThreadSpec,
};
pub use report::{PhaseReport, RunReport, ThreadReport};
pub use schedule::SchedulePolicy;
pub use stats::CoherenceStats;
pub use types::{AccessKind, Addr, CacheLineId, CoreId, Cycles, PhaseKind, ThreadId, WORD_BYTES};
