//! Hooks through which profilers observe a simulated execution.
//!
//! The execution engine invokes an [`ExecObserver`] for every thread
//! lifecycle event, phase boundary and memory access. Observer callbacks may
//! return *perturbation cycles* that the engine charges to the affected
//! thread — this is how the PMU layer models its sampling trap cost and
//! per-thread counter-setup cost, making profiler overhead (Fig. 4 of the
//! paper) measurable in simulated time.

use crate::latency::AccessOutcome;
use crate::types::{AccessKind, Addr, CoreId, Cycles, PhaseKind, ThreadId};

/// Full description of one executed memory access, as seen by observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRecord {
    /// Issuing thread.
    pub thread: ThreadId,
    /// Core the thread runs on.
    pub core: CoreId,
    /// Accessed byte address.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// How the memory system satisfied the access.
    pub outcome: AccessOutcome,
    /// Latency charged for the access, in cycles.
    pub latency: Cycles,
    /// Global virtual time at which the access started.
    pub start: Cycles,
    /// Instructions the thread had retired *before* this access (the access
    /// itself retires one more). Samplers use this as the IBS/PEBS retired
    /// micro-op counter.
    pub instrs_before: u64,
    /// Index of the enclosing phase within the program.
    pub phase_index: u32,
    /// Whether the access happened in a serial or parallel phase.
    pub phase_kind: PhaseKind,
}

/// Verdict of a [`ThreadSampler`] for one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleJudgement {
    /// Perturbation cycles to charge to the thread at this access — trap
    /// costs of sampling tags that landed on or before it, exactly as the
    /// observer's `on_access` would have returned for the same access.
    pub perturbation: Cycles,
    /// Whether the access is sampled: sharded execution must surface it to
    /// the observer through `on_access`, in merged global order.
    pub sampled: bool,
}

/// A deterministic per-thread replica of an observer's sampling decision,
/// used by sharded execution (see [`crate::MachineConfig::shards`]).
///
/// The sharded engine precomputes each worker's events on a host thread,
/// where the shared observer cannot be consulted. An observer whose
/// sampling decision is a pure function of the thread's retired-instruction
/// index (like an IBS/PEBS model) can hand out a replica per thread; the
/// precompute pass calls [`ThreadSampler::judge`] for every access, in the
/// thread's program order, and the engine then invokes `on_access` only for
/// the accesses judged `sampled` — in exact merged order, so downstream
/// consumers (detectors) observe the identical sample stream.
///
/// # Contract
///
/// For the run to be bit-identical to unsharded execution the replica must
/// agree with the observer: judging every access of a thread in order must
/// mark exactly the accesses the observer would sample, and report exactly
/// the perturbation its `on_access` would return at each access. When a
/// replica is handed out, the engine charges the replica's perturbation and
/// *ignores* the value returned by `on_access` for surfaced accesses (the
/// observer may account trap costs at a coarser granularity internally —
/// totals still match because every tag is charged exactly once).
pub trait ThreadSampler: Send {
    /// Judges the access occupying retired-instruction index
    /// `instrs_before` (the value [`AccessRecord::instrs_before`] would
    /// carry). Called for accesses in program order; the engine may skip
    /// the call for accesses below [`ThreadSampler::next_tag`], treating
    /// them as unsampled and unperturbed.
    fn judge(&mut self, instrs_before: u64) -> SampleJudgement;

    /// Optimization hint: the smallest instruction index whose judgement
    /// could be non-trivial. The engine promises to call
    /// [`ThreadSampler::judge`] for every access with
    /// `instrs_before >= next_tag()` and may skip earlier accesses, whose
    /// judgement must be `(perturbation: 0, sampled: false)`. The default
    /// (`0`) keeps every access judged.
    fn next_tag(&self) -> u64 {
        0
    }
}

/// How an observer participates in sharded execution; returned by
/// [`ExecObserver::fork_sampler`].
pub enum SamplerFork {
    /// The observer needs to see every access through `on_access` (the
    /// conservative default): sharding still parallelizes event
    /// precomputation, but every access is surfaced in merged order and the
    /// observer's returned perturbation is used as-is.
    EveryAccess,
    /// The observer ignores accesses entirely and never perturbs
    /// ([`NullObserver`]): no access needs surfacing.
    Transparent,
    /// The observer's sampling decision for this thread is replicated by
    /// the given deterministic judge; only judged-sampled accesses are
    /// surfaced.
    Replica(Box<dyn ThreadSampler>),
}

impl std::fmt::Debug for SamplerFork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplerFork::EveryAccess => f.write_str("SamplerFork::EveryAccess"),
            SamplerFork::Transparent => f.write_str("SamplerFork::Transparent"),
            SamplerFork::Replica(_) => f.write_str("SamplerFork::Replica(..)"),
        }
    }
}

/// Observer of a simulated execution.
///
/// All methods have no-op defaults so implementors override only what they
/// need. Methods returning [`Cycles`] report *extra* cycles the engine must
/// charge to the thread in question (profiling perturbation); return `0` for
/// a transparent observer.
pub trait ExecObserver {
    /// Called when a thread starts (including the main thread at time 0).
    /// The returned cycles model per-thread profiler setup cost (e.g.
    /// programming PMU registers) and delay the thread's first instruction.
    fn on_thread_start(&mut self, thread: ThreadId, name: &str, now: Cycles) -> Cycles {
        let _ = (thread, name, now);
        0
    }

    /// Called when a thread finishes its stream.
    fn on_thread_exit(&mut self, thread: ThreadId, now: Cycles) {
        let _ = (thread, now);
    }

    /// Called at each phase start.
    fn on_phase_start(&mut self, index: u32, kind: PhaseKind, now: Cycles) {
        let _ = (index, kind, now);
    }

    /// Called at each phase end.
    fn on_phase_end(&mut self, index: u32, kind: PhaseKind, now: Cycles) {
        let _ = (index, kind, now);
    }

    /// Called after every memory access. The returned cycles model the cost
    /// of a sampling interrupt delivered to the thread (0 when the access
    /// was not sampled).
    fn on_access(&mut self, record: &AccessRecord) -> Cycles {
        let _ = record;
        0
    }

    /// Hands sharded execution a per-thread sampling replica (see
    /// [`ThreadSampler`]). Called at each phase start for every phase
    /// member (right after the phase's `on_thread_start` callbacks for
    /// spawned workers; for the main thread of a serial phase it may be
    /// called repeatedly, and the replica must continue from the thread's
    /// *current* sampling state). The default keeps the observer fully
    /// informed ([`SamplerFork::EveryAccess`]), which is always correct;
    /// observers with a replicable sampling decision should return
    /// [`SamplerFork::Replica`] so sharded runs skip the per-access
    /// callback for unsampled accesses.
    fn fork_sampler(&mut self, thread: ThreadId) -> SamplerFork {
        let _ = thread;
        SamplerFork::EveryAccess
    }
}

/// The transparent observer: observes nothing, perturbs nothing.
///
/// Useful as the baseline ("pthreads") configuration when measuring profiler
/// overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl ExecObserver for NullObserver {
    fn fork_sampler(&mut self, _thread: ThreadId) -> SamplerFork {
        SamplerFork::Transparent
    }
}

/// An observer that simply counts events; handy in tests and as a cheap
/// sanity probe.
#[derive(Debug, Clone, Default)]
pub struct CountingObserver {
    /// Number of thread starts seen (including main).
    pub thread_starts: u64,
    /// Number of thread exits seen.
    pub thread_exits: u64,
    /// Number of phase starts seen.
    pub phase_starts: u64,
    /// Number of phase ends seen.
    pub phase_ends: u64,
    /// Number of accesses seen.
    pub accesses: u64,
    /// Number of write accesses seen.
    pub writes: u64,
}

impl ExecObserver for CountingObserver {
    fn on_thread_start(&mut self, _thread: ThreadId, _name: &str, _now: Cycles) -> Cycles {
        self.thread_starts += 1;
        0
    }

    fn on_thread_exit(&mut self, _thread: ThreadId, _now: Cycles) {
        self.thread_exits += 1;
    }

    fn on_phase_start(&mut self, _index: u32, _kind: PhaseKind, _now: Cycles) {
        self.phase_starts += 1;
    }

    fn on_phase_end(&mut self, _index: u32, _kind: PhaseKind, _now: Cycles) {
        self.phase_ends += 1;
    }

    fn on_access(&mut self, record: &AccessRecord) -> Cycles {
        self.accesses += 1;
        if record.kind.is_write() {
            self.writes += 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_returns_zero_perturbation() {
        let mut observer = NullObserver;
        assert_eq!(observer.on_thread_start(ThreadId(1), "w", 10), 0);
        let record = AccessRecord {
            thread: ThreadId(1),
            core: CoreId(0),
            addr: Addr(0x40),
            kind: AccessKind::Read,
            outcome: AccessOutcome::L1Hit,
            latency: 4,
            start: 10,
            instrs_before: 0,
            phase_index: 0,
            phase_kind: PhaseKind::Serial,
        };
        assert_eq!(observer.on_access(&record), 0);
    }

    #[test]
    fn counting_observer_counts() {
        let mut observer = CountingObserver::default();
        observer.on_thread_start(ThreadId(0), "main", 0);
        observer.on_phase_start(0, PhaseKind::Serial, 0);
        let record = AccessRecord {
            thread: ThreadId(0),
            core: CoreId(0),
            addr: Addr(0x40),
            kind: AccessKind::Write,
            outcome: AccessOutcome::Memory,
            latency: 220,
            start: 0,
            instrs_before: 0,
            phase_index: 0,
            phase_kind: PhaseKind::Serial,
        };
        observer.on_access(&record);
        observer.on_phase_end(0, PhaseKind::Serial, 100);
        observer.on_thread_exit(ThreadId(0), 100);
        assert_eq!(observer.thread_starts, 1);
        assert_eq!(observer.accesses, 1);
        assert_eq!(observer.writes, 1);
        assert_eq!(observer.phase_starts, 1);
        assert_eq!(observer.phase_ends, 1);
        assert_eq!(observer.thread_exits, 1);
    }
}
