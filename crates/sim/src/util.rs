//! Small internal utilities: a fast, deterministic hasher for the hot
//! directory lookups.
//!
//! The simulator performs one hash-map lookup per memory access, so the
//! default SipHash would dominate the run time. Keys are cache-line ids and
//! addresses (already well distributed), so a Fibonacci multiply-xor hash is
//! both fast and collision-resistant enough. Determinism also matters: the
//! std `RandomState` would make iteration order differ between runs, and
//! although the simulator never iterates maps for ordering, a fixed hasher
//! removes the temptation entirely.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher64`]; used for all per-line simulator state.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher64>>;

/// A `HashSet` using [`FxHasher64`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher64>>;

/// Multiply-xor hasher specialised for integer-like keys.
///
/// Not cryptographic; do not expose to untrusted input. All keys hashed with
/// it inside this workspace are internally generated ids.
#[derive(Debug, Default, Clone)]
pub struct FxHasher64 {
    state: u64,
}

/// 2^64 / phi, the canonical Fibonacci hashing constant.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl FxHasher64 {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.mix(value);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.mix(u64::from(value));
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.mix(value as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(value: T) -> u64 {
        let mut hasher = FxHasher64::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("abc"), hash_one("abc"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Sequential line ids (the common key distribution) must not collide.
        let hashes: FastSet<u64> = (0u64..10_000).map(hash_one).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn map_smoke() {
        let mut map: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000 {
            map.insert(i, (i * 2) as u32);
        }
        assert_eq!(map.get(&500), Some(&1000));
        assert_eq!(map.len(), 1000);
    }
}
