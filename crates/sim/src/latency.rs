//! The machine's memory latency model.
//!
//! Every simulated access resolves to an [`AccessOutcome`] (decided by the
//! coherence directory) which the [`LatencyModel`] converts into cycles.
//! Defaults approximate the paper's evaluation machine — a 1.6 GHz AMD
//! Opteron with private L1/L2, a shared L3 and an inter-socket coherence
//! fabric — at the granularity that matters for false sharing: a coherence
//! miss is an order of magnitude more expensive than a local hit.

use crate::types::Cycles;

/// How an access was satisfied by the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// Hit in the issuing core's private cache.
    L1Hit,
    /// Served by the shared last-level cache.
    LlcHit,
    /// Cold miss served by main memory.
    Memory,
    /// Line transferred from another core's private cache in clean state.
    RemoteClean,
    /// Line transferred from another core's private cache in Modified state
    /// (dirty transfer — the expensive case behind false sharing).
    RemoteDirty,
    /// Write upgrade on a line this core already held as the only sharer.
    UpgradeSole,
    /// Write upgrade that had to invalidate copies in other cores.
    UpgradeInvalidate,
    /// A miss on the next sequential line, hidden by the hardware
    /// prefetcher. The coherence transaction still happened (state
    /// transitions and invalidation counts are identical); only the
    /// *visible* latency is small. This is what keeps streaming
    /// initialisation and scan phases cheap on real machines, and it is why
    /// serial-phase sampled latencies approximate post-fix latencies
    /// (the paper's `AverCycles_serial` heuristic, §3.1).
    Prefetched,
}

impl AccessOutcome {
    /// Whether this outcome involved a coherence transaction with another
    /// core (remote transfer or invalidation), i.e. the traffic class false
    /// sharing inflates.
    pub fn is_coherence(self) -> bool {
        matches!(
            self,
            AccessOutcome::RemoteClean
                | AccessOutcome::RemoteDirty
                | AccessOutcome::UpgradeInvalidate
        )
    }
}

/// Cycle costs per [`AccessOutcome`], plus the base pipeline costs.
///
/// The model is intentionally flat (no queuing or bandwidth contention): the
/// detector only needs relative latencies — coherence misses must dominate
/// local hits — and a flat model keeps every experiment deterministic.
///
/// ```
/// use cheetah_sim::{AccessOutcome, LatencyModel};
/// let m = LatencyModel::default();
/// assert!(m.cost(AccessOutcome::RemoteDirty) > 10 * m.cost(AccessOutcome::L1Hit));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyModel {
    /// Private-cache hit.
    pub l1_hit: Cycles,
    /// Shared LLC hit.
    pub llc_hit: Cycles,
    /// Main-memory access (cold miss).
    pub memory: Cycles,
    /// Cache-to-cache transfer of a clean line.
    pub remote_clean: Cycles,
    /// Cache-to-cache transfer of a dirty line.
    pub remote_dirty: Cycles,
    /// Write upgrade when the writer is the sole sharer.
    pub upgrade_sole: Cycles,
    /// Write upgrade that invalidates other sharers.
    pub upgrade_invalidate: Cycles,
    /// Sequential miss hidden by the hardware prefetcher.
    pub prefetched: Cycles,
    /// Cycles retired per non-memory instruction (pure compute).
    pub cycles_per_instruction: Cycles,
}

impl LatencyModel {
    /// Cycle cost of an access outcome.
    pub fn cost(&self, outcome: AccessOutcome) -> Cycles {
        match outcome {
            AccessOutcome::L1Hit => self.l1_hit,
            AccessOutcome::LlcHit => self.llc_hit,
            AccessOutcome::Memory => self.memory,
            AccessOutcome::RemoteClean => self.remote_clean,
            AccessOutcome::RemoteDirty => self.remote_dirty,
            AccessOutcome::UpgradeSole => self.upgrade_sole,
            AccessOutcome::UpgradeInvalidate => self.upgrade_invalidate,
            AccessOutcome::Prefetched => self.prefetched,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            l1_hit: 4,
            llc_hit: 40,
            memory: 220,
            remote_clean: 90,
            remote_dirty: 150,
            upgrade_sole: 10,
            upgrade_invalidate: 120,
            prefetched: 10,
            cycles_per_instruction: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_order_coherence_above_hits() {
        let m = LatencyModel::default();
        assert!(m.l1_hit < m.llc_hit);
        assert!(m.llc_hit < m.remote_clean);
        assert!(m.remote_clean < m.remote_dirty);
        assert!(m.upgrade_sole < m.upgrade_invalidate);
        assert!(m.l1_hit < m.memory);
    }

    #[test]
    fn cost_matches_fields() {
        let m = LatencyModel::default();
        assert_eq!(m.cost(AccessOutcome::L1Hit), m.l1_hit);
        assert_eq!(m.cost(AccessOutcome::LlcHit), m.llc_hit);
        assert_eq!(m.cost(AccessOutcome::Memory), m.memory);
        assert_eq!(m.cost(AccessOutcome::RemoteClean), m.remote_clean);
        assert_eq!(m.cost(AccessOutcome::RemoteDirty), m.remote_dirty);
        assert_eq!(m.cost(AccessOutcome::UpgradeSole), m.upgrade_sole);
        assert_eq!(
            m.cost(AccessOutcome::UpgradeInvalidate),
            m.upgrade_invalidate
        );
        assert_eq!(m.cost(AccessOutcome::Prefetched), m.prefetched);
    }

    #[test]
    fn coherence_classification() {
        assert!(AccessOutcome::RemoteDirty.is_coherence());
        assert!(AccessOutcome::RemoteClean.is_coherence());
        assert!(AccessOutcome::UpgradeInvalidate.is_coherence());
        assert!(!AccessOutcome::L1Hit.is_coherence());
        assert!(!AccessOutcome::LlcHit.is_coherence());
        assert!(!AccessOutcome::Memory.is_coherence());
        assert!(!AccessOutcome::UpgradeSole.is_coherence());
        assert!(!AccessOutcome::Prefetched.is_coherence());
    }
}
