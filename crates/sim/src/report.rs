//! Results of a simulated run.

use crate::stats::CoherenceStats;
use crate::types::{Cycles, PhaseKind, ThreadId};
use std::fmt;

/// Timing of one phase of the executed program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseReport {
    /// Index of the phase within the program.
    pub index: u32,
    /// Serial or parallel.
    pub kind: PhaseKind,
    /// Global time the phase started.
    pub start: Cycles,
    /// Global time the phase ended (all member threads joined).
    pub end: Cycles,
    /// Threads that ran in this phase (the main thread for serial phases).
    pub threads: Vec<ThreadId>,
}

impl PhaseReport {
    /// Phase duration in cycles.
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }
}

/// Timing and traffic of one simulated thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadReport {
    /// Thread id (0 = main).
    pub id: ThreadId,
    /// Name from the [`crate::ThreadSpec`] (main thread: `"main"`).
    pub name: String,
    /// Phase the thread ran in. The main thread reports the whole program
    /// span and `phase_index` of 0.
    pub phase_index: u32,
    /// Global time the thread started executing (after spawn + setup costs).
    pub start: Cycles,
    /// Global time the thread retired its last instruction.
    pub end: Cycles,
    /// Instructions retired.
    pub instructions: u64,
    /// Loads issued.
    pub reads: u64,
    /// Stores issued.
    pub writes: u64,
}

impl ThreadReport {
    /// Wall-clock runtime of the thread (what RDTSC around the start routine
    /// measures in the paper).
    pub fn runtime(&self) -> Cycles {
        self.end - self.start
    }

    /// Total memory accesses issued.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Complete result of simulating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Program name.
    pub program: String,
    /// Global time at which the last phase ended: the application runtime.
    pub total_cycles: Cycles,
    /// Per-phase timings, in program order.
    pub phases: Vec<PhaseReport>,
    /// Per-thread timings. Index 0 is always the main thread; child threads
    /// follow in spawn order.
    pub threads: Vec<ThreadReport>,
    /// Machine-level coherence statistics.
    pub coherence: CoherenceStats,
}

impl RunReport {
    /// The report of a single thread, if it exists.
    pub fn thread(&self, id: ThreadId) -> Option<&ThreadReport> {
        self.threads.iter().find(|t| t.id == id)
    }

    /// Sum of all parallel-phase durations.
    pub fn parallel_cycles(&self) -> Cycles {
        self.phases
            .iter()
            .filter(|p| p.kind == PhaseKind::Parallel)
            .map(PhaseReport::duration)
            .sum()
    }

    /// Sum of all serial-phase durations.
    pub fn serial_cycles(&self) -> Cycles {
        self.phases
            .iter()
            .filter(|p| p.kind == PhaseKind::Serial)
            .map(PhaseReport::duration)
            .sum()
    }

    /// Total memory accesses across all threads.
    pub fn total_accesses(&self) -> u64 {
        self.threads.iter().map(ThreadReport::accesses).sum()
    }

    /// Speedup of this run relative to another run of the same program
    /// (`other.total_cycles / self.total_cycles`); >1 means this run is
    /// faster.
    ///
    /// # Panics
    ///
    /// Panics if this run has zero total cycles, which only a degenerate
    /// empty program can produce.
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        assert!(self.total_cycles > 0, "run has zero cycles");
        other.total_cycles as f64 / self.total_cycles as f64
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program {:?}: {} cycles, {} phases, {} threads",
            self.program,
            self.total_cycles,
            self.phases.len(),
            self.threads.len()
        )?;
        for phase in &self.phases {
            writeln!(
                f,
                "  phase {} ({}): {}..{} ({} cycles, {} threads)",
                phase.index,
                phase.kind,
                phase.start,
                phase.end,
                phase.duration(),
                phase.threads.len()
            )?;
        }
        write!(f, "  coherence: {}", self.coherence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            program: "test".into(),
            total_cycles: 1000,
            phases: vec![
                PhaseReport {
                    index: 0,
                    kind: PhaseKind::Serial,
                    start: 0,
                    end: 200,
                    threads: vec![ThreadId(0)],
                },
                PhaseReport {
                    index: 1,
                    kind: PhaseKind::Parallel,
                    start: 200,
                    end: 1000,
                    threads: vec![ThreadId(1), ThreadId(2)],
                },
            ],
            threads: vec![
                ThreadReport {
                    id: ThreadId(0),
                    name: "main".into(),
                    phase_index: 0,
                    start: 0,
                    end: 1000,
                    instructions: 100,
                    reads: 10,
                    writes: 5,
                },
                ThreadReport {
                    id: ThreadId(1),
                    name: "w0".into(),
                    phase_index: 1,
                    start: 210,
                    end: 900,
                    instructions: 500,
                    reads: 100,
                    writes: 50,
                },
            ],
            coherence: CoherenceStats::default(),
        }
    }

    #[test]
    fn durations_and_sums() {
        let report = sample_report();
        assert_eq!(report.serial_cycles(), 200);
        assert_eq!(report.parallel_cycles(), 800);
        assert_eq!(report.total_accesses(), 165);
        assert_eq!(report.thread(ThreadId(1)).unwrap().runtime(), 690);
        assert!(report.thread(ThreadId(9)).is_none());
    }

    #[test]
    fn speedup_is_ratio_of_cycles() {
        let fast = sample_report();
        let mut slow = sample_report();
        slow.total_cycles = 2000;
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_program_and_phases() {
        let text = sample_report().to_string();
        assert!(text.contains("test"));
        assert!(text.contains("phase 0"));
        assert!(text.contains("phase 1"));
    }
}
