//! Properties of sharded deterministic execution (`MachineConfig::shards`):
//!
//! (a) for random workloads, machine shapes and shard counts, the
//!     [`RunReport`] is bit-identical to the 1-shard (classic) run;
//! (b) the merged event stream — every access surfaced to an observer, in
//!     order, with all fields — is bit-identical to the classic stream;
//! (c) the replica sampling path (only sampled accesses surfaced) yields
//!     the identical sample sequence and identical perturbed timings;
//! (d) oversubscribed phases (more workers than cores) fall back to the
//!     classic loop and still match.

use cheetah_sim::{
    AccessKind, AccessRecord, AccessStream, Addr, CountingObserver, Cycles, ExecObserver,
    Footprint, LoopStream, Machine, MachineConfig, NullObserver, Op, OpsStream, Program,
    ProgramBuilder, RunReport, SampleJudgement, SamplerFork, ThreadId, ThreadSampler, ThreadSpec,
};
use proptest::prelude::*;

/// Wrapper hiding a stream's declared footprint, forcing the sharded
/// executor onto the per-line materialisation fallback. Comparing runs
/// with and without it proves extent classification and per-line
/// classification are interchangeable.
struct HiddenFootprint<S>(S);

impl<S: AccessStream> AccessStream for HiddenFootprint<S> {
    fn next_op(&mut self) -> Option<Op> {
        self.0.next_op()
    }

    fn footprint(&self) -> Footprint {
        Footprint::Unknown
    }
}

/// Workload shape: a serial init phase plus one or two parallel phases
/// whose threads mix four traffic classes — thread-private lines, a
/// read-only shared table, a falsely-shared line of adjacent words, and a
/// sequential sweep (exercising the prefetch path).
#[derive(Debug, Clone)]
struct Shape {
    threads: u64,
    cores: u32,
    iterations: u64,
    private_stride: u64,
    work: u64,
    second_phase: bool,
    serial_init: bool,
}

fn build_program(shape: &Shape) -> Program {
    build_program_with(shape, false)
}

/// Builds the shape's program; with `hide`, every stream's footprint is
/// masked so classification falls back to per-line materialisation.
fn build_program_with(shape: &Shape, hide: bool) -> Program {
    let Shape {
        threads,
        iterations,
        private_stride,
        work,
        second_phase,
        serial_init,
        ..
    } = *shape;
    let shared_line = Addr(0x1000);
    let read_table = Addr(0x8000);
    let private_base = Addr(0x100_000);
    let sweep_base = Addr(0x900_000);
    let stream_base = Addr(0xA00_000);

    fn spec(name: String, stream: impl AccessStream + 'static, hide: bool) -> ThreadSpec {
        if hide {
            ThreadSpec::new(name, HiddenFootprint(stream))
        } else {
            ThreadSpec::new(name, stream)
        }
    }

    let make_workers = |phase: u64| -> Vec<ThreadSpec> {
        let mut workers: Vec<ThreadSpec> = (0..threads)
            .map(|t| {
                let body = vec![
                    // Contended: adjacent words of one line (false sharing).
                    Op::Write(shared_line.offset(t * 4)),
                    Op::Read(shared_line.offset(((t + 1) % threads) * 4)),
                    // Read-only shared table (several lines).
                    Op::Read(read_table.offset((t % 4) * 64)),
                    Op::Read(read_table.offset(((t + phase) % 4) * 64)),
                    // Private accumulator.
                    Op::Write(private_base.offset(t * private_stride)),
                    Op::Read(private_base.offset(t * private_stride + 8)),
                    // Sequential sweep chunk (prefetchable strides).
                    Op::Read(sweep_base.offset(t * 4096 + (phase % 7) * 64)),
                    Op::Read(sweep_base.offset(t * 4096 + (phase % 7) * 64 + 64)),
                    Op::Work(work),
                ];
                spec(
                    format!("w{phase}-{t}"),
                    LoopStream::new(body, iterations + t),
                    hide,
                )
            })
            .collect();
        // A one-shot streaming worker with a declared footprint (the
        // extent table's fast path) ...
        let sweep: Vec<Op> = (0..iterations * 8)
            .map(|i| {
                let addr = stream_base.offset(phase * 0x10_000 + i * 8);
                if i % 3 == 0 {
                    Op::Write(addr)
                } else {
                    Op::Read(addr)
                }
            })
            .collect();
        workers.push(spec(format!("stream{phase}"), OpsStream::new(sweep), hide));
        // ... next to a worker whose stream cannot declare one (the
        // per-line materialisation fallback), in the same phase.
        let unhinted = cheetah_sim::IterStream::new(
            (0..iterations * 4)
                .map(move |i| Op::Read(stream_base.offset(0x80_000 + phase * 0x10_000 + i * 16))),
        );
        workers.push(ThreadSpec::new(format!("unhinted{phase}"), unhinted));
        workers
    };

    let mut builder = ProgramBuilder::new("shard-prop");
    if serial_init {
        let mut init = Vec::new();
        for i in 0..threads * 2 {
            init.push(Op::Write(shared_line.offset(i * 4)));
            init.push(Op::Write(read_table.offset(i * 32)));
        }
        builder = builder.serial(spec("init".to_string(), OpsStream::new(init), hide));
    }
    builder = builder.parallel(make_workers(0));
    if second_phase {
        builder = builder.parallel(make_workers(1));
    }
    builder.build()
}

fn run(shape: &Shape, shards: u32, observer: &mut dyn ExecObserver) -> RunReport {
    let config = MachineConfig::with_cores(shape.cores).with_shards(shards);
    Machine::new(config).run(build_program(shape), observer)
}

fn run_hidden(shape: &Shape, shards: u32, observer: &mut dyn ExecObserver) -> RunReport {
    let config = MachineConfig::with_cores(shape.cores).with_shards(shards);
    Machine::new(config).run(build_program_with(shape, true), observer)
}

/// Observer recording the full surfaced access stream (EveryAccess mode)
/// and perturbing every access, so timing feedback is exercised too.
#[derive(Default)]
struct Recorder {
    records: Vec<AccessRecord>,
    exits: Vec<(ThreadId, Cycles)>,
}

impl ExecObserver for Recorder {
    fn on_access(&mut self, record: &AccessRecord) -> Cycles {
        self.records.push(*record);
        // Deterministic, access-dependent perturbation.
        (record.addr.0 % 7) + u64::from(record.kind.is_write())
    }

    fn on_thread_exit(&mut self, thread: ThreadId, now: Cycles) {
        self.exits.push((thread, now));
    }
}

/// A modulo sampler with a faithful replica: samples the accesses whose
/// retired-instruction index is a multiple of `period`, charging a fixed
/// trap cost — the minimal honest implementation of the replica contract.
struct ModuloSampler {
    period: u64,
    trap: Cycles,
    samples: Vec<(ThreadId, Addr, Cycles, Cycles)>,
}

struct ModuloReplica {
    period: u64,
    trap: Cycles,
}

impl ThreadSampler for ModuloReplica {
    fn judge(&mut self, instrs_before: u64) -> SampleJudgement {
        let sampled = instrs_before.is_multiple_of(self.period);
        SampleJudgement {
            perturbation: if sampled { self.trap } else { 0 },
            sampled,
        }
    }
}

impl ExecObserver for ModuloSampler {
    fn on_access(&mut self, record: &AccessRecord) -> Cycles {
        if record.instrs_before.is_multiple_of(self.period) {
            self.samples
                .push((record.thread, record.addr, record.latency, record.start));
            self.trap
        } else {
            0
        }
    }

    fn fork_sampler(&mut self, _thread: ThreadId) -> SamplerFork {
        SamplerFork::Replica(Box::new(ModuloReplica {
            period: self.period,
            trap: self.trap,
        }))
    }
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    (
        (1u64..7, 0u32..2, 1u64..40),
        (
            proptest::sample::select(vec![64u64, 72, 128]),
            0u64..12,
            proptest::bool::ANY,
            proptest::bool::ANY,
        ),
    )
        .prop_map(
            |(
                (threads, extra_cores, iterations),
                (private_stride, work, second_phase, serial_init),
            )| {
                Shape {
                    threads,
                    // Room for the loop workers plus the two streaming
                    // workers each phase appends.
                    cores: threads as u32 + 3 + extra_cores,
                    iterations,
                    private_stride,
                    work,
                    second_phase,
                    serial_init,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Reports are bit-identical across shard counts, transparent
    /// observer.
    #[test]
    fn reports_identical_across_shard_counts(shape in arb_shape(), shards in 2u32..9) {
        let baseline = run(&shape, 1, &mut NullObserver);
        let sharded = run(&shape, shards, &mut NullObserver);
        prop_assert_eq!(&baseline, &sharded);
    }

    /// (b) The full surfaced event stream (EveryAccess observers) matches
    /// the classic stream record for record, including perturbation
    /// feedback into the clocks and thread-exit times.
    #[test]
    fn merged_event_stream_identical(shape in arb_shape(), shards in 2u32..6) {
        let mut classic = Recorder::default();
        let baseline = run(&shape, 1, &mut classic);
        let mut merged = Recorder::default();
        let sharded = run(&shape, shards, &mut merged);
        prop_assert_eq!(&baseline, &sharded);
        prop_assert_eq!(classic.records.len(), merged.records.len());
        prop_assert_eq!(&classic.records, &merged.records);
        prop_assert_eq!(&classic.exits, &merged.exits);
    }

    /// (c) Replica sampling: identical sample sequence (content and order)
    /// and identical perturbed report.
    #[test]
    fn replica_sampling_identical(shape in arb_shape(), shards in 2u32..6, period in 1u64..9) {
        let mut classic = ModuloSampler { period, trap: 1_000, samples: Vec::new() };
        let baseline = run(&shape, 1, &mut classic);
        let mut sharded_sampler = ModuloSampler { period, trap: 1_000, samples: Vec::new() };
        let sharded = run(&shape, shards, &mut sharded_sampler);
        prop_assert_eq!(&baseline, &sharded);
        prop_assert_eq!(&classic.samples, &sharded_sampler.samples);
    }

    /// (e) Extent classification is interchangeable with per-line
    /// classification: hiding every stream's footprint (forcing the
    /// materialisation fallback) yields the bit-identical report, the
    /// identical surfaced event stream and the identical sample sequence
    /// at every shard count.
    #[test]
    fn extent_vs_per_line_classification_identical(
        shape in arb_shape(),
        shards in 2u32..6,
        period in 1u64..9,
    ) {
        let mut extent_rec = Recorder::default();
        let extent_report = run(&shape, shards, &mut extent_rec);
        let mut fallback_rec = Recorder::default();
        let fallback_report = run_hidden(&shape, shards, &mut fallback_rec);
        prop_assert_eq!(&extent_report, &fallback_report);
        prop_assert_eq!(&extent_rec.records, &fallback_rec.records);
        prop_assert_eq!(&extent_rec.exits, &fallback_rec.exits);
        // And both match the classic loop under the same (perturbing)
        // observer.
        let mut classic_rec = Recorder::default();
        let classic = run(&shape, 1, &mut classic_rec);
        prop_assert_eq!(&classic, &extent_report);
        prop_assert_eq!(&classic_rec.records, &extent_rec.records);

        let mut extent_sampler = ModuloSampler { period, trap: 700, samples: Vec::new() };
        let extent_sampled = run(&shape, shards, &mut extent_sampler);
        let mut fallback_sampler = ModuloSampler { period, trap: 700, samples: Vec::new() };
        let fallback_sampled = run_hidden(&shape, shards, &mut fallback_sampler);
        prop_assert_eq!(&extent_sampled, &fallback_sampled);
        prop_assert_eq!(&extent_sampler.samples, &fallback_sampler.samples);
    }

    /// (f) Extent classification under oversubscription: hidden and
    /// declared footprints agree when the phase falls back to the classic
    /// loop because workers share cores.
    #[test]
    fn extent_oversubscription_fallback_identical(
        threads in 3u64..8,
        shards in 2u32..6,
        iterations in 1u64..20,
    ) {
        let shape = Shape {
            threads,
            cores: 2, // fewer cores than workers: same-core interleaving
            iterations,
            private_stride: 64,
            work: 3,
            second_phase: true,
            serial_init: true,
        };
        let extent_report = run(&shape, shards, &mut NullObserver);
        let fallback_report = run_hidden(&shape, shards, &mut NullObserver);
        let classic = run(&shape, 1, &mut NullObserver);
        prop_assert_eq!(&classic, &extent_report);
        prop_assert_eq!(&extent_report, &fallback_report);
    }

    /// (d) Oversubscribed phases (workers > cores) take the classic
    /// fallback and still produce identical reports.
    #[test]
    fn oversubscription_falls_back_consistently(
        threads in 3u64..8,
        shards in 2u32..6,
        iterations in 1u64..30,
    ) {
        let shape = Shape {
            threads,
            cores: 2, // fewer cores than workers: same-core interleaving
            iterations,
            private_stride: 64,
            work: 3,
            second_phase: true,
            serial_init: true,
        };
        let baseline = run(&shape, 1, &mut NullObserver);
        let sharded = run(&shape, shards, &mut NullObserver);
        prop_assert_eq!(&baseline, &sharded);
    }
}

/// Counting observers (EveryAccess) see every access exactly once under
/// sharding.
#[test]
fn counting_observer_counts_match() {
    let shape = Shape {
        threads: 4,
        cores: 8,
        iterations: 50,
        private_stride: 64,
        work: 5,
        second_phase: true,
        serial_init: true,
    };
    let mut classic = CountingObserver::default();
    let baseline = run(&shape, 1, &mut classic);
    let mut sharded_counter = CountingObserver::default();
    let sharded = run(&shape, 4, &mut sharded_counter);
    assert_eq!(baseline, sharded);
    assert_eq!(classic.accesses, sharded_counter.accesses);
    assert_eq!(classic.writes, sharded_counter.writes);
    assert_eq!(classic.thread_starts, sharded_counter.thread_starts);
    assert_eq!(classic.thread_exits, sharded_counter.thread_exits);
    assert_eq!(classic.phase_starts, sharded_counter.phase_starts);
    assert_eq!(classic.phase_ends, sharded_counter.phase_ends);
}

/// `shards = 0` resolves to the host parallelism and stays bit-identical.
#[test]
fn auto_shards_identical() {
    let shape = Shape {
        threads: 3,
        cores: 16,
        iterations: 40,
        private_stride: 72,
        work: 2,
        second_phase: false,
        serial_init: true,
    };
    let baseline = run(&shape, 1, &mut NullObserver);
    let auto = run(&shape, 0, &mut NullObserver);
    assert_eq!(baseline, auto);
}

/// A run dominated by false sharing (every access contended) still merges
/// identically — the worst case for the classifier, where no access is
/// precomputable.
#[test]
fn fully_contended_run_identical() {
    let shared = Addr(0x4000);
    let build = || {
        ProgramBuilder::new("contended")
            .parallel(
                (0..4u64)
                    .map(|t| {
                        ThreadSpec::new(
                            format!("w{t}"),
                            LoopStream::new(
                                vec![
                                    Op::Read(shared.offset(t * 4)),
                                    Op::Write(shared.offset(t * 4)),
                                ],
                                500,
                            ),
                        )
                    })
                    .collect(),
            )
            .build()
    };
    let classic = Machine::new(MachineConfig::with_cores(8)).run(build(), &mut NullObserver);
    let sharded =
        Machine::new(MachineConfig::with_cores(8).with_shards(4)).run(build(), &mut NullObserver);
    assert_eq!(classic, sharded);
    assert!(classic.coherence.invalidations > 100);
}

/// The cross-object workloads (co-resident objects packed into shared
/// cache lines — the line-level assessment's stress cases) execute
/// bit-identically across shard counts {1, 2, 4}: reports, the full
/// surfaced event stream, and the sampled sequence all match the classic
/// loop record for record.
#[test]
fn cross_object_workloads_identical_across_shard_counts() {
    use cheetah_workloads::{find, AppConfig};

    for name in [
        "inter_object",
        "packed_triplet",
        "struct_straddle",
        "reader_writer",
        "streaming_histogram",
    ] {
        let app = find(name).expect("registered workload");
        let config = AppConfig {
            threads: 6,
            scale: 0.02,
            fixed: false,
            seed: 1,
        };
        let run_at = |shards: u32| {
            let machine = Machine::new(MachineConfig::with_cores(16).with_shards(shards));
            let mut recorder = Recorder::default();
            let report = machine.run(app.build(&config).program, &mut recorder);
            let mut sampler = ModuloSampler {
                period: 7,
                trap: 500,
                samples: Vec::new(),
            };
            let sampled_report = machine.run(app.build(&config).program, &mut sampler);
            (report, recorder, sampled_report, sampler.samples)
        };
        let (report1, recorder1, sampled1, samples1) = run_at(1);
        for shards in [2u32, 4] {
            let (report, recorder, sampled, samples) = run_at(shards);
            assert_eq!(report1, report, "{name} report at {shards} shards");
            assert_eq!(
                recorder1.records, recorder.records,
                "{name} event stream at {shards} shards"
            );
            assert_eq!(
                recorder1.exits, recorder.exits,
                "{name} thread exits at {shards} shards"
            );
            assert_eq!(
                sampled1, sampled,
                "{name} perturbed report at {shards} shards"
            );
            assert_eq!(samples1, samples, "{name} samples at {shards} shards");
        }
        assert!(
            report1.coherence.invalidations > 100,
            "{name} must actually contend ({} invalidations)",
            report1.coherence.invalidations
        );
    }
}

/// Reads and writes of `AccessKind` reach observers with the right kinds
/// under sharding (spot check of record fidelity beyond plain equality).
#[test]
fn surfaced_records_have_expected_kinds() {
    let shape = Shape {
        threads: 2,
        cores: 4,
        iterations: 10,
        private_stride: 64,
        work: 1,
        second_phase: false,
        serial_init: false,
    };
    let mut rec = Recorder::default();
    run(&shape, 3, &mut rec);
    assert!(rec
        .records
        .iter()
        .any(|r| r.kind == AccessKind::Write && r.addr.0 >= 0x100_000));
    assert!(rec.records.iter().any(|r| r.kind == AccessKind::Read));
}
