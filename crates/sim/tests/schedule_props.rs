//! Properties of schedule-space perturbation (`MachineConfig::schedule`):
//!
//! (a) `SchedulePolicy::Observed` is bit-identical to today's merge —
//!     reports, surfaced event streams and sample sequences — across
//!     shard counts {1, 2, 4}, for every registry workload;
//! (b) every perturbed schedule respects per-worker program order
//!     (per-thread retired-instruction indices stay strictly increasing)
//!     and never changes `sim.footprint_violations`;
//! (c) perturbed runs are deterministic given the seed and identical
//!     across shard counts;
//! (d) the contention the observed schedule of a staggered workload
//!     hides is exposed by shuffled and contention-maximizing schedules.

use cheetah_sim::metrics::snapshot_of;
use cheetah_sim::{
    AccessRecord, AccessStream, Addr, ByteExtent, Cycles, ExecObserver, Footprint, LoopStream,
    Machine, MachineConfig, ObsHandle, Op, OpsStream, ProgramBuilder, RunReport, SampleJudgement,
    SamplerFork, SchedulePolicy, ThreadId, ThreadSampler, ThreadSpec,
};
use cheetah_workloads::{AppConfig, APPS};

/// Observer recording the full surfaced access stream (EveryAccess mode)
/// with deterministic perturbation feedback.
#[derive(Default)]
struct Recorder {
    records: Vec<AccessRecord>,
    exits: Vec<(ThreadId, Cycles)>,
}

impl ExecObserver for Recorder {
    fn on_access(&mut self, record: &AccessRecord) -> Cycles {
        self.records.push(*record);
        (record.addr.0 % 7) + u64::from(record.kind.is_write())
    }

    fn on_thread_exit(&mut self, thread: ThreadId, now: Cycles) {
        self.exits.push((thread, now));
    }
}

/// Modulo sampler with a faithful replica (the minimal honest
/// implementation of the replica contract; see `shard_props.rs`).
struct ModuloSampler {
    period: u64,
    trap: Cycles,
    samples: Vec<(ThreadId, Addr, Cycles, Cycles)>,
}

struct ModuloReplica {
    period: u64,
    trap: Cycles,
}

impl ThreadSampler for ModuloReplica {
    fn judge(&mut self, instrs_before: u64) -> SampleJudgement {
        let sampled = instrs_before.is_multiple_of(self.period);
        SampleJudgement {
            perturbation: if sampled { self.trap } else { 0 },
            sampled,
        }
    }
}

impl ExecObserver for ModuloSampler {
    fn on_access(&mut self, record: &AccessRecord) -> Cycles {
        if record.instrs_before.is_multiple_of(self.period) {
            self.samples
                .push((record.thread, record.addr, record.latency, record.start));
            self.trap
        } else {
            0
        }
    }

    fn fork_sampler(&mut self, _thread: ThreadId) -> SamplerFork {
        SamplerFork::Replica(Box::new(ModuloReplica {
            period: self.period,
            trap: self.trap,
        }))
    }
}

const SCALE: f64 = 0.02;

fn app_config() -> AppConfig {
    AppConfig {
        threads: 4,
        scale: SCALE,
        fixed: false,
        seed: 1,
    }
}

/// (a) The observed policy is today's merge, registry-wide: the default
/// configuration (no policy, classic at 1 shard) and the explicit
/// `SchedulePolicy::Observed` at shard counts {1, 2, 4} all yield the
/// identical report, the identical surfaced event stream and the
/// identical sample sequence for every registry workload.
#[test]
fn observed_policy_bit_identical_registry_wide() {
    let config = app_config();
    for app in APPS {
        let run_with = |machine_config: MachineConfig| {
            let machine = Machine::new(machine_config);
            let mut recorder = Recorder::default();
            let report = machine.run(app.build(&config).program, &mut recorder);
            let mut sampler = ModuloSampler {
                period: 7,
                trap: 500,
                samples: Vec::new(),
            };
            let sampled_report = machine.run(app.build(&config).program, &mut sampler);
            (report, recorder, sampled_report, sampler.samples)
        };
        let (report0, rec0, sampled0, samples0) = run_with(MachineConfig::default());
        for shards in [1u32, 2, 4] {
            let (report, rec, sampled, samples) = run_with(
                MachineConfig::default()
                    .with_shards(shards)
                    .with_schedule(SchedulePolicy::Observed),
            );
            assert_eq!(report0, report, "{} report at {shards} shards", app.name());
            assert_eq!(
                rec0.records,
                rec.records,
                "{} event stream at {shards} shards",
                app.name()
            );
            assert_eq!(
                rec0.exits,
                rec.exits,
                "{} exits at {shards} shards",
                app.name()
            );
            assert_eq!(
                sampled0,
                sampled,
                "{} perturbed report at {shards} shards",
                app.name()
            );
            assert_eq!(
                samples0,
                samples,
                "{} samples at {shards} shards",
                app.name()
            );
        }
    }
}

/// Runs one registry workload under `policy` with a fresh metrics
/// registry, returning the report, the surfaced stream and the metrics.
fn run_perturbed(
    app: &cheetah_workloads::App,
    policy: SchedulePolicy,
    shards: u32,
) -> (RunReport, Vec<AccessRecord>, cheetah_sim::ExecMetrics) {
    let obs = ObsHandle::fresh();
    let machine = Machine::new(
        MachineConfig::default()
            .with_shards(shards)
            .with_schedule(policy)
            .with_obs(obs.clone()),
    );
    let mut recorder = Recorder::default();
    let report = machine.run(app.build(&app_config()).program, &mut recorder);
    (report, recorder.records, snapshot_of(&obs))
}

/// (b) Perturbed schedules preserve per-worker program order (per-thread
/// retired-instruction indices strictly increase) and leave the
/// footprint-violation count exactly where the observed schedule had it,
/// for every registry workload under both perturbation policies.
#[test]
fn perturbed_schedules_respect_program_order_and_footprints() {
    for app in APPS {
        let (_, _, observed_metrics) = run_perturbed(app, SchedulePolicy::Observed, 1);
        for policy in [
            SchedulePolicy::SeededShuffle { seed: 3 },
            SchedulePolicy::ContentionMax { seed: 3 },
        ] {
            let (report, records, metrics) = run_perturbed(app, policy, 1);
            assert!(report.total_cycles > 0);
            let mut last_seen: std::collections::HashMap<ThreadId, u64> =
                std::collections::HashMap::new();
            for record in &records {
                if let Some(&prev) = last_seen.get(&record.thread) {
                    assert!(
                        record.instrs_before > prev,
                        "{} under {policy}: thread {:?} went from instr {} to {}",
                        app.name(),
                        record.thread,
                        prev,
                        record.instrs_before
                    );
                }
                last_seen.insert(record.thread, record.instrs_before);
            }
            assert_eq!(
                metrics.footprint_violations,
                observed_metrics.footprint_violations,
                "{} under {policy}: footprint violations moved",
                app.name()
            );
            assert!(
                metrics.sched_selections > 0,
                "{} under {policy}: no selections counted",
                app.name()
            );
        }
    }
}

/// (c) A perturbed run is a pure function of `(seed, shards)` — repeated
/// runs are bit-identical, and the shard count does not matter at all.
#[test]
fn perturbed_runs_deterministic_and_shard_independent() {
    let apps = ["microbench", "streamcluster", "histogram"];
    for name in apps {
        let app = cheetah_workloads::find(name).expect("registered workload");
        for policy in [
            SchedulePolicy::SeededShuffle { seed: 11 },
            SchedulePolicy::ContentionMax { seed: 11 },
        ] {
            let (report1, records1, _) = run_perturbed(app, policy, 1);
            for shards in [1u32, 2, 4] {
                let (report, records, _) = run_perturbed(app, policy, shards);
                assert_eq!(report1, report, "{name} under {policy} at {shards} shards");
                assert_eq!(
                    records1, records,
                    "{name} stream under {policy} at {shards} shards"
                );
            }
        }
    }
}

/// A stream that under-declares its footprint: it claims only the first
/// line of what it actually touches, so sharded classification counts
/// contract violations — which must be identical under every schedule.
struct LyingStream {
    inner: LoopStream,
    declared: ByteExtent,
}

impl AccessStream for LyingStream {
    fn next_op(&mut self) -> Option<Op> {
        self.inner.next_op()
    }

    fn footprint(&self) -> Footprint {
        Footprint::Bounded(vec![self.declared])
    }
}

/// (b, continued) Nonzero violation counts are schedule-independent too:
/// classification happens before any ordering decision.
#[test]
fn footprint_violations_unchanged_by_perturbation() {
    let build = || {
        ProgramBuilder::new("lying")
            .parallel(
                (0..2u64)
                    .map(|t| {
                        let base = Addr(0x10_000 + t * 0x1000);
                        ThreadSpec::new(
                            format!("w{t}"),
                            LyingStream {
                                inner: LoopStream::new(
                                    vec![Op::Write(base), Op::Write(base.offset(256))],
                                    50,
                                ),
                                declared: ByteExtent {
                                    start: base.0,
                                    end: base.0 + 8,
                                    wrote: true,
                                },
                            },
                        )
                    })
                    .collect(),
            )
            .build()
    };
    let violations_under = |policy: SchedulePolicy| {
        let obs = ObsHandle::fresh();
        let machine = Machine::new(
            MachineConfig::with_cores(8)
                .with_shards(2)
                .with_schedule(policy)
                .with_obs(obs.clone()),
        );
        machine.run(build(), &mut cheetah_sim::NullObserver);
        snapshot_of(&obs).footprint_violations
    };
    let observed = violations_under(SchedulePolicy::Observed);
    assert!(observed > 0, "the lying stream must trip the contract");
    for policy in [
        SchedulePolicy::SeededShuffle { seed: 5 },
        SchedulePolicy::ContentionMax { seed: 5 },
    ] {
        assert_eq!(observed, violations_under(policy), "under {policy}");
    }
}

/// (d) Schedule-hidden contention: two threads write the same line in
/// *staggered* bursts (one writes while the other does private work), so
/// the observed schedule sees almost no invalidations — but shuffled and
/// contention-maximizing schedules interleave the bursts and expose the
/// latent false sharing. The contention heuristic must expose at least
/// as much as the uniform shuffle.
#[test]
fn staggered_contention_exposed_by_perturbation() {
    let shared = Addr(0x4000);
    let private = Addr(0x90_000);
    let build = || {
        let burst = 2_000u64;
        let hot = |t: u64| {
            vec![
                Op::Read(shared.offset(t * 8)),
                Op::Write(shared.offset(t * 8)),
                Op::Work(4),
            ]
        };
        let cold = |t: u64| {
            vec![
                Op::Read(private.offset(t * 256)),
                Op::Write(private.offset(t * 256)),
                Op::Work(4),
            ]
        };
        let repeat = |body: Vec<Op>, times: u64| -> Vec<Op> {
            (0..times).flat_map(|_| body.clone()).collect()
        };
        let concat = |mut a: Vec<Op>, b: Vec<Op>| -> Vec<Op> {
            a.extend(b);
            a
        };
        ProgramBuilder::new("staggered")
            .parallel(vec![
                ThreadSpec::new(
                    "early",
                    OpsStream::new(concat(repeat(hot(0), burst), repeat(cold(0), burst))),
                ),
                ThreadSpec::new(
                    "late",
                    OpsStream::new(concat(repeat(cold(1), burst), repeat(hot(1), burst))),
                ),
            ])
            .build()
    };
    let invalidations_under = |policy: SchedulePolicy| {
        let machine = Machine::new(MachineConfig::with_cores(8).with_schedule(policy));
        machine
            .run(build(), &mut cheetah_sim::NullObserver)
            .coherence
            .invalidations
    };
    let observed = invalidations_under(SchedulePolicy::Observed);
    let shuffled = invalidations_under(SchedulePolicy::SeededShuffle { seed: 1 });
    let contended = invalidations_under(SchedulePolicy::ContentionMax { seed: 1 });
    assert!(
        observed < 50,
        "staggered bursts must be quiet under the observed schedule \
         ({observed} invalidations)"
    );
    assert!(
        shuffled > 10 * observed.max(1),
        "the shuffle must expose the latent ping-pong \
         (observed {observed}, shuffled {shuffled})"
    );
    assert!(
        contended >= shuffled,
        "the contention heuristic must expose at least as much as the \
         shuffle (shuffled {shuffled}, contended {contended})"
    );
}
