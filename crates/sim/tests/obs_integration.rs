//! Integration tests for the per-run observability registry
//! ([`cheetah_obs::ObsHandle`] threaded through [`MachineConfig`]):
//!
//! (a) two simulators running *concurrently* with scoped registries record
//!     fully independent event counts — the regression test for the
//!     cross-contamination the old process-global `metrics` atomics showed
//!     under parallel `cargo test`;
//! (b) the per-phase FNV state-hash witness (the determinism divergence
//!     locator's probe) is bit-identical across shard counts {1, 2, 4}
//!     for real registry workloads — the classic loop and the sharded
//!     classify/precompute/merge passes reach the same logical machine
//!     state at every phase boundary, not merely the same final report.

use cheetah_sim::{metrics, Machine, MachineConfig, NullObserver};
use cheetah_workloads::{find, AppConfig};
use proptest::prelude::*;

use cheetah_obs::ObsHandle;

/// Runs `name` broken at the given shape against a scoped registry and
/// returns the registry's merged-event count.
fn merged_under(name: &str, threads: u32, scale: f64, shards: u32, obs: &ObsHandle) -> u64 {
    let app = find(name).expect("registered workload");
    let instance = app.build(&AppConfig {
        threads,
        scale,
        fixed: false,
        seed: 1,
    });
    let machine = Machine::new(
        MachineConfig::with_cores(16)
            .with_shards(shards)
            .with_obs(obs.clone()),
    );
    machine.run(instance.program, &mut NullObserver);
    metrics::snapshot_of(obs).merged_events
}

/// Two simulators running at the same time, each with its own registry:
/// each registry's delta must equal the count the same run produces alone.
/// With the old process-global atomics both threads' events landed in one
/// pool and every `since()` delta was garbage under parallel test runs.
#[test]
fn concurrent_runs_have_independent_metrics() {
    // Solo baselines, sequentially, each on a fresh registry.
    let solo_small = merged_under("microbench", 4, 0.05, 2, &ObsHandle::fresh_untraced());
    let solo_large = merged_under("inter_object", 8, 0.1, 2, &ObsHandle::fresh_untraced());
    assert_ne!(
        solo_small, solo_large,
        "baselines must differ for the independence check to mean anything"
    );

    // The same two runs concurrently, each on its own registry.
    let small = std::thread::spawn(move || {
        merged_under("microbench", 4, 0.05, 2, &ObsHandle::fresh_untraced())
    });
    let large = std::thread::spawn(move || {
        merged_under("inter_object", 8, 0.1, 2, &ObsHandle::fresh_untraced())
    });
    let small = small.join().expect("small run");
    let large = large.join().expect("large run");

    assert_eq!(
        small, solo_small,
        "concurrent neighbour leaked into small run's registry"
    );
    assert_eq!(
        large, solo_large,
        "concurrent neighbour leaked into large run's registry"
    );
}

/// Runs `name` broken with the witness enabled and returns the per-phase
/// `(index, witness)` sequence.
fn phase_witnesses(name: &str, threads: u32, scale: f64, shards: u32) -> Vec<(u64, u64)> {
    let app = find(name).expect("registered workload");
    let instance = app.build(&AppConfig {
        threads,
        scale,
        fixed: false,
        seed: 7,
    });
    let obs = ObsHandle::fresh();
    let machine = Machine::new(
        MachineConfig::with_cores(16)
            .with_shards(shards)
            .with_obs(obs.clone())
            .with_witness(true),
    );
    machine.run(instance.program, &mut NullObserver);
    obs.spans_sorted_by_attr("phase", "index")
        .iter()
        .map(|span| {
            (
                span.attr_u64("index").expect("phase index"),
                span.attr_u64("witness").expect("witness attr"),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The divergence locator's foundation: for registry workloads, the
    /// per-phase state hash is bit-identical at shard counts 1, 2, and 4.
    #[test]
    fn phase_witness_identical_across_shards(
        name in prop::sample::select(vec![
            "microbench",
            "linear_regression",
            "streamcluster",
            "streaming_histogram",
        ]),
        threads in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        let base = phase_witnesses(name, threads, 0.05, 1);
        prop_assert!(!base.is_empty(), "{name}: no phase spans recorded");
        for shards in [2u32, 4] {
            let sharded = phase_witnesses(name, threads, 0.05, shards);
            prop_assert_eq!(
                &base, &sharded,
                "{}: witness sequence diverged at {} shards", name, shards
            );
        }
    }
}
