//! The footprint contract's two enforcement layers:
//!
//! * the **sharded executor's violation fallback** — an access outside
//!   every classified extent (or violating its extent's class) no longer
//!   panics: it is demoted to the fully-ordered write-shared path and
//!   counted in `sim.footprint_violations`, keeping the run deterministic
//!   and complete;
//! * the **audit mode** (`MachineConfig::with_footprint_audit`) — a
//!   byte-granular check of every executed access against the declared
//!   extents, counting into the same metric (and aborting in debug
//!   builds).

use cheetah_sim::observer::NullObserver;
use cheetah_sim::{
    AccessStream, Addr, ByteExtent, Footprint, LoopStream, Machine, MachineConfig, ObsHandle, Op,
    ProgramBuilder, ThreadSpec,
};

/// A stream that under-declares: claims one word, touches more.
struct Liar {
    ops: Vec<Op>,
    claimed: Vec<ByteExtent>,
}

impl AccessStream for Liar {
    fn next_op(&mut self) -> Option<Op> {
        self.ops.pop()
    }
    fn footprint(&self) -> Footprint {
        Footprint::bounded(self.claimed.clone())
    }
}

fn liar_program() -> cheetah_sim::Program {
    ProgramBuilder::new("liar")
        .parallel(vec![
            ThreadSpec::new(
                "liar",
                Liar {
                    // Writes one undeclared line and one foreign word.
                    ops: vec![
                        Op::Write(Addr(0x4000_0000)),
                        Op::Write(Addr(0x4000_2000)),
                        Op::Write(Addr(0x4000_0100)),
                    ],
                    claimed: vec![ByteExtent::word(Addr(0x4000_0000), true)],
                },
            ),
            ThreadSpec::new(
                "honest",
                LoopStream::new(vec![Op::Write(Addr(0x4000_0100))], 8),
            ),
        ])
        .build()
}

#[test]
fn sharded_executor_counts_fallbacks_instead_of_panicking() {
    let obs = ObsHandle::fresh_untraced();
    let machine = Machine::new(
        MachineConfig::default()
            .with_shards(2)
            .with_obs(obs.clone()),
    );
    let report = machine.run(liar_program(), &mut NullObserver);
    assert!(report.total_cycles > 0, "the run must complete");
    let violations = cheetah_sim::metrics::snapshot_of(&obs).footprint_violations;
    assert!(
        violations > 0,
        "under-declared accesses must be counted, got {violations}"
    );
}

#[test]
fn classic_loop_ignores_footprints_without_audit() {
    // The single-threaded loop never consults footprints; without audit
    // mode the same lying program runs violation-free.
    let obs = ObsHandle::fresh_untraced();
    let machine = Machine::new(MachineConfig::default().with_obs(obs.clone()));
    machine.run(liar_program(), &mut NullObserver);
    assert_eq!(
        cheetah_sim::metrics::snapshot_of(&obs).footprint_violations,
        0
    );
}

#[cfg(not(debug_assertions))]
#[test]
fn audit_counts_byte_granular_violations_in_release() {
    let obs = ObsHandle::fresh_untraced();
    let machine = Machine::new(
        MachineConfig::default()
            .with_footprint_audit(true)
            .with_obs(obs.clone()),
    );
    machine.run(liar_program(), &mut NullObserver);
    let violations = cheetah_sim::metrics::snapshot_of(&obs).footprint_violations;
    assert_eq!(violations, 2, "exactly the two undeclared writes");
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "footprint audit")]
fn audit_aborts_in_debug_builds() {
    let machine = Machine::new(
        MachineConfig::default()
            .with_footprint_audit(true)
            .with_obs(ObsHandle::fresh_untraced()),
    );
    machine.run(liar_program(), &mut NullObserver);
}

#[test]
fn audit_is_silent_on_honest_streams() {
    let obs = ObsHandle::fresh_untraced();
    let machine = Machine::new(
        MachineConfig::default()
            .with_footprint_audit(true)
            .with_obs(obs.clone()),
    );
    let program = ProgramBuilder::new("honest")
        .serial(ThreadSpec::new(
            "init",
            LoopStream::new(vec![Op::Write(Addr(0x4000_0000))], 4),
        ))
        .parallel(vec![
            ThreadSpec::new(
                "a",
                LoopStream::new(vec![Op::Read(Addr(0x4000_0000)), Op::Work(2)], 16),
            ),
            ThreadSpec::new("b", LoopStream::new(vec![Op::Write(Addr(0x4000_0040))], 16)),
        ])
        .build();
    machine.run(program, &mut NullObserver);
    assert_eq!(
        cheetah_sim::metrics::snapshot_of(&obs).footprint_violations,
        0
    );
}
