//! Property tests of the MESI directory against a naive reference model.

use cheetah_sim::{AccessKind, AccessOutcome, CacheLineId, CoreId, Directory, LatencyModel};
use proptest::prelude::*;
use std::collections::HashMap;

/// Naive reference: per line, the set of cores holding a valid copy and
/// whether the line is dirty. Computes, for every access, whether the
/// issuing core hits and how many copies a write invalidates.
#[derive(Default)]
struct Reference {
    lines: HashMap<u64, (Vec<u32>, bool)>, // (holders, dirty)
    invalidations: u64,
}

impl Reference {
    fn access(&mut self, core: u32, line: u64, write: bool) -> bool {
        let entry = self.lines.entry(line).or_default();
        let hit = entry.0.contains(&core);
        if write {
            let victims = entry.0.iter().filter(|&&c| c != core).count() as u64;
            // In MESI a write by a holder to a clean sole copy is silent;
            // any foreign copies are invalidated.
            self.invalidations += victims;
            entry.0 = vec![core];
            entry.1 = true;
        } else if !hit {
            entry.0.push(core);
            entry.1 = false; // read sharing forces writeback in our model
        }
        hit
    }
}

fn accesses() -> impl Strategy<Value = Vec<(u32, u64, bool)>> {
    proptest::collection::vec((0u32..6, 0u64..8, proptest::bool::ANY), 1..300)
}

proptest! {
    #[test]
    fn hits_and_invalidations_match_reference(ops in accesses()) {
        let mut dir = Directory::new(LatencyModel::default());
        let mut reference = Reference::default();
        let mut now = 0u64;
        for (core, line, write) in ops {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let result = dir.access(CoreId(core), CacheLineId(line), kind, now);
            now += result.latency() + 1;
            let ref_hit = reference.access(core, line, write);
            // For reads, "holds a copy" and "L1 hit" coincide exactly.
            // (Writes can hold a copy yet still broadcast an upgrade, so
            // they are validated through the invalidation totals instead.)
            if !write {
                let dir_hit = result.outcome == AccessOutcome::L1Hit;
                prop_assert_eq!(
                    dir_hit, ref_hit,
                    "read hit mismatch: core {} line {} outcome {:?}",
                    core, line, result.outcome
                );
            }
        }
        prop_assert_eq!(dir.stats().invalidations, reference.invalidations);
    }

    #[test]
    fn latency_is_wait_plus_cost_and_totals_consistent(ops in accesses()) {
        let model = LatencyModel::default();
        let mut dir = Directory::new(model.clone());
        let mut now = 0u64;
        for (core, line, write) in ops {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let result = dir.access(CoreId(core), CacheLineId(line), kind, now);
            prop_assert_eq!(result.latency(), result.wait + result.cost);
            prop_assert_eq!(result.cost, model.cost(result.outcome));
            now += 13; // deliberately racing accesses to exercise queuing
        }
        let stats = dir.stats();
        prop_assert!(stats.total_accesses() > 0);
        prop_assert!(stats.coherence_ratio() <= 1.0);
    }

    #[test]
    fn single_core_never_sees_coherence_traffic(
        ops in proptest::collection::vec((0u64..64, proptest::bool::ANY), 1..200)
    ) {
        let mut dir = Directory::new(LatencyModel::default());
        let mut now = 0u64;
        for (line, write) in ops {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let result = dir.access(CoreId(3), CacheLineId(line), kind, now);
            now += result.latency() + 1;
            prop_assert!(!result.outcome.is_coherence());
        }
        prop_assert_eq!(dir.stats().invalidations, 0);
    }
}

/// The fork-join engine conserves instructions: the report's per-thread
/// instruction counts equal what the streams emitted.
mod engine_conservation {
    use cheetah_sim::{
        Machine, MachineConfig, NullObserver, Op, OpsStream, ProgramBuilder, ThreadSpec,
    };
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn instructions_and_accesses_conserved(
            bodies in proptest::collection::vec(
                proptest::collection::vec((0u64..3, 1u64..50), 0..40), 1..6)
        ) {
            let mut expected: Vec<(u64, u64)> = Vec::new(); // (instructions, accesses)
            let specs = bodies.iter().enumerate().map(|(i, body)| {
                let mut instructions = 0;
                let mut accesses = 0;
                let ops: Vec<Op> = body.iter().map(|&(kind, n)| match kind {
                    0 => { instructions += n; Op::Work(n) }
                    1 => { instructions += 1; accesses += 1; Op::Read(cheetah_sim::Addr(0x4000_0000 + n * 8)) }
                    _ => { instructions += 1; accesses += 1; Op::Write(cheetah_sim::Addr(0x4000_0000 + n * 8)) }
                }).collect();
                expected.push((instructions, accesses));
                ThreadSpec::new(format!("w{i}"), OpsStream::new(ops))
            }).collect();
            let program = ProgramBuilder::new("conserve").parallel(specs).build();
            let machine = Machine::new(MachineConfig::with_cores(8));
            let report = machine.run(program, &mut NullObserver);
            for (i, (instructions, accesses)) in expected.iter().enumerate() {
                let t = &report.threads[i + 1]; // 0 is main
                prop_assert_eq!(t.instructions, *instructions);
                prop_assert_eq!(t.accesses(), *accesses);
            }
            prop_assert_eq!(report.coherence.total_accesses(),
                expected.iter().map(|(_, a)| a).sum::<u64>());
        }
    }
}
