//! # cheetah-baselines — comparison detectors
//!
//! The detectors the paper positions Cheetah against, for the comparison
//! and ablation experiments:
//!
//! * [`OwnershipDetector`] — Zhao et al.'s per-line ownership *bitmap*
//!   (one bit per thread), the invalidation-counting approach Cheetah's
//!   constant-space two-entry table replaces (§2.3). Accurate, but per-line
//!   state grows with the thread count.
//! * [`PredatorProfiler`] — a Predator-like full-instrumentation detector:
//!   every access reaches the analysis (no sampling), so it finds the minor
//!   instances Cheetah deliberately misses (Fig. 7) at a ~5-6x runtime
//!   cost (§6.1), and offers no fix-impact prediction.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod ownership;
pub mod predator;

pub use ownership::{OwnershipDetector, OwnershipState};
pub use predator::{PredatorConfig, PredatorProfiler};
