//! Zhao et al.'s ownership-based invalidation tracking (the approach §2.3
//! of the paper replaces).
//!
//! Each cache line carries a *bitmap* with one bit per thread recording
//! which threads hold a copy. A write to a line owned by others counts an
//! invalidation and resets ownership to the writer. The method is accurate
//! but its per-line space grows linearly with the thread count — "it cannot
//! easily scale to more than 32 threads because of excessive memory
//! consumption" — which is precisely the motivation for Cheetah's
//! constant-space two-entry table. This implementation exists to reproduce
//! that comparison (ablation A).

use cheetah_heap::ShadowMap;
use cheetah_pmu::Sample;
use cheetah_sim::{CacheLineId, ThreadId};

/// Per-line ownership bitmap (one bit per thread id).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OwnershipState {
    /// Bitmap words; index `t / 64`, bit `t % 64`.
    owners: Vec<u64>,
    /// Invalidations counted on this line.
    pub invalidations: u64,
    /// Writes seen on this line.
    pub writes: u64,
}

impl OwnershipState {
    fn ensure(&mut self, thread: ThreadId) -> (usize, u64) {
        let word = (thread.0 / 64) as usize;
        let bit = 1u64 << (thread.0 % 64);
        if self.owners.len() <= word {
            self.owners.resize(word + 1, 0);
        }
        (word, bit)
    }

    fn is_sole_owner(&self, word: usize, bit: u64) -> bool {
        self.owners
            .iter()
            .enumerate()
            .all(|(i, &w)| if i == word { w & !bit == 0 } else { w == 0 })
    }

    fn any_owner(&self) -> bool {
        self.owners.iter().any(|&w| w != 0)
    }

    /// Heap bytes used by this line's bitmap.
    pub fn bitmap_bytes(&self) -> usize {
        self.owners.len() * std::mem::size_of::<u64>()
    }
}

/// The ownership-bitmap detector.
///
/// ```
/// use cheetah_baselines::OwnershipDetector;
/// use cheetah_pmu::Sample;
/// use cheetah_sim::{AccessKind, Addr, PhaseKind, ThreadId};
///
/// let mut detector = OwnershipDetector::new(64);
/// let sample = |t: u32, kind| Sample {
///     thread: ThreadId(t),
///     addr: Addr(0x4000_0000),
///     kind,
///     latency: 150,
///     time: 0,
///     phase_index: 1,
///     phase_kind: PhaseKind::Parallel,
/// };
/// detector.ingest(&sample(1, AccessKind::Write));
/// detector.ingest(&sample(2, AccessKind::Write));
/// assert_eq!(detector.total_invalidations(), 1);
/// ```
#[derive(Debug)]
pub struct OwnershipDetector {
    shadow: ShadowMap<OwnershipState>,
    max_threads: u32,
    total_invalidations: u64,
    tracked_lines: u64,
}

impl OwnershipDetector {
    /// Creates a detector able to track up to `max_threads` thread ids
    /// (determines worst-case bitmap width), with 64-byte lines.
    pub fn new(max_threads: u32) -> Self {
        OwnershipDetector {
            shadow: ShadowMap::new(64),
            max_threads,
            total_invalidations: 0,
            tracked_lines: 0,
        }
    }

    /// Feeds one sampled access.
    pub fn ingest(&mut self, sample: &Sample) {
        if !sample.in_parallel_phase() {
            return;
        }
        let line = sample.addr.line(64);
        let Some(state) = self.shadow.get_mut_or_default(line) else {
            return;
        };
        if !state.any_owner() {
            self.tracked_lines += 1;
        }
        let (word, bit) = state.ensure(sample.thread);
        if sample.kind.is_write() {
            state.writes += 1;
            if state.any_owner() && !state.is_sole_owner(word, bit) {
                state.invalidations += 1;
                self.total_invalidations += 1;
                // Reset ownership to the writer.
                state.owners.iter_mut().for_each(|w| *w = 0);
            }
            state.owners[word] |= bit;
        } else {
            state.owners[word] |= bit;
        }
    }

    /// Invalidations counted on one line.
    pub fn line_invalidations(&self, line: CacheLineId) -> u64 {
        self.shadow.get(line).map_or(0, |s| s.invalidations)
    }

    /// Total invalidations counted.
    pub fn total_invalidations(&self) -> u64 {
        self.total_invalidations
    }

    /// Worst-case per-line state bytes for the configured thread count —
    /// the quantity that blows up past 32 threads.
    pub fn per_line_bytes(&self) -> usize {
        (self.max_threads as usize).div_ceil(64) * 8 + 16
    }

    /// Lines with any recorded ownership.
    pub fn tracked_lines(&self) -> u64 {
        self.tracked_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_sim::{AccessKind, Addr, PhaseKind};

    fn sample(t: u32, addr: Addr, kind: AccessKind) -> Sample {
        Sample {
            thread: ThreadId(t),
            addr,
            kind,
            latency: 100,
            time: 0,
            phase_index: 1,
            phase_kind: PhaseKind::Parallel,
        }
    }

    const A: Addr = Addr(0x4000_0000);

    #[test]
    fn write_ping_pong_counts() {
        let mut d = OwnershipDetector::new(16);
        d.ingest(&sample(1, A, AccessKind::Write));
        for _ in 0..5 {
            d.ingest(&sample(2, A, AccessKind::Write));
            d.ingest(&sample(1, A, AccessKind::Write));
        }
        assert_eq!(d.total_invalidations(), 10);
    }

    #[test]
    fn sole_owner_writes_free() {
        let mut d = OwnershipDetector::new(16);
        for _ in 0..10 {
            d.ingest(&sample(1, A, AccessKind::Write));
        }
        assert_eq!(d.total_invalidations(), 0);
    }

    #[test]
    fn reader_set_invalidated_by_foreign_write() {
        let mut d = OwnershipDetector::new(16);
        d.ingest(&sample(1, A, AccessKind::Read));
        d.ingest(&sample(2, A, AccessKind::Read));
        d.ingest(&sample(3, A, AccessKind::Write));
        assert_eq!(d.total_invalidations(), 1);
        // Ownership reset to thread 3: its next write is free.
        d.ingest(&sample(3, A, AccessKind::Write));
        assert_eq!(d.total_invalidations(), 1);
    }

    #[test]
    fn serial_samples_ignored() {
        let mut d = OwnershipDetector::new(16);
        let mut s = sample(1, A, AccessKind::Write);
        s.phase_kind = PhaseKind::Serial;
        d.ingest(&s);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn per_line_bytes_grow_with_threads() {
        assert!(
            OwnershipDetector::new(64).per_line_bytes()
                < OwnershipDetector::new(256).per_line_bytes()
        );
        // 1024 threads need 128 bytes of bitmap per line -- more than the
        // line itself, the paper's scalability complaint.
        assert!(OwnershipDetector::new(1024).per_line_bytes() >= 128);
    }

    #[test]
    fn high_thread_ids_supported() {
        let mut d = OwnershipDetector::new(256);
        d.ingest(&sample(200, A, AccessKind::Write));
        d.ingest(&sample(130, A, AccessKind::Write));
        assert_eq!(d.total_invalidations(), 1);
    }
}
