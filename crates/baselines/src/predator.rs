//! A Predator-like full-instrumentation detector.
//!
//! Predator (Liu et al., PPoPP'14) is the state-of-the-art the paper
//! compares against: compiler instrumentation feeds *every* memory access
//! into the analysis, which finds the most instances (including the minor
//! ones Cheetah deliberately misses) at ~5-6x runtime overhead. This
//! baseline reproduces that trade-off: it reuses Cheetah's detection data
//! structures but ingests the full access stream and charges a per-access
//! instrumentation cost into simulated time.

use cheetah_core::{collect_instances, Detector, DetectorConfig, SharingInstance};
use cheetah_heap::AddressSpace;
use cheetah_pmu::Sample;
use cheetah_sim::{AccessRecord, Cycles, ExecObserver};

/// Configuration of the full-instrumentation baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct PredatorConfig {
    /// Cycles of instrumentation charged per memory access (call into the
    /// runtime, shadow update). Drives the ~5-6x slowdown.
    pub per_access_cost: Cycles,
    /// Detection configuration. Defaults to Cheetah's, with the
    /// invalidation floor lowered: seeing every access, Predator reports
    /// instances with far fewer relative invalidations.
    pub detector: DetectorConfig,
}

impl Default for PredatorConfig {
    fn default() -> Self {
        PredatorConfig {
            per_access_cost: 45,
            detector: DetectorConfig {
                min_invalidations: 25,
                ..DetectorConfig::default()
            },
        }
    }
}

/// The Predator-like observer: sees every access, charges instrumentation
/// cost, detects sharing without sampling.
///
/// ```
/// use cheetah_baselines::PredatorProfiler;
/// use cheetah_heap::{AddressSpace, CallStack};
/// use cheetah_sim::{LoopStream, Machine, MachineConfig, Op, ProgramBuilder,
///                   ThreadSpec, ThreadId};
///
/// let mut space = AddressSpace::new();
/// let obj = space.heap_mut().alloc(ThreadId(0), 64, CallStack::unknown())?;
/// let program = ProgramBuilder::new("fs")
///     .parallel((0..2u64).map(|t| ThreadSpec::new(
///         "w",
///         LoopStream::new(vec![Op::Write(obj.offset(t * 4))], 5_000),
///     )).collect())
///     .build();
/// let machine = Machine::new(MachineConfig::with_cores(8));
/// let mut predator = PredatorProfiler::new(Default::default(), &space);
/// machine.run(program, &mut predator);
/// assert_eq!(predator.instances().len(), 1);
/// # Ok::<(), cheetah_heap::HeapError>(())
/// ```
pub struct PredatorProfiler<'a> {
    space: &'a AddressSpace,
    detector: Detector,
    per_access_cost: Cycles,
    accesses: u64,
}

impl<'a> PredatorProfiler<'a> {
    /// Creates the baseline profiler.
    ///
    /// # Panics
    ///
    /// Panics if the detector configuration is invalid.
    pub fn new(config: PredatorConfig, space: &'a AddressSpace) -> Self {
        PredatorProfiler {
            space,
            detector: Detector::new(config.detector),
            per_access_cost: config.per_access_cost,
            accesses: 0,
        }
    }

    /// Classified instances detected so far.
    pub fn instances(&self) -> Vec<SharingInstance> {
        collect_instances(&self.detector, self.space)
    }

    /// The underlying detector.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Accesses processed (equals the program's accesses: no sampling).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

impl std::fmt::Debug for PredatorProfiler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredatorProfiler")
            .field("accesses", &self.accesses)
            .finish_non_exhaustive()
    }
}

impl ExecObserver for PredatorProfiler<'_> {
    fn on_access(&mut self, record: &AccessRecord) -> Cycles {
        self.accesses += 1;
        let sample = Sample {
            thread: record.thread,
            addr: record.addr,
            kind: record.kind,
            latency: record.latency,
            time: record.start,
            phase_index: record.phase_index,
            phase_kind: record.phase_kind,
        };
        self.detector.ingest(self.space, &sample);
        self.per_access_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_core::SharingKind;
    use cheetah_heap::CallStack;
    use cheetah_sim::{
        LoopStream, Machine, MachineConfig, NullObserver, Op, ProgramBuilder, ThreadId, ThreadSpec,
    };

    fn fs_program(space: &mut AddressSpace, iterations: u64) -> cheetah_sim::Program {
        let obj = space
            .heap_mut()
            .alloc(ThreadId(0), 64, CallStack::single("app.c", 10))
            .unwrap();
        ProgramBuilder::new("fs")
            .parallel(
                (0..2u64)
                    .map(|t| {
                        ThreadSpec::new(
                            format!("w{t}"),
                            LoopStream::new(
                                vec![Op::Write(obj.offset(t * 4)), Op::Work(5)],
                                iterations,
                            ),
                        )
                    })
                    .collect(),
            )
            .build()
    }

    #[test]
    fn detects_minor_instances_cheetah_misses() {
        // Few iterations: too few for sparse sampling, trivial for full
        // instrumentation.
        let mut space = AddressSpace::new();
        let program = fs_program(&mut space, 300);
        let machine = Machine::new(MachineConfig::with_cores(8));
        let mut predator = PredatorProfiler::new(Default::default(), &space);
        machine.run(program, &mut predator);
        let instances = predator.instances();
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].kind, SharingKind::FalseSharing);
        assert!(instances[0].invalidations > 100);
        assert_eq!(predator.accesses(), 600);
    }

    /// A memory-bound but uncontended program: the case where per-access
    /// instrumentation hurts the most.
    fn clean_program(space: &mut AddressSpace, iterations: u64) -> cheetah_sim::Program {
        let a = space
            .heap_mut()
            .alloc(ThreadId(0), 4096, CallStack::unknown())
            .unwrap();
        ProgramBuilder::new("clean")
            .parallel(
                (0..4u64)
                    .map(|t| {
                        ThreadSpec::new(
                            format!("w{t}"),
                            LoopStream::new(
                                vec![
                                    Op::Read(a.offset(t * 1024)),
                                    Op::Write(a.offset(t * 1024)),
                                    Op::Work(2),
                                ],
                                iterations,
                            ),
                        )
                    })
                    .collect(),
            )
            .build()
    }

    #[test]
    fn instrumentation_overhead_is_severe() {
        // Allocation is deterministic: two fresh spaces produce identical
        // layouts, so the two runs execute the same program.
        let machine = Machine::new(MachineConfig::with_cores(8));
        let mut space_a = AddressSpace::new();
        let native = machine.run(clean_program(&mut space_a, 20_000), &mut NullObserver);

        let mut space_b = AddressSpace::new();
        let instr_program = clean_program(&mut space_b, 20_000);
        let mut predator = PredatorProfiler::new(Default::default(), &space_b);
        let instrumented = machine.run(instr_program, &mut predator);

        let overhead = instrumented.total_cycles as f64 / native.total_cycles as f64;
        assert!(
            overhead > 3.0,
            "full instrumentation must be severely slow on hit-bound code: {overhead}"
        );
    }

    #[test]
    fn clean_program_reports_nothing() {
        let mut space = AddressSpace::new();
        let a = space
            .heap_mut()
            .alloc(ThreadId(0), 4096, CallStack::unknown())
            .unwrap();
        let program = ProgramBuilder::new("clean")
            .parallel(
                (0..4u64)
                    .map(|t| {
                        ThreadSpec::new(
                            format!("w{t}"),
                            LoopStream::new(vec![Op::Write(a.offset(t * 1024))], 2_000),
                        )
                    })
                    .collect(),
            )
            .build();
        let machine = Machine::new(MachineConfig::with_cores(8));
        let mut predator = PredatorProfiler::new(Default::default(), &space);
        machine.run(program, &mut predator);
        assert!(predator.instances().is_empty());
    }
}
