//! Report formatting in the style of the paper's Fig. 5.
//!
//! ```text
//! Detecting false sharing at the object: start 0x400004b8
//! end 0x400044b8 (with size 4000).
//! Accesses 4707 invalidations 639 (0x27f) writes 501 total
//! latency 102988 cycles.
//! Latency information:
//! totalThreads 16
//! totalThreadsAccesses 4833 (0x12e1)
//! totalThreadsCycles 1074057
//! totalPossibleImprovementRate 576.172748%
//! (realRuntime 7738 predictedRuntime 1343).
//! It is a heap object with the following callsite:
//! linear_regression-pthread.c: 139
//! ```
//!
//! The paper prints a few counters in hex (`invalidations 27f`); this
//! reproduction prints decimal with the hex in parentheses so reports stay
//! both faithful and greppable.

use crate::assess::Assessment;
use crate::classify::{ObjectOrigin, SharingInstance, SharingKind};
use std::fmt;

/// A sharing instance paired with its assessment, ready to print.
#[derive(Debug, Clone, PartialEq)]
pub struct AssessedInstance {
    /// The detected and classified instance.
    pub instance: SharingInstance,
    /// Its predicted fix impact.
    pub assessment: Assessment,
}

impl AssessedInstance {
    /// Convenience: the predicted improvement factor.
    pub fn improvement(&self) -> f64 {
        self.assessment.improvement
    }

    /// Whether this is a false-sharing (padding-fixable) instance.
    pub fn is_false_sharing(&self) -> bool {
        self.instance.kind == SharingKind::FalseSharing
    }
}

impl fmt::Display for AssessedInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inst = &self.instance;
        let a = &self.assessment;
        writeln!(
            f,
            "Detecting {} at the object: start {} end {} (with size {}).",
            inst.kind,
            inst.object.start,
            inst.object.end(),
            inst.object.size
        )?;
        writeln!(
            f,
            "Accesses {} invalidations {} (0x{:x}) writes {} total latency {} cycles.",
            inst.accesses(),
            inst.invalidations,
            inst.invalidations,
            inst.writes,
            inst.latency
        )?;
        writeln!(f, "Latency information:")?;
        writeln!(f, "totalThreads {}", a.total_threads)?;
        writeln!(
            f,
            "totalThreadsAccesses {} (0x{:x})",
            a.total_thread_accesses, a.total_thread_accesses
        )?;
        writeln!(f, "totalThreadsCycles {}", a.total_thread_cycles)?;
        writeln!(
            f,
            "totalPossibleImprovementRate {:.6}% (realRuntime {} predictedRuntime {:.0}).",
            a.improvement_rate_percent(),
            a.real_runtime,
            a.predicted_runtime
        )?;
        match &inst.object.origin {
            ObjectOrigin::Heap { callsite, .. } => {
                writeln!(f, "It is a heap object with the following callsite:")?;
                writeln!(f, "{callsite}")?;
            }
            ObjectOrigin::Global { name } => {
                writeln!(f, "It is a global object: {name}.")?;
            }
        }
        Ok(())
    }
}

/// Formats the word-granularity access table of an instance — the
/// information programmers use to decide where to pad (§2.4).
pub fn format_word_profile(instance: &SharingInstance) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Word-level accesses for object at {} ({} touched words):",
        instance.object.start,
        instance.words.len()
    );
    for word in &instance.words {
        let shared = if word.stats.is_truly_shared() {
            " [truly shared]"
        } else {
            ""
        };
        let _ = write!(out, "  +{:<5} {}:{}", word.offset, word.addr, shared);
        for t in word.stats.threads() {
            let _ = write!(out, " {}(r{} w{})", t.thread, t.reads, t.writes);
        }
        let _ = writeln!(out);
    }
    out
}

/// One line of a predicted-vs-actual validation table (the paper's
/// Table 2 shape): how Cheetah's predicted improvement for an instance
/// compares against the improvement actually measured after applying a
/// fix. Produced by the `cheetah-repair` validation harness; formatted
/// here so every predicted/actual experiment renders identically.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionRow {
    /// What was fixed — object callsite or symbol name.
    pub label: String,
    /// How it was fixed — the synthesized repair strategy.
    pub strategy: String,
    /// Cheetah's predicted improvement factor (1.0 = no change).
    pub predicted: f64,
    /// The measured improvement factor after applying the fix.
    pub actual: f64,
}

impl PredictionRow {
    /// Relative prediction error `|predicted/actual - 1|` — the quantity
    /// the paper bounds below 10% on average.
    pub fn relative_error(&self) -> f64 {
        if self.actual == 0.0 {
            return f64::INFINITY;
        }
        (self.predicted / self.actual - 1.0).abs()
    }
}

/// Renders prediction-validation rows as an aligned text table.
pub fn format_prediction_table(title: &str, rows: &[PredictionRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let label_width = rows
        .iter()
        .map(|r| r.label.len())
        .chain(std::iter::once("instance".len()))
        .max()
        .unwrap_or(8);
    let strategy_width = rows
        .iter()
        .map(|r| r.strategy.len())
        .chain(std::iter::once("strategy".len()))
        .max()
        .unwrap_or(8);
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<label_width$}  {:<strategy_width$}  {:>9}  {:>9}  {:>7}",
        "instance", "strategy", "predicted", "actual", "error"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<label_width$}  {:<strategy_width$}  {:>8.2}x  {:>8.2}x  {:>6.1}%",
            row.label,
            row.strategy,
            row.predicted,
            row.actual,
            row.relative_error() * 100.0
        );
    }
    if rows.is_empty() {
        let _ = writeln!(out, "(no instances)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assess::Assessment;
    use crate::classify::{ObjectDescriptor, WordReport};
    use crate::detect::detector::{ObjectKey, ThreadOnObject};
    use crate::detect::words::WordStats;
    use cheetah_heap::{CallStack, ObjectId};
    use cheetah_sim::{AccessKind, Addr, ThreadId};

    fn assessed() -> AssessedInstance {
        let mut word = WordStats::default();
        word.record(ThreadId(1), 1, AccessKind::Write, 150);
        AssessedInstance {
            instance: SharingInstance {
                key: ObjectKey::Heap(ObjectId(0)),
                object: ObjectDescriptor {
                    origin: ObjectOrigin::Heap {
                        callsite: CallStack::single("linear_regression-pthread.c", 139),
                        allocated_by: ThreadId(0),
                    },
                    start: Addr(0x4000_04b8),
                    size: 4000,
                },
                kind: SharingKind::FalseSharing,
                reads: 762,
                writes: 501,
                invalidations: 639,
                latency: 102_988,
                per_thread: vec![(
                    ThreadId(1),
                    ThreadOnObject {
                        accesses: 1263,
                        cycles: 102_988,
                    },
                )],
                per_thread_phase: vec![(
                    (ThreadId(1), 1),
                    ThreadOnObject {
                        accesses: 1263,
                        cycles: 102_988,
                    },
                )],
                truly_shared_accesses: 0,
                words: vec![WordReport {
                    addr: Addr(0x4000_04b8),
                    offset: 0,
                    stats: word,
                }],
                line_residency: vec![],
            },
            assessment: Assessment {
                model: crate::assess::AssessModel::LineLevel,
                improvement: 5.76172748,
                real_runtime: 7738,
                predicted_runtime: 1343.0,
                total_threads: 16,
                total_thread_accesses: 4833,
                total_thread_cycles: 1_074_057,
                per_thread: vec![],
            },
        }
    }

    #[test]
    fn report_matches_fig5_shape() {
        let text = assessed().to_string();
        assert!(text.contains("Detecting false sharing at the object: start 0x400004b8"));
        assert!(text.contains("end 0x40001458 (with size 4000)."));
        assert!(text.contains("invalidations 639 (0x27f)"));
        assert!(text.contains("totalThreads 16"));
        assert!(text.contains("totalThreadsAccesses 4833 (0x12e1)"));
        assert!(text.contains("totalPossibleImprovementRate 576.172748%"));
        assert!(text.contains("realRuntime 7738 predictedRuntime 1343"));
        assert!(text.contains("It is a heap object with the following callsite:"));
        assert!(text.contains("linear_regression-pthread.c: 139"));
    }

    #[test]
    fn global_report_names_symbol() {
        let mut report = assessed();
        report.instance.object.origin = ObjectOrigin::Global {
            name: "work_mem".into(),
        };
        let text = report.to_string();
        assert!(text.contains("It is a global object: work_mem."));
    }

    #[test]
    fn word_profile_lists_offsets_and_threads() {
        let report = assessed();
        let text = format_word_profile(&report.instance);
        assert!(text.contains("+0"));
        assert!(text.contains("T1(r0 w1)"));
    }

    #[test]
    fn accessors() {
        let report = assessed();
        assert!(report.is_false_sharing());
        assert!((report.improvement() - 5.76172748).abs() < 1e-12);
    }

    #[test]
    fn prediction_rows_compute_relative_error() {
        let row = PredictionRow {
            label: "lr.c: 139".into(),
            strategy: "split".into(),
            predicted: 4.4,
            actual: 4.0,
        };
        assert!((row.relative_error() - 0.1).abs() < 1e-9);
        let degenerate = PredictionRow {
            actual: 0.0,
            ..row.clone()
        };
        assert!(degenerate.relative_error().is_infinite());
    }

    #[test]
    fn prediction_table_lists_rows_and_handles_empty() {
        let rows = vec![PredictionRow {
            label: "lr.c: 139".into(),
            strategy: "split".into(),
            predicted: 4.4,
            actual: 4.0,
        }];
        let table = format_prediction_table("Table 2", &rows);
        assert!(table.contains("Table 2"));
        assert!(table.contains("lr.c: 139"));
        assert!(table.contains("4.40x"));
        assert!(table.contains("4.00x"));
        assert!(table.contains("10.0%"));
        assert!(format_prediction_table("empty", &[]).contains("(no instances)"));
    }
}
