//! # cheetah-core — false-sharing detection and fix-impact prediction
//!
//! The primary contribution of *Cheetah: Detecting False Sharing
//! Efficiently and Effectively* (Liu & Liu, CGO 2016), reproduced in full:
//!
//! * **Detection** ([`detect`]): sampled accesses are routed through a
//!   shadow map to per-cache-line state. A write-count pre-filter skips
//!   write-once lines; susceptible lines get a constant-space *two-entry
//!   table* that counts cache invalidations under the paper's simple rule —
//!   a write to a line recently touched by another thread invalidates —
//!   plus a 4-byte-word access map.
//! * **Classification** ([`classify`]): lines with invalidations but
//!   disjoint per-thread word sets are *false* sharing; overlapping word
//!   sets are *true* sharing. Detailed state is only recorded in parallel
//!   phases so initialisation writes cannot masquerade as sharing.
//! * **Assessment** ([`assess()`]): the first approach to predict the payoff
//!   of fixing an instance without fixing it (Eq. 1–4): replace the
//!   object's sampled latencies with the serial-phase average, scale each
//!   thread's runtime by its predicted cycle ratio, and re-time the
//!   fork-join phase graph. This reproduction adds a *line-level* credit
//!   model ([`AssessModel::LineLevel`], the default): the detector tracks
//!   the co-resident objects of every contended line, and a repair that
//!   leaves a line uncontended is credited with every thread's traffic on
//!   the line — the joint payoff of cross-object fixes the per-object
//!   model misses.
//! * **Reporting** ([`report`]): Fig. 5-style reports with object bounds,
//!   invalidation counts, latency totals, predicted improvement and the
//!   allocation callsite or global symbol name.
//!
//! [`CheetahProfiler`] composes all of it behind
//! [`cheetah_sim::ExecObserver`] so that profiling a simulated program is
//! one constructor call — see the type-level example.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod assess;
pub mod classify;
pub mod config;
pub mod detect;
pub mod explore;
pub mod profiler;
pub mod report;

pub use assess::{
    assess, assess_with_model, AssessContext, AssessModel, Assessment, ThreadAssessment,
};
pub use classify::{
    collect_instances, ObjectDescriptor, ObjectOrigin, SharingInstance, SharingKind, WordReport,
};
pub use config::{CheetahConfig, DetectorConfig, DetectorConfigError, IngestLimits};
pub use detect::{
    CountMinSketch, Detector, IngestOutcome, IngestStats, LineAccum, LinePrefilter, LineResidency,
    LineSlice, ObjectAccum, ObjectKey, QuarantineCounts, ThreadOnObject, TwoEntryTable,
    WriteOutcome,
};
// Fault-injection vocabulary, re-exported so downstream harnesses can build
// faulted configurations without depending on cheetah-pmu directly.
pub use cheetah_pmu::{CorruptFields, FaultCounts, FaultPlan};
pub use explore::{hidden_findings, union_findings, UnionFinding};
pub use profiler::{CheetahProfiler, Profile};
pub use report::{format_prediction_table, format_word_profile, AssessedInstance, PredictionRow};
