//! Per-cache-line detection state with the write-count pre-filter.
//!
//! Tracking full detail (two-entry table + word map) for every line would
//! waste memory on write-once data, so Cheetah "first tracks the number of
//! writes on a cache line, and only tracks detailed information for cache
//! lines with more than two writes" (§2.3). [`LineState`] is the shadow
//! slot implementing that staging.

use crate::detect::table::TwoEntryTable;
use crate::detect::words::WordMap;
use cheetah_sim::Cycles;

/// Detailed state for a susceptible line (allocated lazily).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineDetail {
    /// The two-entry invalidation history table.
    pub table: TwoEntryTable,
    /// Word-granularity access profile.
    pub words: WordMap,
    /// Sampled invalidations detected on this line.
    pub invalidations: u64,
    /// Sampled reads recorded in detail.
    pub reads: u64,
    /// Sampled writes recorded in detail.
    pub writes: u64,
    /// Total sampled latency recorded in detail.
    pub latency: Cycles,
}

impl LineDetail {
    /// Fresh detail state for a line of `line_size` bytes.
    pub fn new(line_size: u64) -> Self {
        LineDetail {
            table: TwoEntryTable::new(),
            words: WordMap::new(line_size),
            invalidations: 0,
            reads: 0,
            writes: 0,
            latency: 0,
        }
    }
}

/// Shadow slot for one cache line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LineState {
    /// Total sampled writes (the pre-filter counter; counted in every
    /// phase).
    pub writes: u32,
    /// Detailed state, present once `writes` exceeds the threshold.
    pub detail: Option<Box<LineDetail>>,
}

impl LineState {
    /// Whether detailed tracking has started.
    pub fn is_detailed(&self) -> bool {
        self.detail.is_some()
    }

    /// Ensures detail exists if `writes` exceeded `threshold`; returns the
    /// detail if tracking is active.
    pub fn detail_if_hot(&mut self, threshold: u32, line_size: u64) -> Option<&mut LineDetail> {
        if self.detail.is_none() && self.writes > threshold {
            self.detail = Some(Box::new(LineDetail::new(line_size)));
        }
        self.detail.as_deref_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detail_allocated_only_above_threshold() {
        let mut state = LineState {
            writes: 2,
            ..LineState::default()
        };
        assert!(state.detail_if_hot(2, 64).is_none());
        assert!(!state.is_detailed());
        state.writes = 3;
        assert!(state.detail_if_hot(2, 64).is_some());
        assert!(state.is_detailed());
    }

    #[test]
    fn detail_persists_once_allocated() {
        let mut state = LineState {
            writes: 10,
            ..LineState::default()
        };
        state.detail_if_hot(2, 64).unwrap().invalidations = 5;
        assert_eq!(state.detail_if_hot(2, 64).unwrap().invalidations, 5);
    }

    #[test]
    fn default_state_is_cold() {
        let state = LineState::default();
        assert_eq!(state.writes, 0);
        assert!(!state.is_detailed());
    }

    #[test]
    fn zero_threshold_allows_read_heavy_lines_after_first_write() {
        let mut state = LineState {
            writes: 1,
            ..LineState::default()
        };
        assert!(state.detail_if_hot(0, 64).is_some());
    }
}
