//! Per-cache-line detection state with the write-count pre-filter.
//!
//! Tracking full detail (two-entry table + word map) for every line would
//! waste memory on write-once data, so Cheetah "first tracks the number of
//! writes on a cache line, and only tracks detailed information for cache
//! lines with more than two writes" (§2.3). [`LineState`] is the shadow
//! slot implementing that staging.

use crate::detect::table::TwoEntryTable;
use crate::detect::words::WordMap;
use cheetah_sim::{AccessKind, Addr, Cycles, ThreadId};

/// A parallel-phase sample held back by the write-count pre-filter.
///
/// Dropping the first samples of a line outright would leave the detail
/// accounting short exactly the samples that made the line hot; since the
/// threshold is tiny (the paper's "more than two writes"), staging them in
/// a bounded buffer and replaying on activation keeps the per-line state
/// constant-size while preserving every staged write (a full buffer
/// evicts its oldest read before it would drop a write).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedSample {
    /// Accessing thread.
    pub thread: ThreadId,
    /// Sampled address.
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
    /// Sampled latency.
    pub latency: Cycles,
    /// Parallel phase of the access.
    pub phase: u32,
}

/// Detailed state for a susceptible line (allocated lazily).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineDetail {
    /// The two-entry invalidation history table.
    pub table: TwoEntryTable,
    /// Word-granularity access profile.
    pub words: WordMap,
    /// Sampled invalidations detected on this line.
    pub invalidations: u64,
    /// Sampled reads recorded in detail.
    pub reads: u64,
    /// Sampled writes recorded in detail.
    pub writes: u64,
    /// Total sampled latency recorded in detail.
    pub latency: Cycles,
}

impl LineDetail {
    /// Fresh detail state for a line of `line_size` bytes.
    pub fn new(line_size: u64) -> Self {
        LineDetail {
            table: TwoEntryTable::new(),
            words: WordMap::new(line_size),
            invalidations: 0,
            reads: 0,
            writes: 0,
            latency: 0,
        }
    }
}

/// Shadow slot for one cache line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LineState {
    /// Total sampled writes (the pre-filter counter; counted in every
    /// phase).
    pub writes: u32,
    /// Samples seen while the line was still cold, replayed into the
    /// detail state on activation. Bounded by
    /// [`LineState::stage_capacity`].
    pub staged: Vec<StagedSample>,
    /// Detailed state, present once `writes` exceeds the threshold.
    pub detail: Option<Box<LineDetail>>,
    /// Degraded-mode invalidation table for a hot line that was *denied*
    /// a detail slot by the bounded line table. Allocated lazily on the
    /// first denial — unbounded detectors never pay for it — it keeps the
    /// constant-space invalidation detection (§2.3) alive so the owning
    /// object's finding keeps accumulating evidence; only the
    /// word-granularity classification detail is sacrificed.
    pub coarse: Option<Box<TwoEntryTable>>,
    /// Invalidations the coarse table detected while the line was denied
    /// a detail slot. Contention is the signal the detector exists to
    /// find, so admission control weighs these far above raw writes — a
    /// falsely-shared line must be able to out-bid a write-hot private
    /// line for the last detail slot.
    pub coarse_invalidations: u32,
}

impl LineState {
    /// How many cold-line samples are staged for replay: the threshold's
    /// worth of writes plus a couple of reads, capped so a misconfigured
    /// threshold cannot grow per-line state.
    pub fn stage_capacity(threshold: u32) -> usize {
        (threshold as usize + 2).min(8)
    }
    /// Counts one sampled write into the pre-filter, saturating at
    /// `u32::MAX`: on very long runs the counter must pin at "hot", not
    /// wrap around and silently drop the line below the detail threshold.
    pub fn record_write(&mut self) {
        self.writes = self.writes.saturating_add(1);
    }

    /// Whether detailed tracking has started.
    pub fn is_detailed(&self) -> bool {
        self.detail.is_some()
    }

    /// Ensures detail exists if `writes` exceeded `threshold`; returns the
    /// detail if tracking is active.
    pub fn detail_if_hot(&mut self, threshold: u32, line_size: u64) -> Option<&mut LineDetail> {
        if self.detail.is_none() && self.writes > threshold {
            self.detail = Some(Box::new(LineDetail::new(line_size)));
        }
        self.detail.as_deref_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detail_allocated_only_above_threshold() {
        let mut state = LineState {
            writes: 2,
            ..LineState::default()
        };
        assert!(state.detail_if_hot(2, 64).is_none());
        assert!(!state.is_detailed());
        state.writes = 3;
        assert!(state.detail_if_hot(2, 64).is_some());
        assert!(state.is_detailed());
    }

    #[test]
    fn detail_persists_once_allocated() {
        let mut state = LineState {
            writes: 10,
            ..LineState::default()
        };
        state.detail_if_hot(2, 64).unwrap().invalidations = 5;
        assert_eq!(state.detail_if_hot(2, 64).unwrap().invalidations, 5);
    }

    #[test]
    fn default_state_is_cold() {
        let state = LineState::default();
        assert_eq!(state.writes, 0);
        assert!(state.staged.is_empty());
        assert!(!state.is_detailed());
    }

    #[test]
    fn stage_capacity_tracks_threshold_with_a_cap() {
        assert_eq!(LineState::stage_capacity(2), 4);
        assert_eq!(LineState::stage_capacity(0), 2);
        assert_eq!(LineState::stage_capacity(1_000), 8);
    }

    #[test]
    fn write_counter_saturates_instead_of_wrapping() {
        let mut state = LineState {
            writes: u32::MAX - 1,
            ..LineState::default()
        };
        state.record_write();
        assert_eq!(state.writes, u32::MAX);
        // One more write must NOT wrap to 0 and reset the line to cold.
        state.record_write();
        assert_eq!(state.writes, u32::MAX);
        assert!(
            state.detail_if_hot(2, 64).is_some(),
            "a saturated line stays above the detail threshold"
        );
    }

    #[test]
    fn zero_threshold_allows_read_heavy_lines_after_first_write() {
        let mut state = LineState {
            writes: 1,
            ..LineState::default()
        };
        assert!(state.detail_if_hot(0, 64).is_some());
    }
}
