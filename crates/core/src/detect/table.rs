//! The two-entry invalidation table (§2.3 of the paper).
//!
//! Zhao et al.'s ownership approach needs one bit per thread per cache line
//! and stops scaling past 32 threads. Cheetah replaces it with a constant
//! two-entry table per line, each entry holding a thread id and access
//! type, and counts an invalidation whenever a write lands on a line that
//! another thread has touched "recently" (under the paper's Assumptions
//! 1–2). The update rules implemented here follow §2.3 verbatim:
//!
//! * **Read** — recorded only if the table is not full and the existing
//!   entry (if any) belongs to a different thread; otherwise ignored.
//! * **Write** — if the table is full, it is an invalidation (at least one
//!   entry is foreign). If the table holds exactly one entry from the same
//!   thread, the write is skipped. In all other non-empty cases it is an
//!   invalidation. On an invalidation the table is flushed and the write is
//!   recorded, keeping the table non-empty. A write into an empty table is
//!   recorded without an invalidation.

use cheetah_sim::{AccessKind, ThreadId};

/// One table entry: who touched the line and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableEntry {
    /// Thread that performed the access.
    pub thread: ThreadId,
    /// Read or write.
    pub kind: AccessKind,
}

/// Outcome of feeding a write into the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The write invalidated copies held by other threads; the table was
    /// flushed and now holds only this write.
    Invalidation,
    /// The write was recorded into an empty table.
    Recorded,
    /// The write required no table change (sole entry, same thread).
    Skipped,
}

/// The constant-space per-line history table.
///
/// ```
/// use cheetah_core::detect::{TwoEntryTable, WriteOutcome};
/// use cheetah_sim::ThreadId;
///
/// let mut table = TwoEntryTable::new();
/// table.record_read(ThreadId(1));
/// assert_eq!(table.record_write(ThreadId(2)), WriteOutcome::Invalidation);
/// // After the invalidation the table holds only thread 2's write.
/// assert_eq!(table.record_write(ThreadId(2)), WriteOutcome::Skipped);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TwoEntryTable {
    entries: [Option<TableEntry>; 2],
}

impl TwoEntryTable {
    /// An empty table.
    pub fn new() -> Self {
        TwoEntryTable::default()
    }

    /// Number of occupied entries (0..=2).
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries[0].is_none() && self.entries[1].is_none()
    }

    /// Whether both entries are occupied.
    pub fn is_full(&self) -> bool {
        self.entries[0].is_some() && self.entries[1].is_some()
    }

    /// The occupied entries.
    pub fn entries(&self) -> impl Iterator<Item = TableEntry> + '_ {
        self.entries.iter().flatten().copied()
    }

    /// Whether any entry belongs to `thread`.
    pub fn contains(&self, thread: ThreadId) -> bool {
        self.entries().any(|e| e.thread == thread)
    }

    /// Feeds a read access; returns `true` if it was recorded.
    pub fn record_read(&mut self, thread: ThreadId) -> bool {
        if self.is_full() {
            return false;
        }
        // "the existing entry is coming from a different thread": with an
        // empty table this is vacuously satisfied and the read seeds the
        // table.
        if self.contains(thread) {
            return false;
        }
        let slot = if self.entries[0].is_none() { 0 } else { 1 };
        self.entries[slot] = Some(TableEntry {
            thread,
            kind: AccessKind::Read,
        });
        true
    }

    /// Feeds a write access, applying the §2.3 rules.
    pub fn record_write(&mut self, thread: ThreadId) -> WriteOutcome {
        let outcome = if self.is_full() {
            // At most one entry can be ours, so at least one is foreign.
            WriteOutcome::Invalidation
        } else if self.is_empty() {
            WriteOutcome::Recorded
        } else {
            // Exactly one entry.
            let existing = self.entries().next().expect("non-empty");
            if existing.thread == thread {
                WriteOutcome::Skipped
            } else {
                WriteOutcome::Invalidation
            }
        };
        match outcome {
            WriteOutcome::Invalidation | WriteOutcome::Recorded => {
                // Flush and keep the current write so the table is never
                // empty after a write.
                self.entries = [
                    Some(TableEntry {
                        thread,
                        kind: AccessKind::Write,
                    }),
                    None,
                ];
            }
            WriteOutcome::Skipped => {}
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);
    const T3: ThreadId = ThreadId(3);

    #[test]
    fn read_seeds_empty_table() {
        let mut table = TwoEntryTable::new();
        assert!(table.record_read(T1));
        assert_eq!(table.len(), 1);
        assert!(table.contains(T1));
    }

    #[test]
    fn duplicate_read_not_recorded() {
        let mut table = TwoEntryTable::new();
        assert!(table.record_read(T1));
        assert!(!table.record_read(T1));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn second_thread_read_fills_table() {
        let mut table = TwoEntryTable::new();
        table.record_read(T1);
        assert!(table.record_read(T2));
        assert!(table.is_full());
        // Third thread's read is dropped: table full.
        assert!(!table.record_read(T3));
    }

    #[test]
    fn write_to_empty_table_recorded_without_invalidation() {
        let mut table = TwoEntryTable::new();
        assert_eq!(table.record_write(T1), WriteOutcome::Recorded);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn same_thread_write_skipped() {
        let mut table = TwoEntryTable::new();
        table.record_write(T1);
        assert_eq!(table.record_write(T1), WriteOutcome::Skipped);
        // Also when the sole entry is a read by the same thread.
        let mut table = TwoEntryTable::new();
        table.record_read(T1);
        assert_eq!(table.record_write(T1), WriteOutcome::Skipped);
    }

    #[test]
    fn foreign_write_invalidates_single_entry() {
        let mut table = TwoEntryTable::new();
        table.record_read(T1);
        assert_eq!(table.record_write(T2), WriteOutcome::Invalidation);
        // Flushed: only T2's write remains.
        assert_eq!(table.len(), 1);
        assert!(table.contains(T2));
        assert!(!table.contains(T1));
    }

    #[test]
    fn write_to_full_table_always_invalidates() {
        let mut table = TwoEntryTable::new();
        table.record_read(T1);
        table.record_read(T2);
        // Even the writer being one of the sharers invalidates: the other
        // entry is foreign.
        assert_eq!(table.record_write(T1), WriteOutcome::Invalidation);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn table_never_empty_after_any_write() {
        let mut table = TwoEntryTable::new();
        let threads = [T1, T2, T3, T1, T1, T2];
        for &t in &threads {
            table.record_write(t);
            assert!(!table.is_empty());
        }
    }

    #[test]
    fn ping_pong_counts_every_foreign_write() {
        let mut table = TwoEntryTable::new();
        table.record_write(T1);
        let mut invalidations = 0;
        for i in 0..10 {
            let t = if i % 2 == 0 { T2 } else { T1 };
            if table.record_write(t) == WriteOutcome::Invalidation {
                invalidations += 1;
            }
        }
        assert_eq!(invalidations, 10);
    }

    #[test]
    fn single_thread_traffic_never_invalidates() {
        let mut table = TwoEntryTable::new();
        for _ in 0..10 {
            table.record_read(T1);
            assert_ne!(table.record_write(T1), WriteOutcome::Invalidation);
        }
    }
}
