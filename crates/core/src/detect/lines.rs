//! Line-level co-residency tracking.
//!
//! Cheetah's §3.2 assessment is *per object*: it credits only the threads
//! that touch the object being fixed. But cache-line contention is a
//! property of the **line** — when the allocator packs two small objects
//! into one 64-byte line, padding either object away frees its neighbour
//! too, and a per-object model predicts ~no payoff for a fix that in fact
//! removes all of the line's ping-pong (the `inter_object` workload).
//!
//! [`LineAccum`] is the detector-side record making the joint payoff
//! computable: for every cache line under detailed tracking it keeps the
//! set of *co-resident* objects observed on the line and each resident's
//! per-(thread, phase) sampled traffic, including write counts. From it,
//! [`LineAccum::residency_for`] derives the [`LineResidency`] view one
//! instance's assessment consumes: the instance's own traffic on the line,
//! the whole line's traffic, and whether the line would *stay contended*
//! if the instance were evicted — the test deciding whether the fix's
//! credit extends to every thread on the line or only to the evicted
//! object's own threads.

use crate::detect::detector::{ObjectKey, ThreadOnObject};
use cheetah_sim::util::FastMap;
use cheetah_sim::{AccessKind, CacheLineId, Cycles, ThreadId};

/// Sampled traffic of one co-resident object by one thread in one phase.
///
/// Unlike [`ThreadOnObject`] this keeps the write count: deciding whether a
/// line stays contended after an eviction needs to know whether the
/// residual traffic still contains a writer (read-only co-residents cannot
/// invalidate each other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineSlice {
    /// Sampled accesses.
    pub accesses: u64,
    /// Their total latency in cycles.
    pub cycles: Cycles,
    /// Sampled writes among the accesses.
    pub writes: u64,
}

impl LineSlice {
    fn as_traffic(self) -> ThreadOnObject {
        ThreadOnObject {
            accesses: self.accesses,
            cycles: self.cycles,
        }
    }
}

/// Accumulated co-residency state of one cache line under detailed
/// tracking: which objects were sampled on the line and how much traffic
/// each (object, thread, phase) combination contributed.
#[derive(Debug, Clone)]
pub struct LineAccum {
    /// The line.
    pub line: CacheLineId,
    residents: Vec<ObjectKey>,
    slices: FastMap<(ObjectKey, ThreadId, u32), LineSlice>,
    order: Vec<(ObjectKey, ThreadId, u32)>,
}

impl LineAccum {
    /// Fresh accumulator for `line`.
    pub fn new(line: CacheLineId) -> Self {
        LineAccum {
            line,
            residents: Vec::new(),
            slices: FastMap::default(),
            order: Vec::new(),
        }
    }

    /// Records one attributed, detailed sample on the line.
    pub fn record(
        &mut self,
        key: ObjectKey,
        thread: ThreadId,
        phase: u32,
        kind: AccessKind,
        latency: Cycles,
    ) {
        use std::collections::hash_map::Entry;

        if !self.residents.contains(&key) {
            self.residents.push(key);
        }
        let slot = (key, thread, phase);
        let slice = match self.slices.entry(slot) {
            Entry::Vacant(vacant) => {
                self.order.push(slot);
                vacant.insert(LineSlice::default())
            }
            Entry::Occupied(occupied) => occupied.into_mut(),
        };
        // Saturating like every detector counter: adversarial latencies
        // must pin at the ceiling, not wrap a hot slice back to cold.
        slice.accesses = slice.accesses.saturating_add(1);
        slice.cycles = slice.cycles.saturating_add(latency);
        if kind.is_write() {
            slice.writes = slice.writes.saturating_add(1);
        }
    }

    /// The objects with sampled traffic on the line, in first-touch order.
    pub fn residents(&self) -> &[ObjectKey] {
        &self.residents
    }

    /// Every (object, thread, phase) slice in first-touch order.
    pub fn slices(&self) -> impl Iterator<Item = ((ObjectKey, ThreadId, u32), LineSlice)> + '_ {
        self.order.iter().map(move |key| (*key, self.slices[key]))
    }

    /// Whether the line would still be contended with `evicted` relocated
    /// away: two distinct threads in the same parallel phase among the
    /// remaining residents' traffic, at least one of them writing.
    pub fn contended_without(&self, evicted: ObjectKey) -> bool {
        let rest: Vec<_> = self
            .order
            .iter()
            .filter(|&&(key, _, _)| key != evicted)
            .map(|slot| (slot.1, slot.2, self.slices[slot].writes > 0))
            .collect();
        rest.iter().enumerate().any(|(i, &(t_a, p_a, writes_a))| {
            rest.iter()
                .skip(i + 1)
                .any(|&(t_b, p_b, writes_b)| t_a != t_b && p_a == p_b && (writes_a || writes_b))
        })
    }

    /// The co-residency view of the line from the perspective of one
    /// instance (identified by `key`), ready for assessment.
    pub fn residency_for(&self, key: ObjectKey) -> LineResidency {
        let mut own: Vec<((ThreadId, u32), ThreadOnObject)> = Vec::new();
        let mut all: Vec<((ThreadId, u32), ThreadOnObject)> = Vec::new();
        for ((object, thread, phase), slice) in self.slices() {
            if object == key {
                merge(&mut own, (thread, phase), slice.as_traffic());
            }
            merge(&mut all, (thread, phase), slice.as_traffic());
        }
        LineResidency {
            line: self.line,
            residents: self.residents.clone(),
            own,
            all,
            residual_contended: self.contended_without(key),
        }
    }
}

fn merge(
    into: &mut Vec<((ThreadId, u32), ThreadOnObject)>,
    slot: (ThreadId, u32),
    traffic: ThreadOnObject,
) {
    match into.iter_mut().find(|(key, _)| *key == slot) {
        Some((_, existing)) => {
            existing.accesses = existing.accesses.saturating_add(traffic.accesses);
            existing.cycles = existing.cycles.saturating_add(traffic.cycles);
        }
        None => into.push((slot, traffic)),
    }
}

/// Co-residency profile of one cache line of a sharing instance — the
/// input of the line-granular assessment path
/// ([`crate::assess::AssessModel::LineLevel`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LineResidency {
    /// The cache line.
    pub line: CacheLineId,
    /// Every object with sampled traffic on the line (including the
    /// instance itself), in first-touch order.
    pub residents: Vec<ObjectKey>,
    /// The instance's own per-(thread, phase) traffic on this line.
    pub own: Vec<((ThreadId, u32), ThreadOnObject)>,
    /// The whole line's per-(thread, phase) traffic across all residents.
    pub all: Vec<((ThreadId, u32), ThreadOnObject)>,
    /// Whether the line stays contended after evicting this instance. When
    /// `false`, relocating the instance frees the line entirely and every
    /// thread's traffic on the line is credited with post-fix latency; when
    /// `true`, only the instance's own traffic is.
    pub residual_contended: bool,
}

impl LineResidency {
    /// Number of co-resident objects on the line (1 = the instance alone).
    pub fn co_resident_count(&self) -> usize {
        self.residents.len()
    }

    /// The traffic this line's repair relieves for `(thread, phase)`: the
    /// whole line when the residual is uncontended, otherwise only the
    /// instance's own share.
    pub fn relieved(&self, thread: ThreadId, phase: u32) -> ThreadOnObject {
        let source = if self.residual_contended {
            &self.own
        } else {
            &self.all
        };
        traffic_of(source, thread, phase)
    }

    /// Threads this line's repair touches, first-touch order: every
    /// thread with traffic on the line. Where the residual stays
    /// contended the co-residents' threads are still *partially*
    /// relieved (their queueing wait shrinks with the sharer count), so
    /// they count as related for the report totals.
    pub fn relieved_threads(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.all.iter().map(|((thread, _), _)| *thread)
    }

    /// The co-residents' traffic left on the line after evicting this
    /// instance, for `(thread, phase)`: whole-line minus own.
    pub fn residual(&self, thread: ThreadId, phase: u32) -> ThreadOnObject {
        let all = traffic_of(&self.all, thread, phase);
        let own = traffic_of(&self.own, thread, phase);
        ThreadOnObject {
            accesses: all.accesses - own.accesses,
            cycles: all.cycles - own.cycles,
        }
    }

    /// Distinct threads with any traffic on the line within `phase`.
    pub fn sharers_in_phase(&self, phase: u32) -> usize {
        distinct_threads(&self.all, phase, &[])
    }

    /// Distinct threads still on the line within `phase` after evicting
    /// this instance.
    pub fn residual_sharers_in_phase(&self, phase: u32) -> usize {
        distinct_threads(&self.all, phase, &self.own)
    }
}

/// The `(thread, phase)` slice of a traffic list, zero when absent.
fn traffic_of(
    source: &[((ThreadId, u32), ThreadOnObject)],
    thread: ThreadId,
    phase: u32,
) -> ThreadOnObject {
    source
        .iter()
        .find(|((t, p), _)| *t == thread && *p == phase)
        .map(|(_, traffic)| *traffic)
        .unwrap_or_default()
}

/// Counts distinct threads of `source` in `phase` whose accesses are not
/// fully cancelled by the matching `minus` slice.
fn distinct_threads(
    source: &[((ThreadId, u32), ThreadOnObject)],
    phase: u32,
    minus: &[((ThreadId, u32), ThreadOnObject)],
) -> usize {
    source
        .iter()
        .filter(|((t, p), traffic)| {
            *p == phase && {
                let subtracted = minus
                    .iter()
                    .find(|((mt, mp), _)| mt == t && *mp == phase)
                    .map(|(_, m)| m.accesses)
                    .unwrap_or(0);
                traffic.accesses > subtracted
            }
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_heap::ObjectId;

    const A: ObjectKey = ObjectKey::Heap(ObjectId(0));
    const B: ObjectKey = ObjectKey::Heap(ObjectId(1));
    const C: ObjectKey = ObjectKey::Heap(ObjectId(2));

    fn line() -> CacheLineId {
        cheetah_sim::Addr(0x4000_0000).line(64)
    }

    #[test]
    fn records_residents_and_slices_in_first_touch_order() {
        let mut accum = LineAccum::new(line());
        accum.record(A, ThreadId(1), 1, AccessKind::Write, 100);
        accum.record(B, ThreadId(2), 1, AccessKind::Write, 150);
        accum.record(A, ThreadId(1), 1, AccessKind::Read, 50);
        assert_eq!(accum.residents(), &[A, B]);
        let slices: Vec<_> = accum.slices().collect();
        assert_eq!(slices.len(), 2);
        assert_eq!(
            slices[0].1,
            LineSlice {
                accesses: 2,
                cycles: 150,
                writes: 1
            }
        );
    }

    #[test]
    fn two_writers_joint_credit_after_eviction() {
        let mut accum = LineAccum::new(line());
        accum.record(A, ThreadId(1), 1, AccessKind::Write, 100);
        accum.record(B, ThreadId(2), 1, AccessKind::Write, 100);
        // Evicting either object leaves a single-thread residual.
        assert!(!accum.contended_without(A));
        assert!(!accum.contended_without(B));
        let residency = accum.residency_for(A);
        assert_eq!(residency.co_resident_count(), 2);
        assert!(!residency.residual_contended);
        // Joint credit: thread 2's traffic on B is relieved too.
        assert_eq!(residency.relieved(ThreadId(2), 1).accesses, 1);
        assert_eq!(residency.relieved(ThreadId(1), 1).cycles, 100);
    }

    #[test]
    fn three_writers_keep_residual_contention() {
        let mut accum = LineAccum::new(line());
        accum.record(A, ThreadId(1), 1, AccessKind::Write, 100);
        accum.record(B, ThreadId(2), 1, AccessKind::Write, 100);
        accum.record(C, ThreadId(3), 1, AccessKind::Write, 100);
        // Evicting one of three writers leaves two contending residents.
        assert!(accum.contended_without(A));
        let residency = accum.residency_for(A);
        assert!(residency.residual_contended);
        // Credit shrinks to the evicted object's own traffic.
        assert_eq!(residency.relieved(ThreadId(2), 1).accesses, 0);
        assert_eq!(residency.relieved(ThreadId(1), 1).accesses, 1);
    }

    #[test]
    fn read_only_residual_is_not_contended() {
        let mut accum = LineAccum::new(line());
        accum.record(A, ThreadId(1), 1, AccessKind::Write, 100);
        accum.record(B, ThreadId(2), 1, AccessKind::Read, 90);
        accum.record(B, ThreadId(3), 1, AccessKind::Read, 90);
        // B's readers cannot invalidate each other once A is gone.
        assert!(!accum.contended_without(A));
        // Evicting B instead leaves only A's single writer.
        assert!(!accum.contended_without(B));
    }

    #[test]
    fn cross_phase_residual_is_not_contended() {
        let mut accum = LineAccum::new(line());
        accum.record(A, ThreadId(1), 1, AccessKind::Write, 100);
        accum.record(B, ThreadId(2), 1, AccessKind::Write, 100);
        accum.record(C, ThreadId(3), 3, AccessKind::Write, 100);
        // B (phase 1) and C (phase 3) never run concurrently.
        assert!(!accum.contended_without(A));
    }

    #[test]
    fn intra_object_residual_counts_as_contended() {
        let mut accum = LineAccum::new(line());
        accum.record(A, ThreadId(1), 1, AccessKind::Write, 100);
        // B is touched by two threads itself (intra-object sharing): the
        // line stays hot even with A gone.
        accum.record(B, ThreadId(2), 1, AccessKind::Write, 100);
        accum.record(B, ThreadId(3), 1, AccessKind::Write, 100);
        assert!(accum.contended_without(A));
    }

    #[test]
    fn sole_resident_relieves_exactly_its_own_traffic() {
        let mut accum = LineAccum::new(line());
        accum.record(A, ThreadId(1), 1, AccessKind::Write, 100);
        accum.record(A, ThreadId(2), 1, AccessKind::Write, 120);
        let residency = accum.residency_for(A);
        assert_eq!(residency.co_resident_count(), 1);
        assert!(!residency.residual_contended);
        assert_eq!(residency.own, residency.all);
        let threads: Vec<_> = residency.relieved_threads().collect();
        assert_eq!(threads, vec![ThreadId(1), ThreadId(2)]);
    }
}
