//! A count-min sketch remembering the pre-filter credit of evicted lines.
//!
//! The bounded-memory detector (see [`crate::DetectorConfig::line_capacity`])
//! cannot keep detailed state for every hot line of an over-capacity working
//! set. When it evicts a line it folds the line's sampled write count into
//! this sketch instead of discarding it: a few kilobytes of saturating
//! counters that never forget, only over-estimate. If the evicted line heats
//! up again, the sketch's estimate counts toward the write threshold, so the
//! line *re-promotes* to detailed tracking immediately rather than
//! re-serving the full pre-filter apprenticeship — the degradation is
//! bounded staleness, never permanent blindness.
//!
//! Properties the detector relies on:
//!
//! * **No under-estimates.** `estimate(line)` ≥ the true total added for
//!   `line` (standard count-min guarantee: every row's cell is incremented,
//!   the minimum over rows is reported). A line can only re-promote *sooner*
//!   than its true history warrants, never later.
//! * **Deterministic.** Hashing is seeded with fixed constants; two
//!   detectors fed the same eviction sequence hold identical sketches, which
//!   the reproducibility guarantees of the robustness sweep depend on.
//! * **Empty is free.** An unbounded detector never adds to a sketch, and an
//!   empty sketch estimates zero for every line, so the bounded machinery is
//!   bit-transparent until the first eviction.

use cheetah_sim::CacheLineId;

/// Number of hash rows. Four rows drive the over-estimate probability per
/// query below `(additions / width)^4` — negligible at the sweep's scale.
const DEPTH: usize = 4;

/// Fixed per-row hash seeds (digits of pi; any distinct constants work —
/// they only need to decorrelate the rows deterministically).
const ROW_SEEDS: [u64; DEPTH] = [
    0x243f_6a88_85a3_08d3,
    0x1319_8a2e_0370_7344,
    0xa409_3822_299f_31d0,
    0x082e_fa98_ec4e_6c89,
];

/// A count-min sketch over cache-line identities with saturating counters.
///
/// ```
/// use cheetah_core::detect::sketch::CountMinSketch;
/// use cheetah_sim::CacheLineId;
///
/// let mut sketch = CountMinSketch::with_capacity(64);
/// assert_eq!(sketch.estimate(CacheLineId(7)), 0);
/// sketch.add(CacheLineId(7), 5);
/// assert!(sketch.estimate(CacheLineId(7)) >= 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMinSketch {
    /// Cells per row (a power of two, so indexing is a mask).
    width: usize,
    /// `DEPTH` rows of `width` saturating counters, stored row-major.
    cells: Vec<u32>,
    /// Number of `add` calls with a nonzero count.
    additions: u64,
}

impl CountMinSketch {
    /// A sketch sized for a detector tracking roughly `capacity` lines at
    /// once: eight cells per expected resident, rounded up to a power of
    /// two, so collisions stay rare until evictions far outnumber capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        let width = capacity.max(8).saturating_mul(8).next_power_of_two();
        CountMinSketch {
            width,
            cells: vec![0; width * DEPTH],
            additions: 0,
        }
    }

    /// Cell index of `line` in `row` (splitmix-style avalanche of the line
    /// id XOR the row seed).
    fn index(&self, row: usize, line: CacheLineId) -> usize {
        let mut x = line.0 ^ ROW_SEEDS[row];
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 29;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 32;
        row * self.width + (x as usize & (self.width - 1))
    }

    /// Folds `count` into the sketch for `line`. Counters saturate at
    /// `u32::MAX` — a long-lived line pins at "very hot" instead of
    /// wrapping back to cold.
    pub fn add(&mut self, line: CacheLineId, count: u32) {
        if count == 0 {
            return;
        }
        self.additions += 1;
        for row in 0..DEPTH {
            let index = self.index(row, line);
            self.cells[index] = self.cells[index].saturating_add(count);
        }
    }

    /// Upper-bound estimate of the total added for `line`; exact zero when
    /// nothing was ever added.
    pub fn estimate(&self, line: CacheLineId) -> u32 {
        if self.additions == 0 {
            return 0;
        }
        (0..DEPTH)
            .map(|row| self.cells[self.index(row, line)])
            .min()
            .unwrap_or(0)
    }

    /// Whether anything was ever added.
    pub fn is_empty(&self) -> bool {
        self.additions == 0
    }

    /// Number of nonzero additions folded in so far.
    pub fn additions(&self) -> u64 {
        self.additions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_estimates_zero_everywhere() {
        let sketch = CountMinSketch::with_capacity(32);
        for i in 0..1000u64 {
            assert_eq!(sketch.estimate(CacheLineId(i * 64)), 0);
        }
        assert!(sketch.is_empty());
    }

    #[test]
    fn estimate_never_underestimates() {
        let mut sketch = CountMinSketch::with_capacity(16);
        // Far more distinct lines than the sizing hint: collisions may
        // over-estimate, but no line may come back low.
        let mut truth = Vec::new();
        for i in 0..500u64 {
            let line = CacheLineId(0x4000_0000 + i * 64);
            let count = (i % 7 + 1) as u32;
            sketch.add(line, count);
            truth.push((line, count));
        }
        for (line, count) in truth {
            assert!(
                sketch.estimate(line) >= count,
                "line {line:?} under-estimated"
            );
        }
        assert_eq!(sketch.additions(), 500);
    }

    #[test]
    fn repeated_adds_accumulate() {
        let mut sketch = CountMinSketch::with_capacity(64);
        let line = CacheLineId(0x40);
        sketch.add(line, 3);
        sketch.add(line, 4);
        assert!(sketch.estimate(line) >= 7);
    }

    #[test]
    fn zero_count_adds_are_ignored() {
        let mut sketch = CountMinSketch::with_capacity(64);
        sketch.add(CacheLineId(0x40), 0);
        assert!(sketch.is_empty());
        assert_eq!(sketch.estimate(CacheLineId(0x40)), 0);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut sketch = CountMinSketch::with_capacity(8);
        let line = CacheLineId(0x80);
        sketch.add(line, u32::MAX);
        sketch.add(line, u32::MAX);
        assert_eq!(sketch.estimate(line), u32::MAX);
    }

    #[test]
    fn identical_histories_build_identical_sketches() {
        let build = || {
            let mut sketch = CountMinSketch::with_capacity(32);
            for i in 0..100u64 {
                sketch.add(CacheLineId(i * 64), (i % 5) as u32 + 1);
            }
            sketch
        };
        assert_eq!(build(), build());
    }
}
