//! Word-granularity access tracking (§2.4 of the paper).
//!
//! To tell false sharing from true sharing, Cheetah records, for each
//! 4-byte word of a susceptible cache line, how many reads and writes each
//! thread issued. A word touched by more than one thread (with at least one
//! write) is *truly shared*; a line with many invalidations but no truly
//! shared words is *falsely* shared. The same data doubles as the padding
//! guide shown to programmers.

use cheetah_sim::{AccessKind, Cycles, ThreadId, WORD_BYTES};

/// Per-thread counters on one word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordThreadStats {
    /// The accessing thread.
    pub thread: ThreadId,
    /// Parallel phase the thread accessed the word in. Sharing only counts
    /// within one phase: threads of different fork-join phases reusing a
    /// word are temporally separated by a join and cannot contend.
    pub phase: u32,
    /// Sampled reads by this thread.
    pub reads: u32,
    /// Sampled writes by this thread.
    pub writes: u32,
    /// Total sampled latency by this thread on this word.
    pub cycles: Cycles,
}

/// Access profile of one 4-byte word.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WordStats {
    threads: Vec<WordThreadStats>,
}

impl WordStats {
    /// Records one sampled access made in parallel phase `phase`.
    pub fn record(&mut self, thread: ThreadId, phase: u32, kind: AccessKind, latency: Cycles) {
        let entry = match self.threads.iter_mut().find(|t| t.thread == thread) {
            Some(entry) => entry,
            None => {
                self.threads.push(WordThreadStats {
                    thread,
                    phase,
                    reads: 0,
                    writes: 0,
                    cycles: 0,
                });
                self.threads.last_mut().expect("just pushed")
            }
        };
        // Saturating: a pathological stream must pin a word's counters at
        // their ceiling, never wrap them past zero (a wrapped `writes`
        // could flip a truly-shared word back to "benign").
        match kind {
            AccessKind::Read => entry.reads = entry.reads.saturating_add(1),
            AccessKind::Write => entry.writes = entry.writes.saturating_add(1),
        }
        entry.cycles = entry.cycles.saturating_add(latency);
    }

    /// Per-thread counters, in first-touch order.
    pub fn threads(&self) -> &[WordThreadStats] {
        &self.threads
    }

    /// Whether any access was recorded.
    pub fn is_touched(&self) -> bool {
        !self.threads.is_empty()
    }

    /// Total sampled accesses on this word.
    pub fn accesses(&self) -> u64 {
        self.threads
            .iter()
            .map(|t| u64::from(t.reads) + u64::from(t.writes))
            .sum()
    }

    /// Total sampled writes on this word.
    pub fn writes(&self) -> u64 {
        self.threads.iter().map(|t| u64::from(t.writes)).sum()
    }

    /// True sharing test: more than one thread touched the word *within
    /// the same parallel phase* and at least one of them wrote it.
    pub fn is_truly_shared(&self) -> bool {
        self.threads.iter().enumerate().any(|(i, a)| {
            self.threads.iter().skip(i + 1).any(|b| {
                b.thread != a.thread && b.phase == a.phase && (a.writes > 0 || b.writes > 0)
            })
        })
    }
}

/// Word-level profile of one cache line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordMap {
    words: Vec<WordStats>,
}

impl WordMap {
    /// A map for a line of `line_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a multiple of the 4-byte word size.
    pub fn new(line_size: u64) -> Self {
        assert_eq!(line_size % WORD_BYTES, 0, "line size must be word-aligned");
        WordMap {
            words: vec![WordStats::default(); (line_size / WORD_BYTES) as usize],
        }
    }

    /// Records an access to the word at `word_index`.
    ///
    /// # Panics
    ///
    /// Panics if `word_index` is out of range for the line.
    pub fn record(
        &mut self,
        word_index: usize,
        thread: ThreadId,
        phase: u32,
        kind: AccessKind,
        latency: Cycles,
    ) {
        self.words[word_index].record(thread, phase, kind, latency);
    }

    /// Stats of each word, in line order.
    pub fn words(&self) -> &[WordStats] {
        &self.words
    }

    /// Indices of truly shared words.
    pub fn truly_shared_words(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_truly_shared())
            .map(|(i, _)| i)
    }

    /// Number of distinct threads that touched any word of the line.
    pub fn distinct_threads(&self) -> usize {
        let mut seen: Vec<ThreadId> = Vec::new();
        for word in &self.words {
            for t in word.threads() {
                if !seen.contains(&t.thread) {
                    seen.push(t.thread);
                }
            }
        }
        seen.len()
    }

    /// Sampled accesses over the whole line.
    pub fn total_accesses(&self) -> u64 {
        self.words.iter().map(WordStats::accesses).sum()
    }

    /// Sampled accesses that landed on truly shared words.
    pub fn truly_shared_accesses(&self) -> u64 {
        self.words
            .iter()
            .filter(|w| w.is_truly_shared())
            .map(WordStats::accesses)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    #[test]
    fn word_records_per_thread() {
        let mut word = WordStats::default();
        word.record(T1, 1, AccessKind::Read, 10);
        word.record(T1, 1, AccessKind::Write, 150);
        word.record(T2, 1, AccessKind::Read, 90);
        assert_eq!(word.threads().len(), 2);
        assert_eq!(word.accesses(), 3);
        assert_eq!(word.writes(), 1);
        let t1 = &word.threads()[0];
        assert_eq!((t1.reads, t1.writes, t1.cycles), (1, 1, 160));
    }

    #[test]
    fn true_sharing_requires_multiple_threads_and_a_write() {
        let mut read_only = WordStats::default();
        read_only.record(T1, 1, AccessKind::Read, 1);
        read_only.record(T2, 1, AccessKind::Read, 1);
        assert!(!read_only.is_truly_shared(), "read-only sharing is benign");

        let mut single_writer = WordStats::default();
        single_writer.record(T1, 1, AccessKind::Write, 1);
        single_writer.record(T1, 1, AccessKind::Write, 1);
        assert!(!single_writer.is_truly_shared(), "single thread");

        let mut shared = WordStats::default();
        shared.record(T1, 1, AccessKind::Write, 1);
        shared.record(T2, 1, AccessKind::Read, 1);
        assert!(shared.is_truly_shared());
    }

    #[test]
    fn word_map_sizes_to_line() {
        let map = WordMap::new(64);
        assert_eq!(map.words().len(), 16);
        let map = WordMap::new(32);
        assert_eq!(map.words().len(), 8);
    }

    #[test]
    fn false_sharing_pattern_has_no_truly_shared_words() {
        // Threads write disjoint words of the same line: classic FS.
        let mut map = WordMap::new(64);
        for i in 0..100 {
            map.record(0, T1, 1, AccessKind::Write, 150);
            map.record(4, T2, 1, AccessKind::Write, 150);
            let _ = i;
        }
        assert_eq!(map.truly_shared_words().count(), 0);
        assert_eq!(map.distinct_threads(), 2);
        assert_eq!(map.truly_shared_accesses(), 0);
        assert_eq!(map.total_accesses(), 200);
    }

    #[test]
    fn true_sharing_pattern_flagged() {
        let mut map = WordMap::new(64);
        map.record(3, T1, 1, AccessKind::Write, 150);
        map.record(3, T2, 1, AccessKind::Read, 90);
        let shared: Vec<_> = map.truly_shared_words().collect();
        assert_eq!(shared, vec![3]);
        assert_eq!(map.truly_shared_accesses(), 2);
    }

    #[test]
    fn cross_phase_reuse_is_not_true_sharing() {
        // Two threads from different fork-join phases writing the same
        // word are separated by a join: no concurrent sharing.
        let mut word = WordStats::default();
        word.record(T1, 1, AccessKind::Write, 150);
        word.record(T2, 3, AccessKind::Write, 150);
        assert!(!word.is_truly_shared());
        // Same phase: concurrent, truly shared.
        let mut word = WordStats::default();
        word.record(T1, 1, AccessKind::Write, 150);
        word.record(T2, 1, AccessKind::Read, 90);
        assert!(word.is_truly_shared());
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_line_size_panics() {
        let _ = WordMap::new(62);
    }
}
