//! The false-sharing detector: from samples to per-object sharing state.
//!
//! This is the "FS detection" box of the paper's Fig. 2. Each incoming
//! [`Sample`] is resolved through the shadow map to its cache line, runs the
//! write-count pre-filter, updates the two-entry invalidation table and the
//! word map, and is attributed to its heap object or global symbol. Detail
//! is recorded only inside parallel phases, so initialisation writes by the
//! main thread cannot masquerade as sharing (§2.4); serial-phase samples
//! instead feed the `AverCycles_serial` estimate the assessment needs.

use crate::config::DetectorConfig;
use crate::detect::line_state::{LineState, StagedSample};
use crate::detect::lines::LineAccum;
use cheetah_heap::{AddressSpace, Location, ShadowMap};
use cheetah_obs::{Counter, Gauge, ObsHandle};
use cheetah_pmu::Sample;
use cheetah_sim::util::{FastMap, FastSet};
use cheetah_sim::{AccessKind, CacheLineId, Cycles, ThreadId};

/// Counter name for samples fed into [`Detector::ingest`].
pub const OBS_SAMPLES_INGESTED: &str = "detect.samples_ingested";
/// Gauge name for the object-accumulator table size.
pub const OBS_OBJECT_TABLE: &str = "detect.object_table_entries";
/// Gauge name for the per-line accumulator table size.
pub const OBS_LINE_TABLE: &str = "detect.line_table_entries";
/// Counter name for parallel-phase samples skipped by the static line
/// pre-filter ([`crate::LinePrefilter`]).
pub const OBS_SAMPLES_PREFILTERED: &str = "detect.samples_prefiltered";

/// Identity of a monitored data object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjectKey {
    /// A heap allocation.
    Heap(cheetah_heap::ObjectId),
    /// A registered global (index into the registry).
    Global(usize),
}

/// Per-thread counters on one object (`Accesses_O` / `Cycles_O` split by
/// thread, as Eq. 2 of the paper requires).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThreadOnObject {
    /// Sampled accesses by the thread on the object.
    pub accesses: u64,
    /// Their total latency in cycles.
    pub cycles: Cycles,
}

/// Accumulated sharing state of one object.
#[derive(Debug, Clone)]
pub struct ObjectAccum {
    /// Which object this is.
    pub key: ObjectKey,
    /// Sampled reads recorded in detail.
    pub reads: u64,
    /// Sampled writes recorded in detail.
    pub writes: u64,
    /// Sampled invalidations attributed to writes on this object.
    pub invalidations: u64,
    /// Total sampled latency on the object.
    pub latency: Cycles,
    /// Per-(thread, phase) breakdown — the `Cycles_O(t)` slices the
    /// assessment subtracts from each phase's `Cycles_t` (a thread active
    /// in two parallel phases must not have its whole-run object cycles
    /// charged against both). Whole-run per-thread totals are derived from
    /// these slices on demand, so the two views cannot drift apart.
    per_thread_phase: FastMap<(ThreadId, u32), ThreadOnObject>,
    thread_phase_order: Vec<(ThreadId, u32)>,
    thread_order: Vec<ThreadId>,
    /// Cache lines of this object that reached detailed tracking.
    lines: FastSet<CacheLineId>,
    line_order: Vec<CacheLineId>,
}

impl ObjectAccum {
    fn new(key: ObjectKey) -> Self {
        ObjectAccum {
            key,
            reads: 0,
            writes: 0,
            invalidations: 0,
            latency: 0,
            per_thread_phase: FastMap::default(),
            thread_phase_order: Vec::new(),
            thread_order: Vec::new(),
            lines: FastSet::default(),
            line_order: Vec::new(),
        }
    }

    fn record(
        &mut self,
        thread: ThreadId,
        phase: u32,
        kind: AccessKind,
        latency: Cycles,
        invalidation: bool,
        line: CacheLineId,
    ) {
        match kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
        if invalidation {
            self.invalidations += 1;
        }
        self.latency += latency;
        if !self.per_thread_phase.contains_key(&(thread, phase)) {
            self.thread_phase_order.push((thread, phase));
            if !self.thread_order.contains(&thread) {
                self.thread_order.push(thread);
            }
        }
        let slice = self.per_thread_phase.entry((thread, phase)).or_default();
        slice.accesses += 1;
        slice.cycles += latency;
        if self.lines.insert(line) {
            self.line_order.push(line);
        }
    }

    /// Total sampled accesses on the object.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Per-thread counters in first-touch order, summed over phases.
    pub fn threads(&self) -> impl Iterator<Item = (ThreadId, ThreadOnObject)> + '_ {
        self.thread_order.iter().map(move |&thread| {
            (
                thread,
                self.thread(thread).expect("ordered threads have slices"),
            )
        })
    }

    /// Counters of a single thread, summed over phases.
    pub fn thread(&self, thread: ThreadId) -> Option<ThreadOnObject> {
        let mut total: Option<ThreadOnObject> = None;
        for ((t, _), slice) in self.thread_phases() {
            if t == thread {
                let entry = total.get_or_insert_with(ThreadOnObject::default);
                entry.accesses += slice.accesses;
                entry.cycles += slice.cycles;
            }
        }
        total
    }

    /// Per-(thread, phase) counters in first-touch order.
    pub fn thread_phases(&self) -> impl Iterator<Item = ((ThreadId, u32), ThreadOnObject)> + '_ {
        self.thread_phase_order
            .iter()
            .map(move |key| (*key, self.per_thread_phase[key]))
    }

    /// Counters of one thread within one phase.
    pub fn thread_in_phase(&self, thread: ThreadId, phase: u32) -> Option<ThreadOnObject> {
        self.per_thread_phase.get(&(thread, phase)).copied()
    }

    /// Cache lines of the object that reached detailed tracking, in
    /// first-touch order.
    pub fn lines(&self) -> &[CacheLineId] {
        &self.line_order
    }
}

/// The sample-driven detector.
///
/// ```
/// use cheetah_core::{Detector, DetectorConfig};
/// use cheetah_heap::{AddressSpace, CallStack};
/// use cheetah_pmu::Sample;
/// use cheetah_sim::{AccessKind, PhaseKind, ThreadId};
///
/// let mut space = AddressSpace::new();
/// let addr = space.heap_mut().alloc(ThreadId(0), 64, CallStack::unknown())?;
/// let mut detector = Detector::new(DetectorConfig::default());
/// // Two threads write adjacent words of the allocation, repeatedly.
/// for i in 0..100u64 {
///     for (t, off) in [(1u32, 0u64), (2, 4)] {
///         detector.ingest(&space, &Sample {
///             thread: ThreadId(t),
///             addr: addr.offset(off),
///             kind: AccessKind::Write,
///             latency: 150,
///             time: i,
///             phase_index: 1,
///             phase_kind: PhaseKind::Parallel,
///         });
///     }
/// }
/// let accum = detector.objects().next().unwrap();
/// assert!(accum.invalidations > 100);
/// # Ok::<(), cheetah_heap::HeapError>(())
/// ```
#[derive(Debug)]
pub struct Detector {
    config: DetectorConfig,
    shadow: ShadowMap<LineState>,
    objects: FastMap<ObjectKey, ObjectAccum>,
    object_order: Vec<ObjectKey>,
    lines: FastMap<CacheLineId, LineAccum>,
    total_samples: u64,
    filtered_samples: u64,
    unattributed_samples: u64,
    /// Histogram of serial-phase sampled latencies (latency -> count):
    /// bounded by the machine's handful of distinct latency costs, unlike
    /// storing every sample.
    serial_latencies: FastMap<Cycles, u64>,
    serial_samples: u64,
    prefiltered_samples: u64,
    obs_ingested: Counter,
    obs_prefiltered: Counter,
    obs_objects: Gauge,
    obs_lines: Gauge,
}

impl Detector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`DetectorConfig::validate`]).
    pub fn new(config: DetectorConfig) -> Self {
        Detector::with_obs(config, &ObsHandle::global())
    }

    /// Creates a detector reporting ingest counts and table-size gauges
    /// into `obs` instead of the global registry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`DetectorConfig::validate`]).
    pub fn with_obs(config: DetectorConfig, obs: &ObsHandle) -> Self {
        config.validate();
        let line_size = config.line_size;
        Detector {
            config,
            shadow: ShadowMap::new(line_size),
            objects: FastMap::default(),
            object_order: Vec::new(),
            lines: FastMap::default(),
            total_samples: 0,
            filtered_samples: 0,
            unattributed_samples: 0,
            serial_latencies: FastMap::default(),
            serial_samples: 0,
            prefiltered_samples: 0,
            obs_ingested: obs.counter(OBS_SAMPLES_INGESTED),
            obs_prefiltered: obs.counter(OBS_SAMPLES_PREFILTERED),
            obs_objects: obs.gauge(OBS_OBJECT_TABLE),
            obs_lines: obs.gauge(OBS_LINE_TABLE),
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Feeds one sample, resolving object attribution against `space`.
    pub fn ingest(&mut self, space: &AddressSpace, sample: &Sample) {
        self.obs_ingested.add(1);
        self.ingest_inner(space, sample);
        self.obs_objects.set(self.objects.len() as u64);
        self.obs_lines.set(self.lines.len() as u64);
    }

    fn ingest_inner(&mut self, space: &AddressSpace, sample: &Sample) {
        self.total_samples += 1;
        let line = sample.addr.line(self.config.line_size);
        // Static pre-filter: parallel-phase samples on lines the static
        // analysis proved private are dropped before any shadow state is
        // allocated — the line can never invalidate, so tracking it only
        // grows the tables. Serial samples pass through: they feed the
        // latency baseline regardless of the line's sharing class.
        if sample.in_parallel_phase()
            && !self.config.prefilter.is_empty()
            && self.config.prefilter.contains(line)
        {
            self.prefiltered_samples += 1;
            self.obs_prefiltered.add(1);
            return;
        }
        let Some(state) = self.shadow.get_mut_or_default(line) else {
            // Stack / kernel / library address: the driver filters these.
            self.filtered_samples += 1;
            return;
        };
        if sample.kind.is_write() {
            state.record_write();
        }
        if !sample.in_parallel_phase() {
            // Serial-phase samples only contribute the no-false-sharing
            // latency baseline.
            *self.serial_latencies.entry(sample.latency).or_insert(0) += 1;
            self.serial_samples += 1;
            return;
        }
        let threshold = self.config.write_threshold;
        let line_size = self.config.line_size;
        if state.detail.is_none() && state.writes <= threshold {
            // Pre-filter: the line is still cold. Stage (not drop) the
            // sample so that, if the line does go hot, the accounting is
            // not short exactly the samples that made it hot — a loss the
            // assessment would amplify by the sampling rate. Writes have
            // priority: a full buffer evicts its oldest read rather than
            // drop a threshold-tripping write (a read-mostly line can
            // otherwise fill every slot before the writer shows up).
            let staged = StagedSample {
                thread: sample.thread,
                addr: sample.addr,
                kind: sample.kind,
                latency: sample.latency,
                phase: sample.phase_index,
            };
            if state.staged.len() < LineState::stage_capacity(threshold) {
                state.staged.push(staged);
            } else if sample.kind.is_write() {
                if let Some(read) = state
                    .staged
                    .iter()
                    .position(|held| held.kind == AccessKind::Read)
                {
                    state.staged.remove(read);
                    state.staged.push(staged);
                }
            }
            return;
        }
        let staged = std::mem::take(&mut state.staged);
        let Some(detail) = state.detail_if_hot(threshold, line_size) else {
            return;
        };
        for held in &staged {
            Self::record_detail(
                detail,
                &mut self.objects,
                &mut self.object_order,
                &mut self.lines,
                &mut self.unattributed_samples,
                space,
                line,
                line_size,
                held,
            );
        }
        let current = StagedSample {
            thread: sample.thread,
            addr: sample.addr,
            kind: sample.kind,
            latency: sample.latency,
            phase: sample.phase_index,
        };
        Self::record_detail(
            detail,
            &mut self.objects,
            &mut self.object_order,
            &mut self.lines,
            &mut self.unattributed_samples,
            space,
            line,
            line_size,
            &current,
        );
    }

    /// Records one (possibly replayed) parallel-phase sample into the
    /// line's detail state and its object's accumulator.
    #[allow(clippy::too_many_arguments)]
    fn record_detail(
        detail: &mut crate::detect::line_state::LineDetail,
        objects: &mut FastMap<ObjectKey, ObjectAccum>,
        object_order: &mut Vec<ObjectKey>,
        lines: &mut FastMap<CacheLineId, LineAccum>,
        unattributed_samples: &mut u64,
        space: &AddressSpace,
        line: CacheLineId,
        line_size: u64,
        sample: &StagedSample,
    ) {
        match sample.kind {
            AccessKind::Read => detail.reads += 1,
            AccessKind::Write => detail.writes += 1,
        }
        detail.latency += sample.latency;
        let word = sample.addr.word_in_line(line_size);
        detail.words.record(
            word,
            sample.thread,
            sample.phase,
            sample.kind,
            sample.latency,
        );
        let invalidation = match sample.kind {
            AccessKind::Read => {
                detail.table.record_read(sample.thread);
                false
            }
            AccessKind::Write => {
                detail.table.record_write(sample.thread)
                    == crate::detect::table::WriteOutcome::Invalidation
            }
        };
        if invalidation {
            detail.invalidations += 1;
        }
        let key = match space.resolve(sample.addr) {
            Location::HeapObject(id) => ObjectKey::Heap(id),
            Location::Global(index) => ObjectKey::Global(index),
            Location::Unattributed(_) | Location::Unmonitored => {
                *unattributed_samples += 1;
                return;
            }
        };
        if !objects.contains_key(&key) {
            object_order.push(key);
        }
        objects
            .entry(key)
            .or_insert_with(|| ObjectAccum::new(key))
            .record(
                sample.thread,
                sample.phase,
                sample.kind,
                sample.latency,
                invalidation,
                line,
            );
        // Co-residency: the same attributed sample, keyed by line — what
        // the line-level assessment credits when a repair frees the whole
        // line (see [`crate::detect::lines`]).
        lines
            .entry(line)
            .or_insert_with(|| LineAccum::new(line))
            .record(
                key,
                sample.thread,
                sample.phase,
                sample.kind,
                sample.latency,
            );
    }

    /// `AverCycles_serial`: the paper's serial-phase estimate of post-fix
    /// access cost, falling back to the configured default when no serial
    /// samples exist.
    ///
    /// The paper averages; this reproduction takes the *median* sampled
    /// latency. A short serial phase yields only a few dozen samples, and
    /// whether one of them lands on a cold miss is an accident of sampling
    /// alignment (layout fixes shift it between converge iterations, since
    /// relocated storage changes which initialisation accesses miss) — a
    /// single sampled 220-cycle miss among thirty 4-cycle hits triples the
    /// mean and with it every predicted post-fix cost. The median is
    /// immune to that tail while agreeing with the mean on steady-state
    /// serial traffic.
    pub fn aver_cycles_serial(&self) -> f64 {
        if self.serial_samples == 0 {
            return self.config.default_serial_latency;
        }
        let mut keys: Vec<Cycles> = self.serial_latencies.keys().copied().collect();
        keys.sort_unstable();
        // 0-indexed positions of the lower and upper medians; they
        // coincide for an odd count.
        let lower_index = (self.serial_samples - 1) / 2;
        let upper_index = self.serial_samples / 2;
        let (mut lower, mut upper) = (None, None);
        let mut seen = 0u64;
        for &latency in &keys {
            let count = self.serial_latencies[&latency];
            if lower.is_none() && seen + count > lower_index {
                lower = Some(latency);
            }
            if upper.is_none() && seen + count > upper_index {
                upper = Some(latency);
                break;
            }
            seen += count;
        }
        let lower = lower.expect("counts cover the median") as f64;
        let upper = upper.expect("counts cover the median") as f64;
        (lower + upper) / 2.0
    }

    /// Per-object accumulators in first-touch order.
    pub fn objects(&self) -> impl Iterator<Item = &ObjectAccum> {
        self.object_order.iter().map(move |k| &self.objects[k])
    }

    /// Accumulator of one object.
    pub fn object(&self, key: ObjectKey) -> Option<&ObjectAccum> {
        self.objects.get(&key)
    }

    /// The shadow map (line-level state), for classification passes.
    pub fn shadow(&self) -> &ShadowMap<LineState> {
        &self.shadow
    }

    /// Co-residency accumulator of one cache line (present once the line
    /// reached detailed tracking and received an attributed sample).
    pub fn line_accum(&self, line: CacheLineId) -> Option<&LineAccum> {
        self.lines.get(&line)
    }

    /// Samples ingested in total.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Samples dropped because they fell outside monitored segments.
    pub fn filtered_samples(&self) -> u64 {
        self.filtered_samples
    }

    /// Parallel-phase samples on hot lines that no tracked object claimed.
    pub fn unattributed_samples(&self) -> u64 {
        self.unattributed_samples
    }

    /// Serial-phase samples (baseline latency contributors).
    pub fn serial_samples(&self) -> u64 {
        self.serial_samples
    }

    /// Parallel-phase samples skipped by the static line pre-filter
    /// ([`crate::LinePrefilter`]); zero when no filter is installed.
    pub fn prefiltered_samples(&self) -> u64 {
        self.prefiltered_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_heap::CallStack;
    use cheetah_sim::{Addr, PhaseKind};

    fn sample(thread: u32, addr: Addr, kind: AccessKind, phase: PhaseKind) -> Sample {
        Sample {
            thread: ThreadId(thread),
            addr,
            kind,
            latency: if kind.is_write() { 150 } else { 90 },
            time: 0,
            phase_index: 1,
            phase_kind: phase,
        }
    }

    fn space_with_object(size: u64) -> (AddressSpace, Addr) {
        let mut space = AddressSpace::new();
        let addr = space
            .heap_mut()
            .alloc(ThreadId(0), size, CallStack::single("app.c", 42))
            .unwrap();
        (space, addr)
    }

    #[test]
    fn false_sharing_accumulates_invalidations() {
        let (space, base) = space_with_object(64);
        let mut detector = Detector::new(DetectorConfig::default());
        for _ in 0..50 {
            detector.ingest(
                &space,
                &sample(1, base, AccessKind::Write, PhaseKind::Parallel),
            );
            detector.ingest(
                &space,
                &sample(2, base.offset(4), AccessKind::Write, PhaseKind::Parallel),
            );
        }
        let accum = detector.objects().next().unwrap();
        // First 3 writes feed the pre-filter; the rest ping-pong.
        assert!(accum.invalidations >= 90, "got {}", accum.invalidations);
        assert_eq!(accum.reads, 0);
        assert!(accum.writes >= 97);
        assert_eq!(accum.threads().count(), 2);
        assert_eq!(accum.lines().len(), 1);
    }

    #[test]
    fn write_threshold_suppresses_write_once_lines() {
        let (space, base) = space_with_object(256);
        let mut detector = Detector::new(DetectorConfig::default());
        // Two writes per line: below the "more than two writes" threshold.
        for line in 0..4u64 {
            for t in [1, 2] {
                detector.ingest(
                    &space,
                    &sample(
                        t,
                        base.offset(line * 64),
                        AccessKind::Write,
                        PhaseKind::Parallel,
                    ),
                );
            }
        }
        assert_eq!(detector.objects().count(), 0);
        // Plenty of reads never start detail either.
        for _ in 0..100 {
            detector.ingest(
                &space,
                &sample(1, base, AccessKind::Read, PhaseKind::Parallel),
            );
        }
        assert_eq!(detector.objects().count(), 0);
    }

    #[test]
    fn serial_samples_only_feed_latency_baseline() {
        let (space, base) = space_with_object(64);
        let mut detector = Detector::new(DetectorConfig::default());
        for _ in 0..10 {
            detector.ingest(
                &space,
                &sample(0, base, AccessKind::Write, PhaseKind::Serial),
            );
        }
        assert_eq!(detector.objects().count(), 0);
        assert_eq!(detector.serial_samples(), 10);
        assert!((detector.aver_cycles_serial() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn serial_latency_is_the_median_not_the_mean() {
        // One sampled cold miss among thirty hits: the mean would report
        // (220 + 30*4)/31 ≈ 11, tripling every predicted post-fix cost;
        // the median must stay at the hit latency.
        let (space, base) = space_with_object(64);
        let mut detector = Detector::new(DetectorConfig::default());
        let serial = |latency: u64| Sample {
            latency,
            ..sample(0, base, AccessKind::Write, PhaseKind::Serial)
        };
        for _ in 0..30 {
            detector.ingest(&space, &serial(4));
        }
        detector.ingest(&space, &serial(220));
        assert_eq!(detector.serial_samples(), 31);
        assert!(
            (detector.aver_cycles_serial() - 4.0).abs() < 1e-9,
            "a single cold miss must not move the baseline: {}",
            detector.aver_cycles_serial()
        );
    }

    #[test]
    fn serial_latency_even_count_averages_the_two_middles() {
        // Two samples at 4, two at 10: the two middle values straddle the
        // histogram keys, so the median is (4 + 10) / 2.
        let (space, base) = space_with_object(64);
        let mut detector = Detector::new(DetectorConfig::default());
        for latency in [4u64, 4, 10, 10] {
            detector.ingest(
                &space,
                &Sample {
                    latency,
                    ..sample(0, base, AccessKind::Write, PhaseKind::Serial)
                },
            );
        }
        assert!((detector.aver_cycles_serial() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn serial_latency_default_when_no_serial_samples() {
        let detector = Detector::new(DetectorConfig::default());
        assert!(
            (detector.aver_cycles_serial() - DetectorConfig::default().default_serial_latency)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn unmonitored_addresses_filtered() {
        let space = AddressSpace::new();
        let mut detector = Detector::new(DetectorConfig::default());
        detector.ingest(
            &space,
            &sample(1, Addr(0x10), AccessKind::Write, PhaseKind::Parallel),
        );
        assert_eq!(detector.filtered_samples(), 1);
        assert_eq!(detector.objects().count(), 0);
    }

    #[test]
    fn globals_attributed_by_symbol() {
        let mut space = AddressSpace::new();
        let g = space.globals_mut().register("hot_global", 64, 64).unwrap();
        let mut detector = Detector::new(DetectorConfig::default());
        for _ in 0..20 {
            detector.ingest(
                &space,
                &sample(1, g, AccessKind::Write, PhaseKind::Parallel),
            );
            detector.ingest(
                &space,
                &sample(2, g.offset(8), AccessKind::Write, PhaseKind::Parallel),
            );
        }
        let accum = detector.objects().next().unwrap();
        assert_eq!(accum.key, ObjectKey::Global(0));
        assert!(accum.invalidations > 10);
    }

    #[test]
    fn same_thread_traffic_no_invalidations() {
        let (space, base) = space_with_object(64);
        let mut detector = Detector::new(DetectorConfig::default());
        for i in 0..100u64 {
            detector.ingest(
                &space,
                &sample(
                    1,
                    base.offset((i % 16) * 4),
                    AccessKind::Write,
                    PhaseKind::Parallel,
                ),
            );
        }
        let accum = detector.objects().next().unwrap();
        assert_eq!(accum.invalidations, 0);
    }

    #[test]
    fn per_thread_breakdown_matches_traffic() {
        let (space, base) = space_with_object(64);
        let mut detector = Detector::new(DetectorConfig::default());
        for _ in 0..10 {
            detector.ingest(
                &space,
                &sample(1, base, AccessKind::Write, PhaseKind::Parallel),
            );
        }
        for _ in 0..5 {
            detector.ingest(
                &space,
                &sample(2, base.offset(4), AccessKind::Read, PhaseKind::Parallel),
            );
        }
        let accum = detector.objects().next().unwrap();
        let t1 = accum.thread(ThreadId(1)).unwrap();
        let t2 = accum.thread(ThreadId(2)).unwrap();
        // Thread 1's first two writes warm the pre-filter (threshold 2) and
        // are staged; the third write trips detail and replays them, so no
        // sampled traffic is lost.
        assert_eq!(t1.accesses, 10);
        assert_eq!(t2.accesses, 5);
        assert_eq!(t2.cycles, 5 * 90);
        assert!(accum.thread(ThreadId(3)).is_none());
    }

    #[test]
    fn per_thread_phase_breakdown_splits_by_phase() {
        let (space, base) = space_with_object(64);
        let mut detector = Detector::new(DetectorConfig::default());
        // Warm the pre-filter, then traffic from thread 1 in phases 1 and 3.
        for phase in [1u32, 1, 1, 3, 3] {
            let mut s = sample(1, base, AccessKind::Write, PhaseKind::Parallel);
            s.phase_index = phase;
            detector.ingest(&space, &s);
            let mut s = sample(2, base.offset(4), AccessKind::Write, PhaseKind::Parallel);
            s.phase_index = phase;
            detector.ingest(&space, &s);
        }
        let accum = detector.objects().next().unwrap();
        let whole = accum.thread(ThreadId(1)).unwrap();
        let p1 = accum.thread_in_phase(ThreadId(1), 1).unwrap();
        let p3 = accum.thread_in_phase(ThreadId(1), 3).unwrap();
        assert_eq!(p1.accesses + p3.accesses, whole.accesses);
        assert_eq!(p1.cycles + p3.cycles, whole.cycles);
        assert_eq!(p1.accesses, 3, "staged warm-up samples are replayed");
        assert_eq!(p3.accesses, 2);
        assert!(accum.thread_in_phase(ThreadId(1), 2).is_none());
        assert_eq!(accum.thread_phases().count(), 4);
    }

    #[test]
    fn staged_writes_survive_a_read_filled_buffer() {
        // A read-mostly line: enough sampled reads to fill the staging
        // buffer before the writers show up. The threshold-tripping writes
        // must evict staged reads, not be dropped, so both writers appear
        // in the object's per-thread accounting.
        let (space, base) = space_with_object(64);
        let mut detector = Detector::new(DetectorConfig::default());
        for _ in 0..6 {
            detector.ingest(
                &space,
                &sample(3, base.offset(8), AccessKind::Read, PhaseKind::Parallel),
            );
        }
        for _ in 0..3 {
            detector.ingest(
                &space,
                &sample(1, base, AccessKind::Write, PhaseKind::Parallel),
            );
            detector.ingest(
                &space,
                &sample(2, base.offset(4), AccessKind::Write, PhaseKind::Parallel),
            );
        }
        let accum = detector.objects().next().unwrap();
        assert_eq!(
            accum.thread(ThreadId(1)).map(|t| t.accesses),
            Some(3),
            "every staged write must be replayed"
        );
        assert_eq!(accum.thread(ThreadId(2)).map(|t| t.accesses), Some(3));
        assert!(accum.thread(ThreadId(3)).is_some(), "some reads survive");
    }

    #[test]
    fn co_resident_objects_tracked_per_line() {
        // Two 24-byte allocations from one thread pack into one 64-byte
        // line (32-byte size class): the classic inter-object shape.
        let mut space = AddressSpace::new();
        let a = space
            .heap_mut()
            .alloc(ThreadId(0), 24, CallStack::single("app.c", 1))
            .unwrap();
        let b = space
            .heap_mut()
            .alloc(ThreadId(0), 24, CallStack::single("app.c", 2))
            .unwrap();
        assert_eq!(a.line(64), b.line(64), "neighbours must pack");
        let mut detector = Detector::new(DetectorConfig::default());
        for _ in 0..20 {
            detector.ingest(
                &space,
                &sample(1, a, AccessKind::Write, PhaseKind::Parallel),
            );
            detector.ingest(
                &space,
                &sample(2, b.offset(8), AccessKind::Write, PhaseKind::Parallel),
            );
        }
        assert_eq!(detector.objects().count(), 2);
        let accum = detector.line_accum(a.line(64)).expect("tracked line");
        assert_eq!(accum.residents().len(), 2, "both objects co-resident");
        // Evicting either co-resident leaves a single-thread residual.
        for &key in accum.residents() {
            assert!(!accum.contended_without(key));
        }
        // The line's slices account for every attributed detailed sample.
        let total: u64 = accum.slices().map(|(_, s)| s.accesses).sum();
        let per_object: u64 = detector.objects().map(|o| o.accesses()).sum();
        assert_eq!(total, per_object);
    }

    #[test]
    fn multi_line_objects_tracked_per_line() {
        let (space, base) = space_with_object(4000);
        let mut detector = Detector::new(DetectorConfig::default());
        // Threads 1 and 2 fight over two separate lines of one object.
        for line in [0u64, 8] {
            for _ in 0..20 {
                detector.ingest(
                    &space,
                    &sample(
                        1,
                        base.offset(line * 64),
                        AccessKind::Write,
                        PhaseKind::Parallel,
                    ),
                );
                detector.ingest(
                    &space,
                    &sample(
                        2,
                        base.offset(line * 64 + 4),
                        AccessKind::Write,
                        PhaseKind::Parallel,
                    ),
                );
            }
        }
        let accum = detector.objects().next().unwrap();
        assert_eq!(accum.lines().len(), 2);
        assert!(accum.invalidations >= 70);
    }
}
